file(REMOVE_RECURSE
  "CMakeFiles/correlation_test.dir/stats/correlation_test.cpp.o"
  "CMakeFiles/correlation_test.dir/stats/correlation_test.cpp.o.d"
  "correlation_test"
  "correlation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
