file(REMOVE_RECURSE
  "CMakeFiles/ring_matrix_test.dir/common/ring_matrix_test.cpp.o"
  "CMakeFiles/ring_matrix_test.dir/common/ring_matrix_test.cpp.o.d"
  "ring_matrix_test"
  "ring_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
