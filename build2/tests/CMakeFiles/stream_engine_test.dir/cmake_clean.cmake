file(REMOVE_RECURSE
  "CMakeFiles/stream_engine_test.dir/core/stream_engine_test.cpp.o"
  "CMakeFiles/stream_engine_test.dir/core/stream_engine_test.cpp.o.d"
  "stream_engine_test"
  "stream_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
