file(REMOVE_RECURSE
  "CMakeFiles/random_forest_test.dir/ml/random_forest_test.cpp.o"
  "CMakeFiles/random_forest_test.dir/ml/random_forest_test.cpp.o.d"
  "random_forest_test"
  "random_forest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
