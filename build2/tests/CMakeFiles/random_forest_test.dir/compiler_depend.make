# Empty compiler generated dependencies file for random_forest_test.
# This may be replaced when dependencies are built.
