# Empty compiler generated dependencies file for collector_test.
# This may be replaced when dependencies are built.
