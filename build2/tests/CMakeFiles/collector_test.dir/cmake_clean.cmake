file(REMOVE_RECURSE
  "CMakeFiles/collector_test.dir/hpcoda/collector_test.cpp.o"
  "CMakeFiles/collector_test.dir/hpcoda/collector_test.cpp.o.d"
  "collector_test"
  "collector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
