# Empty dependencies file for interpolate_test.
# This may be replaced when dependencies are built.
