file(REMOVE_RECURSE
  "CMakeFiles/interpolate_test.dir/stats/interpolate_test.cpp.o"
  "CMakeFiles/interpolate_test.dir/stats/interpolate_test.cpp.o.d"
  "interpolate_test"
  "interpolate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpolate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
