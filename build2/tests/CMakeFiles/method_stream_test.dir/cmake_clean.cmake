file(REMOVE_RECURSE
  "CMakeFiles/method_stream_test.dir/core/method_stream_test.cpp.o"
  "CMakeFiles/method_stream_test.dir/core/method_stream_test.cpp.o.d"
  "method_stream_test"
  "method_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
