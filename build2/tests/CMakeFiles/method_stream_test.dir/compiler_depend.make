# Empty compiler generated dependencies file for method_stream_test.
# This may be replaced when dependencies are built.
