file(REMOVE_RECURSE
  "CMakeFiles/sensors_test.dir/hpcoda/sensors_test.cpp.o"
  "CMakeFiles/sensors_test.dir/hpcoda/sensors_test.cpp.o.d"
  "sensors_test"
  "sensors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
