file(REMOVE_RECURSE
  "CMakeFiles/diff_test.dir/benchkit/diff_test.cpp.o"
  "CMakeFiles/diff_test.dir/benchkit/diff_test.cpp.o.d"
  "diff_test"
  "diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
