# Empty compiler generated dependencies file for finite_diff_test.
# This may be replaced when dependencies are built.
