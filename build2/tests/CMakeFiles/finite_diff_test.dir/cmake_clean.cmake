file(REMOVE_RECURSE
  "CMakeFiles/finite_diff_test.dir/stats/finite_diff_test.cpp.o"
  "CMakeFiles/finite_diff_test.dir/stats/finite_diff_test.cpp.o.d"
  "finite_diff_test"
  "finite_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
