# Empty compiler generated dependencies file for cs_model_test.
# This may be replaced when dependencies are built.
