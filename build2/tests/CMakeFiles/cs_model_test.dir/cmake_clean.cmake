file(REMOVE_RECURSE
  "CMakeFiles/cs_model_test.dir/core/cs_model_test.cpp.o"
  "CMakeFiles/cs_model_test.dir/core/cs_model_test.cpp.o.d"
  "cs_model_test"
  "cs_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
