file(REMOVE_RECURSE
  "CMakeFiles/feature_csv_test.dir/data/feature_csv_test.cpp.o"
  "CMakeFiles/feature_csv_test.dir/data/feature_csv_test.cpp.o.d"
  "feature_csv_test"
  "feature_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
