file(REMOVE_RECURSE
  "CMakeFiles/method_registry_test.dir/core/method_registry_test.cpp.o"
  "CMakeFiles/method_registry_test.dir/core/method_registry_test.cpp.o.d"
  "method_registry_test"
  "method_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
