file(REMOVE_RECURSE
  "CMakeFiles/pca_test.dir/baselines/pca_test.cpp.o"
  "CMakeFiles/pca_test.dir/baselines/pca_test.cpp.o.d"
  "pca_test"
  "pca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
