file(REMOVE_RECURSE
  "CMakeFiles/divergence_test.dir/stats/divergence_test.cpp.o"
  "CMakeFiles/divergence_test.dir/stats/divergence_test.cpp.o.d"
  "divergence_test"
  "divergence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/divergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
