# Empty compiler generated dependencies file for divergence_test.
# This may be replaced when dependencies are built.
