file(REMOVE_RECURSE
  "CMakeFiles/decision_tree_test.dir/ml/decision_tree_test.cpp.o"
  "CMakeFiles/decision_tree_test.dir/ml/decision_tree_test.cpp.o.d"
  "decision_tree_test"
  "decision_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decision_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
