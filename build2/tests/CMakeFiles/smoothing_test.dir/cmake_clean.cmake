file(REMOVE_RECURSE
  "CMakeFiles/smoothing_test.dir/core/smoothing_test.cpp.o"
  "CMakeFiles/smoothing_test.dir/core/smoothing_test.cpp.o.d"
  "smoothing_test"
  "smoothing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoothing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
