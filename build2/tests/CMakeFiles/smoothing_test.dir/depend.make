# Empty dependencies file for smoothing_test.
# This may be replaced when dependencies are built.
