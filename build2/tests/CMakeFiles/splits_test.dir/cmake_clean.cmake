file(REMOVE_RECURSE
  "CMakeFiles/splits_test.dir/ml/splits_test.cpp.o"
  "CMakeFiles/splits_test.dir/ml/splits_test.cpp.o.d"
  "splits_test"
  "splits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
