file(REMOVE_RECURSE
  "CMakeFiles/time_series_test.dir/data/time_series_test.cpp.o"
  "CMakeFiles/time_series_test.dir/data/time_series_test.cpp.o.d"
  "time_series_test"
  "time_series_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
