# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build2/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[csmcli_help_exits_zero]=] "/root/repo/build2/tools/csmcli" "--help")
set_tests_properties([=[csmcli_help_exits_zero]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_help_prints_usage]=] "/root/repo/build2/tools/csmcli" "--help")
set_tests_properties([=[csmcli_help_prints_usage]=] PROPERTIES  PASS_REGULAR_EXPRESSION "usage:" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_methods_lists_registry]=] "/root/repo/build2/tools/csmcli" "methods")
set_tests_properties([=[csmcli_methods_lists_registry]=] PROPERTIES  PASS_REGULAR_EXPRESSION "pca\\[:components=K\\]" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_unknown_flag_is_named]=] "/root/repo/build2/tools/csmcli" "stream" "fault" "--bogus")
set_tests_properties([=[csmcli_unknown_flag_is_named]=] PROPERTIES  PASS_REGULAR_EXPRESSION "unknown option: --bogus" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_no_args_fails]=] "/root/repo/build2/tools/csmcli")
set_tests_properties([=[csmcli_no_args_fails]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_method_conflicts_with_cs_flags]=] "/root/repo/build2/tools/csmcli" "stream" "fault" "--method" "cs" "--blocks" "10")
set_tests_properties([=[csmcli_method_conflicts_with_cs_flags]=] PROPERTIES  PASS_REGULAR_EXPRESSION "conflict with --method" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_blocks_trailing_garbage_is_rejected]=] "/root/repo/build2/tools/csmcli" "stream" "fault" "--blocks" "20x")
set_tests_properties([=[csmcli_blocks_trailing_garbage_is_rejected]=] PROPERTIES  PASS_REGULAR_EXPRESSION "--blocks: expected a non-negative integer, got \"20x\"" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_scale_trailing_garbage_is_rejected]=] "/root/repo/build2/tools/csmcli" "stream" "fault" "--scale" "0.5x")
set_tests_properties([=[csmcli_scale_trailing_garbage_is_rejected]=] PROPERTIES  PASS_REGULAR_EXPRESSION "--scale: expected a finite number" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;36;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_missing_value_is_named]=] "/root/repo/build2/tools/csmcli" "stream" "fault" "--history")
set_tests_properties([=[csmcli_missing_value_is_named]=] PROPERTIES  PASS_REGULAR_EXPRESSION "--history: missing value" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_stream_pca]=] "/root/repo/build2/tools/csmcli" "stream" "fault" "--scale" "0.3" "--method" "pca:components=4")
set_tests_properties([=[csmcli_stream_pca]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;45;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[csmcli_stream_tuncer]=] "/root/repo/build2/tools/csmcli" "stream" "power" "--scale" "0.3" "--method" "tuncer")
set_tests_properties([=[csmcli_stream_tuncer]=] PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;47;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[benchdiff_help_exits_zero]=] "/root/repo/build2/tools/benchdiff" "--help")
set_tests_properties([=[benchdiff_help_exits_zero]=] PROPERTIES  PASS_REGULAR_EXPRESSION "usage: benchdiff" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;53;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[benchdiff_requires_two_files]=] "/root/repo/build2/tools/benchdiff" "one.json")
set_tests_properties([=[benchdiff_requires_two_files]=] PROPERTIES  PASS_REGULAR_EXPRESSION "exactly two positional arguments" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;56;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[benchdiff_threshold_garbage_is_rejected]=] "/root/repo/build2/tools/benchdiff" "a.json" "b.json" "--threshold-pct" "30x")
set_tests_properties([=[benchdiff_threshold_garbage_is_rejected]=] PROPERTIES  PASS_REGULAR_EXPRESSION "--threshold-pct: expected" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;59;add_test;/root/repo/tools/CMakeLists.txt;0;")
