# Empty compiler generated dependencies file for benchdiff.
# This may be replaced when dependencies are built.
