file(REMOVE_RECURSE
  "CMakeFiles/benchdiff.dir/benchdiff.cpp.o"
  "CMakeFiles/benchdiff.dir/benchdiff.cpp.o.d"
  "benchdiff"
  "benchdiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchdiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
