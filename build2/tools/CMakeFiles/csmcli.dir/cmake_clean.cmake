file(REMOVE_RECURSE
  "CMakeFiles/csmcli.dir/csmcli.cpp.o"
  "CMakeFiles/csmcli.dir/csmcli.cpp.o.d"
  "csmcli"
  "csmcli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csmcli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
