# Empty dependencies file for csmcli.
# This may be replaced when dependencies are built.
