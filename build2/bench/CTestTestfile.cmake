# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build2/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[bench_unknown_flag_is_rejected]=] "/root/repo/build2/bench/table1_segments" "--bogus")
set_tests_properties([=[bench_unknown_flag_is_rejected]=] PROPERTIES  PASS_REGULAR_EXPRESSION "unknown flag: --bogus" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;19;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_trailing_garbage_is_rejected]=] "/root/repo/build2/bench/table1_segments" "--seed" "7x")
set_tests_properties([=[bench_trailing_garbage_is_rejected]=] PROPERTIES  PASS_REGULAR_EXPRESSION "--seed: expected" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_help_exits_zero]=] "/root/repo/build2/bench/table1_segments" "--help")
set_tests_properties([=[bench_help_exits_zero]=] PROPERTIES  PASS_REGULAR_EXPRESSION "usage: table1_segments" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;27;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_methods_unsupported_is_named]=] "/root/repo/build2/bench/table1_segments" "--methods" "tuncer")
set_tests_properties([=[bench_methods_unsupported_is_named]=] PROPERTIES  PASS_REGULAR_EXPRESSION "--methods is not supported by table1_segments" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;30;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test([=[bench_quick_json_selfdiff]=] "/usr/bin/cmake" "-DDRIVER=/root/repo/build2/bench/table1_segments" "-DBENCHDIFF=/root/repo/build2/tools/benchdiff" "-DWORK_DIR=/root/repo/build2/bench/selfdiff" "-P" "/root/repo/bench/bench_selfdiff.cmake")
set_tests_properties([=[bench_quick_json_selfdiff]=] PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
