file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_segments.dir/table1_segments.cpp.o"
  "CMakeFiles/bench_table1_segments.dir/table1_segments.cpp.o.d"
  "table1_segments"
  "table1_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
