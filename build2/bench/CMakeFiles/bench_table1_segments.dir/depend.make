# Empty dependencies file for bench_table1_segments.
# This may be replaced when dependencies are built.
