# Empty compiler generated dependencies file for bench_ablation_pca.
# This may be replaced when dependencies are built.
