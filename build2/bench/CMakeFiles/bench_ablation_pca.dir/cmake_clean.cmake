file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pca.dir/ablation_pca.cpp.o"
  "CMakeFiles/bench_ablation_pca.dir/ablation_pca.cpp.o.d"
  "ablation_pca"
  "ablation_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
