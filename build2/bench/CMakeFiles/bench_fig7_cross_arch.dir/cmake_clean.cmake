file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_cross_arch.dir/fig7_cross_arch.cpp.o"
  "CMakeFiles/bench_fig7_cross_arch.dir/fig7_cross_arch.cpp.o.d"
  "fig7_cross_arch"
  "fig7_cross_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cross_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
