# Empty compiler generated dependencies file for bench_fig7_cross_arch.
# This may be replaced when dependencies are built.
