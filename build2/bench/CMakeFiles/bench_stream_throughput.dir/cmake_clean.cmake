file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_throughput.dir/stream_throughput.cpp.o"
  "CMakeFiles/bench_stream_throughput.dir/stream_throughput.cpp.o.d"
  "stream_throughput"
  "stream_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
