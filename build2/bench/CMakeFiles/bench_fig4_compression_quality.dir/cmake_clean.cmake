file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_compression_quality.dir/fig4_compression_quality.cpp.o"
  "CMakeFiles/bench_fig4_compression_quality.dir/fig4_compression_quality.cpp.o.d"
  "fig4_compression_quality"
  "fig4_compression_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_compression_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
