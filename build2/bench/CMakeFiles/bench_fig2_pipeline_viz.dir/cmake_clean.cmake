file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_pipeline_viz.dir/fig2_pipeline_viz.cpp.o"
  "CMakeFiles/bench_fig2_pipeline_viz.dir/fig2_pipeline_viz.cpp.o.d"
  "fig2_pipeline_viz"
  "fig2_pipeline_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_pipeline_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
