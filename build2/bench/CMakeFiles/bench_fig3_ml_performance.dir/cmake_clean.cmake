file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ml_performance.dir/fig3_ml_performance.cpp.o"
  "CMakeFiles/bench_fig3_ml_performance.dir/fig3_ml_performance.cpp.o.d"
  "fig3_ml_performance"
  "fig3_ml_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ml_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
