file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_app_signatures.dir/fig6_app_signatures.cpp.o"
  "CMakeFiles/bench_fig6_app_signatures.dir/fig6_app_signatures.cpp.o.d"
  "fig6_app_signatures"
  "fig6_app_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_app_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
