# Empty dependencies file for bench_fig6_app_signatures.
# This may be replaced when dependencies are built.
