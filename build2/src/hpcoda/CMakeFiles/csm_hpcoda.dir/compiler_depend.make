# Empty compiler generated dependencies file for csm_hpcoda.
# This may be replaced when dependencies are built.
