file(REMOVE_RECURSE
  "CMakeFiles/csm_hpcoda.dir/collector.cpp.o"
  "CMakeFiles/csm_hpcoda.dir/collector.cpp.o.d"
  "CMakeFiles/csm_hpcoda.dir/generator.cpp.o"
  "CMakeFiles/csm_hpcoda.dir/generator.cpp.o.d"
  "CMakeFiles/csm_hpcoda.dir/segment.cpp.o"
  "CMakeFiles/csm_hpcoda.dir/segment.cpp.o.d"
  "CMakeFiles/csm_hpcoda.dir/sensors.cpp.o"
  "CMakeFiles/csm_hpcoda.dir/sensors.cpp.o.d"
  "CMakeFiles/csm_hpcoda.dir/types.cpp.o"
  "CMakeFiles/csm_hpcoda.dir/types.cpp.o.d"
  "CMakeFiles/csm_hpcoda.dir/workload.cpp.o"
  "CMakeFiles/csm_hpcoda.dir/workload.cpp.o.d"
  "libcsm_hpcoda.a"
  "libcsm_hpcoda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_hpcoda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
