
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpcoda/collector.cpp" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/collector.cpp.o" "gcc" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/collector.cpp.o.d"
  "/root/repo/src/hpcoda/generator.cpp" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/generator.cpp.o" "gcc" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/generator.cpp.o.d"
  "/root/repo/src/hpcoda/segment.cpp" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/segment.cpp.o" "gcc" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/segment.cpp.o.d"
  "/root/repo/src/hpcoda/sensors.cpp" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/sensors.cpp.o" "gcc" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/sensors.cpp.o.d"
  "/root/repo/src/hpcoda/types.cpp" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/types.cpp.o" "gcc" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/types.cpp.o.d"
  "/root/repo/src/hpcoda/workload.cpp" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/workload.cpp.o" "gcc" "src/hpcoda/CMakeFiles/csm_hpcoda.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/data/CMakeFiles/csm_data.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
