file(REMOVE_RECURSE
  "libcsm_hpcoda.a"
)
