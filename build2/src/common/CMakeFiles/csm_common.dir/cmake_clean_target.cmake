file(REMOVE_RECURSE
  "libcsm_common.a"
)
