# Empty dependencies file for csm_common.
# This may be replaced when dependencies are built.
