file(REMOVE_RECURSE
  "CMakeFiles/csm_common.dir/matrix.cpp.o"
  "CMakeFiles/csm_common.dir/matrix.cpp.o.d"
  "CMakeFiles/csm_common.dir/ring_matrix.cpp.o"
  "CMakeFiles/csm_common.dir/ring_matrix.cpp.o.d"
  "CMakeFiles/csm_common.dir/rng.cpp.o"
  "CMakeFiles/csm_common.dir/rng.cpp.o.d"
  "libcsm_common.a"
  "libcsm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
