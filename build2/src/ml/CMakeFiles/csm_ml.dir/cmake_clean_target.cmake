file(REMOVE_RECURSE
  "libcsm_ml.a"
)
