file(REMOVE_RECURSE
  "CMakeFiles/csm_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/csm_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/csm_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/csm_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/csm_ml.dir/knn.cpp.o"
  "CMakeFiles/csm_ml.dir/knn.cpp.o.d"
  "CMakeFiles/csm_ml.dir/metrics.cpp.o"
  "CMakeFiles/csm_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/csm_ml.dir/mlp.cpp.o"
  "CMakeFiles/csm_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/csm_ml.dir/model.cpp.o"
  "CMakeFiles/csm_ml.dir/model.cpp.o.d"
  "CMakeFiles/csm_ml.dir/random_forest.cpp.o"
  "CMakeFiles/csm_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/csm_ml.dir/splits.cpp.o"
  "CMakeFiles/csm_ml.dir/splits.cpp.o.d"
  "libcsm_ml.a"
  "libcsm_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
