# Empty dependencies file for csm_ml.
# This may be replaced when dependencies are built.
