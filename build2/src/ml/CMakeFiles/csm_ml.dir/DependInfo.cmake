
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/csm_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/csm_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/csm_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/csm_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/csm_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/model.cpp" "src/ml/CMakeFiles/csm_ml.dir/model.cpp.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/model.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/csm_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/splits.cpp" "src/ml/CMakeFiles/csm_ml.dir/splits.cpp.o" "gcc" "src/ml/CMakeFiles/csm_ml.dir/splits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/data/CMakeFiles/csm_data.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
