# Empty dependencies file for csm_core.
# This may be replaced when dependencies are built.
