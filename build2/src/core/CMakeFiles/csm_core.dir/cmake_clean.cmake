file(REMOVE_RECURSE
  "CMakeFiles/csm_core.dir/codec.cpp.o"
  "CMakeFiles/csm_core.dir/codec.cpp.o.d"
  "CMakeFiles/csm_core.dir/cs_model.cpp.o"
  "CMakeFiles/csm_core.dir/cs_model.cpp.o.d"
  "CMakeFiles/csm_core.dir/method_registry.cpp.o"
  "CMakeFiles/csm_core.dir/method_registry.cpp.o.d"
  "CMakeFiles/csm_core.dir/method_stream.cpp.o"
  "CMakeFiles/csm_core.dir/method_stream.cpp.o.d"
  "CMakeFiles/csm_core.dir/pipeline.cpp.o"
  "CMakeFiles/csm_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/csm_core.dir/signature.cpp.o"
  "CMakeFiles/csm_core.dir/signature.cpp.o.d"
  "CMakeFiles/csm_core.dir/smoothing.cpp.o"
  "CMakeFiles/csm_core.dir/smoothing.cpp.o.d"
  "CMakeFiles/csm_core.dir/stream_engine.cpp.o"
  "CMakeFiles/csm_core.dir/stream_engine.cpp.o.d"
  "CMakeFiles/csm_core.dir/streaming.cpp.o"
  "CMakeFiles/csm_core.dir/streaming.cpp.o.d"
  "CMakeFiles/csm_core.dir/training.cpp.o"
  "CMakeFiles/csm_core.dir/training.cpp.o.d"
  "libcsm_core.a"
  "libcsm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
