file(REMOVE_RECURSE
  "libcsm_core.a"
)
