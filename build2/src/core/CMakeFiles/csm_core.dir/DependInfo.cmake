
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/codec.cpp" "src/core/CMakeFiles/csm_core.dir/codec.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/codec.cpp.o.d"
  "/root/repo/src/core/cs_model.cpp" "src/core/CMakeFiles/csm_core.dir/cs_model.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/cs_model.cpp.o.d"
  "/root/repo/src/core/method_registry.cpp" "src/core/CMakeFiles/csm_core.dir/method_registry.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/method_registry.cpp.o.d"
  "/root/repo/src/core/method_stream.cpp" "src/core/CMakeFiles/csm_core.dir/method_stream.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/method_stream.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/csm_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/signature.cpp" "src/core/CMakeFiles/csm_core.dir/signature.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/signature.cpp.o.d"
  "/root/repo/src/core/smoothing.cpp" "src/core/CMakeFiles/csm_core.dir/smoothing.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/smoothing.cpp.o.d"
  "/root/repo/src/core/stream_engine.cpp" "src/core/CMakeFiles/csm_core.dir/stream_engine.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/stream_engine.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/csm_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/streaming.cpp.o.d"
  "/root/repo/src/core/training.cpp" "src/core/CMakeFiles/csm_core.dir/training.cpp.o" "gcc" "src/core/CMakeFiles/csm_core.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  "/root/repo/build2/src/data/CMakeFiles/csm_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
