file(REMOVE_RECURSE
  "CMakeFiles/csm_benchkit_main.dir/bench_main.cpp.o"
  "CMakeFiles/csm_benchkit_main.dir/bench_main.cpp.o.d"
  "libcsm_benchkit_main.a"
  "libcsm_benchkit_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_benchkit_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
