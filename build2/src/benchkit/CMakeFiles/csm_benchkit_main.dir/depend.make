# Empty dependencies file for csm_benchkit_main.
# This may be replaced when dependencies are built.
