file(REMOVE_RECURSE
  "libcsm_benchkit_main.a"
)
