file(REMOVE_RECURSE
  "CMakeFiles/csm_benchkit.dir/args.cpp.o"
  "CMakeFiles/csm_benchkit.dir/args.cpp.o.d"
  "CMakeFiles/csm_benchkit.dir/benchkit.cpp.o"
  "CMakeFiles/csm_benchkit.dir/benchkit.cpp.o.d"
  "CMakeFiles/csm_benchkit.dir/diff.cpp.o"
  "CMakeFiles/csm_benchkit.dir/diff.cpp.o.d"
  "CMakeFiles/csm_benchkit.dir/json.cpp.o"
  "CMakeFiles/csm_benchkit.dir/json.cpp.o.d"
  "libcsm_benchkit.a"
  "libcsm_benchkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_benchkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
