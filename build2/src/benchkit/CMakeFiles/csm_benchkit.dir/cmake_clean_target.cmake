file(REMOVE_RECURSE
  "libcsm_benchkit.a"
)
