# Empty dependencies file for csm_benchkit.
# This may be replaced when dependencies are built.
