# Empty compiler generated dependencies file for csm_harness.
# This may be replaced when dependencies are built.
