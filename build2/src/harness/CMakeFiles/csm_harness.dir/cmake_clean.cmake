file(REMOVE_RECURSE
  "CMakeFiles/csm_harness.dir/experiment.cpp.o"
  "CMakeFiles/csm_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/csm_harness.dir/heatmap.cpp.o"
  "CMakeFiles/csm_harness.dir/heatmap.cpp.o.d"
  "CMakeFiles/csm_harness.dir/summary.cpp.o"
  "CMakeFiles/csm_harness.dir/summary.cpp.o.d"
  "libcsm_harness.a"
  "libcsm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
