file(REMOVE_RECURSE
  "libcsm_harness.a"
)
