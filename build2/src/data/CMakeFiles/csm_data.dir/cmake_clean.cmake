file(REMOVE_RECURSE
  "CMakeFiles/csm_data.dir/alignment.cpp.o"
  "CMakeFiles/csm_data.dir/alignment.cpp.o.d"
  "CMakeFiles/csm_data.dir/csv.cpp.o"
  "CMakeFiles/csm_data.dir/csv.cpp.o.d"
  "CMakeFiles/csm_data.dir/dataset.cpp.o"
  "CMakeFiles/csm_data.dir/dataset.cpp.o.d"
  "CMakeFiles/csm_data.dir/feature_csv.cpp.o"
  "CMakeFiles/csm_data.dir/feature_csv.cpp.o.d"
  "CMakeFiles/csm_data.dir/time_series.cpp.o"
  "CMakeFiles/csm_data.dir/time_series.cpp.o.d"
  "CMakeFiles/csm_data.dir/window.cpp.o"
  "CMakeFiles/csm_data.dir/window.cpp.o.d"
  "libcsm_data.a"
  "libcsm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
