
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/alignment.cpp" "src/data/CMakeFiles/csm_data.dir/alignment.cpp.o" "gcc" "src/data/CMakeFiles/csm_data.dir/alignment.cpp.o.d"
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/csm_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/csm_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/csm_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/csm_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/feature_csv.cpp" "src/data/CMakeFiles/csm_data.dir/feature_csv.cpp.o" "gcc" "src/data/CMakeFiles/csm_data.dir/feature_csv.cpp.o.d"
  "/root/repo/src/data/time_series.cpp" "src/data/CMakeFiles/csm_data.dir/time_series.cpp.o" "gcc" "src/data/CMakeFiles/csm_data.dir/time_series.cpp.o.d"
  "/root/repo/src/data/window.cpp" "src/data/CMakeFiles/csm_data.dir/window.cpp.o" "gcc" "src/data/CMakeFiles/csm_data.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/stats/CMakeFiles/csm_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
