file(REMOVE_RECURSE
  "libcsm_data.a"
)
