# Empty compiler generated dependencies file for csm_data.
# This may be replaced when dependencies are built.
