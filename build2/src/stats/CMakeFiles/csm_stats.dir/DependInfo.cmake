
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/csm_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/csm_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/csm_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/csm_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/divergence.cpp" "src/stats/CMakeFiles/csm_stats.dir/divergence.cpp.o" "gcc" "src/stats/CMakeFiles/csm_stats.dir/divergence.cpp.o.d"
  "/root/repo/src/stats/eigen.cpp" "src/stats/CMakeFiles/csm_stats.dir/eigen.cpp.o" "gcc" "src/stats/CMakeFiles/csm_stats.dir/eigen.cpp.o.d"
  "/root/repo/src/stats/finite_diff.cpp" "src/stats/CMakeFiles/csm_stats.dir/finite_diff.cpp.o" "gcc" "src/stats/CMakeFiles/csm_stats.dir/finite_diff.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/csm_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/csm_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/interpolate.cpp" "src/stats/CMakeFiles/csm_stats.dir/interpolate.cpp.o" "gcc" "src/stats/CMakeFiles/csm_stats.dir/interpolate.cpp.o.d"
  "/root/repo/src/stats/normalize.cpp" "src/stats/CMakeFiles/csm_stats.dir/normalize.cpp.o" "gcc" "src/stats/CMakeFiles/csm_stats.dir/normalize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/csm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
