# Empty compiler generated dependencies file for csm_stats.
# This may be replaced when dependencies are built.
