file(REMOVE_RECURSE
  "CMakeFiles/csm_stats.dir/correlation.cpp.o"
  "CMakeFiles/csm_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/csm_stats.dir/descriptive.cpp.o"
  "CMakeFiles/csm_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/csm_stats.dir/divergence.cpp.o"
  "CMakeFiles/csm_stats.dir/divergence.cpp.o.d"
  "CMakeFiles/csm_stats.dir/eigen.cpp.o"
  "CMakeFiles/csm_stats.dir/eigen.cpp.o.d"
  "CMakeFiles/csm_stats.dir/finite_diff.cpp.o"
  "CMakeFiles/csm_stats.dir/finite_diff.cpp.o.d"
  "CMakeFiles/csm_stats.dir/histogram.cpp.o"
  "CMakeFiles/csm_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/csm_stats.dir/interpolate.cpp.o"
  "CMakeFiles/csm_stats.dir/interpolate.cpp.o.d"
  "CMakeFiles/csm_stats.dir/normalize.cpp.o"
  "CMakeFiles/csm_stats.dir/normalize.cpp.o.d"
  "libcsm_stats.a"
  "libcsm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
