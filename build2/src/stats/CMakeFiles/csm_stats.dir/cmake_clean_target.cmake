file(REMOVE_RECURSE
  "libcsm_stats.a"
)
