# Empty dependencies file for csm_baselines.
# This may be replaced when dependencies are built.
