file(REMOVE_RECURSE
  "libcsm_baselines.a"
)
