file(REMOVE_RECURSE
  "CMakeFiles/csm_baselines.dir/bodik.cpp.o"
  "CMakeFiles/csm_baselines.dir/bodik.cpp.o.d"
  "CMakeFiles/csm_baselines.dir/lan.cpp.o"
  "CMakeFiles/csm_baselines.dir/lan.cpp.o.d"
  "CMakeFiles/csm_baselines.dir/pca.cpp.o"
  "CMakeFiles/csm_baselines.dir/pca.cpp.o.d"
  "CMakeFiles/csm_baselines.dir/registry.cpp.o"
  "CMakeFiles/csm_baselines.dir/registry.cpp.o.d"
  "CMakeFiles/csm_baselines.dir/tuncer.cpp.o"
  "CMakeFiles/csm_baselines.dir/tuncer.cpp.o.d"
  "libcsm_baselines.a"
  "libcsm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
