// Fleet-wide online fault detection with StreamEngine.
//
// Where online_fault_detection replays a single node, this example runs the
// in-band ODA loop of Fig. 1 across a whole fleet: the Application segment's
// 16 compute nodes each get their own CS model (trained out-of-band on that
// node's sensors) and their own ring-buffered MethodStream inside one
// StreamEngine. A shared random-forest classifier is fitted on signatures
// from the first 60% of every run; the remaining 40% is then ingested in
// per-node batches — fanned across nodes with parallel_for — and every
// drained signature is classified in real time.
//
// Usage: fleet_streaming [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/stream_engine.hpp"
#include "core/training.hpp"
#include "hpcoda/generator.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 1.0;

  const hpcoda::Segment seg = hpcoda::make_application_segment(config);
  const std::size_t n_nodes = seg.n_blocks();
  std::cout << "Application segment: " << n_nodes << " nodes x "
            << seg.n_sensors_per_block() << " sensors, " << seg.length()
            << " samples, " << seg.runs.size() << " runs\n";

  core::StreamOptions opts;
  opts.window_length = seg.window.length;
  opts.window_step = seg.window.step;
  opts.cs.blocks = 20;

  // Out-of-band phase: per-node CS models, then one fleet-wide classifier
  // over the training share of every run on every node.
  std::vector<core::CsModel> models;
  models.reserve(n_nodes);
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    models.push_back(core::train(block.sensors));
  }
  data::Dataset train_set;
  for (const hpcoda::RunInfo& run : seg.runs) {
    const std::size_t train_len = (run.end - run.begin) * 3 / 5;
    if (train_len < opts.window_length) continue;
    for (std::size_t b = 0; b < n_nodes; ++b) {
      core::CsStream trainer(models[b], opts);
      for (const core::Signature& sig : trainer.push_all(
               seg.blocks[b].sensors.sub_cols(run.begin, train_len))) {
        train_set.features.append_row(sig.flatten());
        train_set.labels.push_back(run.label);
      }
    }
  }
  if (train_set.size() == 0) {
    std::cerr << "no run is long enough for a training window at scale "
              << config.scale << "; try a larger scale\n";
    return 1;
  }
  ml::RandomForestClassifier forest;
  forest.fit(train_set.features, train_set.labels);
  std::cout << "Trained forest on " << train_set.size()
            << " signatures (first 60% of each run, all nodes)\n\n";

  // In-band phase: per run, replay the held-out tail of all nodes through
  // one StreamEngine and classify whatever each node's queue yields.
  ml::ConfusionMatrix cm(seg.class_names.size());
  std::vector<std::size_t> per_node_hits(n_nodes, 0);
  std::vector<std::size_t> per_node_total(n_nodes, 0);
  double ingest_seconds = 0.0;
  std::uint64_t streamed_samples = 0;
  for (const hpcoda::RunInfo& run : seg.runs) {
    const std::size_t train_len = (run.end - run.begin) * 3 / 5;
    const std::size_t test_begin = run.begin + train_len;
    if (run.end - test_begin < opts.window_length) continue;

    core::StreamEngine engine(opts);
    std::vector<common::Matrix> batches;
    batches.reserve(n_nodes);
    for (std::size_t b = 0; b < n_nodes; ++b) {
      engine.add_node(seg.blocks[b].name, models[b]);
      batches.push_back(seg.blocks[b].sensors.sub_cols(
          test_begin, run.end - test_begin));
    }
    engine.ingest_batch(batches);

    for (std::size_t b = 0; b < n_nodes; ++b) {
      for (const std::vector<double>& features : engine.drain(b)) {
        const int predicted = forest.predict_one(features);
        cm.add(run.label, predicted);
        ++per_node_total[b];
        if (predicted == run.label) ++per_node_hits[b];
      }
    }
    const core::EngineStats stats = engine.stats();
    ingest_seconds += stats.ingest_seconds;
    streamed_samples += stats.samples;
  }

  std::printf("%-10s %10s\n", "Node", "Hits");
  for (std::size_t b = 0; b < n_nodes; ++b) {
    std::printf("%-10s %5zu/%-5zu\n", seg.blocks[b].name.c_str(),
                per_node_hits[b], per_node_total[b]);
  }
  std::printf("\nFleet totals: %llu samples streamed in %.3f s "
              "(%.0f samples/s), accuracy %.4f, macro F1 %.4f\n",
              static_cast<unsigned long long>(streamed_samples),
              ingest_seconds,
              ingest_seconds > 0.0
                  ? static_cast<double>(streamed_samples) / ingest_seconds
                  : 0.0,
              cm.accuracy(), cm.macro_f1());
  return 0;
}
