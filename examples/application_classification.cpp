// Application classification (the paper's Application use case):
// identify which application a compute node is running from its
// monitoring signatures, using CS-20 features and a random forest.
//
// Usage: application_classification [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.6;

  std::cout << "Generating the Application segment (16 nodes x 52 "
               "sensors)...\n";
  const hpcoda::Segment seg = hpcoda::make_application_segment(config);

  std::cout << "Extracting CS-20 signatures per node...\n";
  data::Dataset ds = harness::build_dataset(seg, harness::make_cs_method(20));
  std::cout << ds.size() << " feature sets of length " << ds.feature_length()
            << " across " << ds.n_classes() << " classes\n\n";

  // Hold out 20% for a confusion-matrix report (simple split; the bench
  // binaries run the full 5-fold protocol).
  common::Rng rng(1);
  ds.shuffle(rng);
  const std::size_t split = ds.size() * 4 / 5;
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < split; ++i) train_idx.push_back(i);
  for (std::size_t i = split; i < ds.size(); ++i) test_idx.push_back(i);
  const data::Dataset train = ds.subset(train_idx);
  const data::Dataset test = ds.subset(test_idx);

  ml::RandomForestClassifier forest;
  forest.fit(train.features, train.labels);
  const std::vector<int> pred = forest.predict(test.features);

  ml::ConfusionMatrix cm(ds.n_classes());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    cm.add(test.labels[i], pred[i]);
  }
  std::printf("Held-out accuracy: %.4f, macro F1: %.4f\n\n", cm.accuracy(),
              cm.macro_f1());

  std::printf("%-14s %10s %10s %8s\n", "Class", "Precision", "Recall", "F1");
  for (std::size_t c = 0; c < ds.n_classes(); ++c) {
    std::printf("%-14s %10.3f %10.3f %8.3f\n", ds.class_names[c].c_str(),
                cm.precision(c), cm.recall(c), cm.f1(c));
  }
  return 0;
}
