// Visual exploration (the paper's Visualizability requirement): render the
// raw, sorted and signature views of fault-injected monitoring data as
// terminal heatmaps, showing how the CS sorting stage surfaces structure
// that raw sensor ordering hides.
//
// Usage: visualize_signatures [scale]
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "harness/heatmap.hpp"
#include "hpcoda/generator.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  const hpcoda::Segment seg = hpcoda::make_fault_segment(config);
  const common::Matrix& sensors = seg.blocks.front().sensors;
  std::cout << "Fault segment: " << sensors.rows() << " sensors, "
            << sensors.cols() << " samples, " << seg.runs.size()
            << " runs (healthy + 8 fault types)\n\n";

  const core::CsModel model = core::train(sensors);
  const core::CsPipeline pipeline(model, core::CsOptions{32, false});

  // Raw view: normalise rows but keep the original ordering.
  const core::CsPipeline raw_view(
      core::train_with_strategy(sensors, core::OrderingStrategy::kIdentity),
      core::CsOptions{});
  std::cout << "--- Raw normalised sensor matrix (hard to read) ---\n"
            << harness::ascii_heatmap(raw_view.sorted(sensors), 18, 76);

  std::cout << "\n--- After the CS sorting stage (correlated groups pop) "
               "---\n"
            << harness::ascii_heatmap(pipeline.sorted(sensors), 18, 76);

  const auto sigs = pipeline.transform(sensors, seg.window);
  const auto [re, im] = core::signature_heatmaps(sigs);
  std::cout << "\n--- CS signatures over time, real channel (32 blocks) "
               "---\n"
            << harness::ascii_heatmap(re, 16, 76)
            << "\n--- Imaginary channel (derivatives; fault onsets flash) "
               "---\n"
            << harness::ascii_heatmap(im, 16, 76);

  std::cout << "\nEach column is one signature; solid vertical structure "
               "changes mark run/fault boundaries.\n";
  return 0;
}
