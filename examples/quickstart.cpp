// Quickstart: the smallest end-to-end use of the CS library.
//
// 1. Load (or here: synthesise) multi-sensor monitoring data.
// 2. Train a CS model on historical data (training stage).
// 3. Compute compact signatures over sliding windows (sorting + smoothing).
// 4. Inspect, flatten for ML, rescale, and persist the model.
#include <iostream>

#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "data/window.hpp"

int main() {
  using namespace csm;

  // --- 1. Build a toy 8-sensor matrix: two correlated groups + noise. ----
  constexpr std::size_t kSensors = 8;
  constexpr std::size_t kTime = 600;
  common::Rng rng(42);
  common::Matrix sensors(kSensors, kTime);
  for (std::size_t t = 0; t < kTime; ++t) {
    const double load = 0.5 + 0.5 * std::sin(0.05 * static_cast<double>(t));
    sensors(0, t) = 100.0 * load + rng.gaussian();          // cpu_util
    sensors(1, t) = 2.5e9 * load + 1e7 * rng.gaussian();    // instructions
    sensors(2, t) = 250.0 + 120.0 * load + rng.gaussian();  // power
    sensors(3, t) = 40.0 + 20.0 * load + 0.2 * rng.gaussian();  // temp
    sensors(4, t) = 100.0 * (1.0 - load) + rng.gaussian();  // idle_pct
    sensors(5, t) = 50.0 - 30.0 * load + rng.gaussian();    // cstate_res
    sensors(6, t) = rng.gaussian();                          // noise
    sensors(7, t) = 42.0;                                    // constant
  }

  // --- 2. Training stage: correlation ordering + normalisation bounds. ---
  const core::CsModel model = core::train(sensors);
  std::cout << "Trained CS model over " << model.n_sensors()
            << " sensors.\nPermutation:";
  for (std::size_t idx : model.permutation()) std::cout << ' ' << idx;
  std::cout << "\n(correlated sensors first, noise in the middle,"
               " anti-correlated last)\n\n";

  // --- 3. Signatures over sliding windows: 4 blocks, window 60, step 30. -
  const core::CsPipeline pipeline(model, core::CsOptions{4, false});
  const auto signatures =
      pipeline.transform(sensors, data::WindowSpec{60, 30});
  std::cout << "Computed " << signatures.size()
            << " signatures of 4 complex blocks each.\n";
  const core::Signature& first = signatures.front();
  std::cout << "First signature (real | imag):\n";
  for (std::size_t b = 0; b < first.length(); ++b) {
    std::cout << "  block " << b << ": " << first.real()[b] << " | "
              << first.imag()[b] << '\n';
  }

  // --- 4. Flatten for ML, rescale for a coarser model, persist. ----------
  const std::vector<double> features = first.flatten();
  std::cout << "\nFlattened feature vector length: " << features.size()
            << " (vs " << kSensors * 60 << " raw readings per window)\n";
  const core::Signature coarse = first.rescaled(2);
  std::cout << "Rescaled to 2 blocks: " << coarse.real()[0] << ", "
            << coarse.real()[1] << '\n';

  const std::string blob = model.serialize();
  const core::CsModel shipped = core::CsModel::deserialize(blob);
  std::cout << "Model serialises to " << blob.size()
            << " bytes and round-trips: "
            << (shipped == model ? "OK" : "MISMATCH") << '\n';
  return 0;
}
