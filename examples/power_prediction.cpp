// Power prediction (the paper's Power use case): predict a compute node's
// mean power draw over the next ~300ms from fine-grained (100ms) CS
// signatures — the input an energy-aware runtime would use to pick CPU
// frequencies.
//
// Usage: power_prediction [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.6;

  std::cout << "Generating the Power segment (1 node x 47 sensors @100ms)"
               "...\n";
  const hpcoda::Segment seg = hpcoda::make_power_segment(config);

  // Compare a handful of signature resolutions on the same task.
  std::printf("\n%-8s %9s %9s %9s\n", "Method", "SigSize", "1-NRMSE",
              "CVTime");
  for (std::size_t blocks : {std::size_t{5}, std::size_t{10}, std::size_t{20},
                             std::size_t{0}}) {
    const harness::MethodEvaluation eval = harness::evaluate_method(
        seg, harness::make_cs_method(blocks),
        harness::random_forest_factories());
    std::printf("%-8s %9zu %9.4f %8.2fs\n", eval.method.c_str(),
                eval.signature_size, eval.ml_score, eval.cv_seconds);
  }

  // Show a few actual vs predicted values with the CS-10 model.
  data::Dataset ds = harness::build_dataset(seg, harness::make_cs_method(10));
  common::Rng rng(3);
  ds.shuffle(rng);
  const std::size_t split = ds.size() * 4 / 5;
  std::vector<std::size_t> train_idx, test_idx;
  for (std::size_t i = 0; i < split; ++i) train_idx.push_back(i);
  for (std::size_t i = split; i < ds.size(); ++i) test_idx.push_back(i);
  const data::Dataset train = ds.subset(train_idx);
  const data::Dataset test = ds.subset(test_idx);

  ml::RandomForestRegressor forest;
  forest.fit(train.features, train.targets);
  std::cout << "\nSample predictions (Watts):\n";
  std::printf("%10s %10s %8s\n", "actual", "predicted", "error");
  for (std::size_t i = 0; i < 8 && i < test.size(); ++i) {
    const double actual = test.targets[i];
    const double predicted = forest.predict_one(test.features.row(i));
    std::printf("%10.1f %10.1f %7.1f%%\n", actual, predicted,
                100.0 * (predicted - actual) / actual);
  }
  return 0;
}
