// Cross-architecture portability (the paper's Section IV-F): train one
// model on CS signatures from three different CPU architectures with
// different sensor counts — something the baseline methods structurally
// cannot do — and classify applications with no knowledge of the
// architecture. Also demonstrates shipping a trained CS model between
// processes via its text serialisation.
//
// Usage: cross_arch_portability [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.6;

  const hpcoda::Segment seg = hpcoda::make_cross_arch_segment(config);
  std::cout << "Cross-Architecture segment: 3 nodes with "
            << seg.blocks[0].sensors.rows() << "/"
            << seg.blocks[1].sensors.rows() << "/"
            << seg.blocks[2].sensors.rows() << " sensors\n\n";

  // Per-architecture CS models -> identical 20-block signature format.
  data::Dataset merged;
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    hpcoda::Segment single = seg;
    single.blocks = {block};
    data::Dataset ds =
        harness::build_dataset(single, harness::make_cs_method(20));
    std::printf("%-16s %4zu sensors -> %4zu signatures of length %zu\n",
                block.name.c_str(), block.sensors.rows(), ds.size(),
                ds.feature_length());
    merged.merge(ds);
  }

  common::Rng rng(7);
  merged.shuffle(rng);
  const ml::CvResult rf = ml::cross_validate(
      merged, 5, harness::random_forest_factories(), rng);
  std::printf("\nArchitecture-blind 5-fold F1 (random forest): %.4f\n",
              rf.mean_score);
  std::cout << "(paper reports 0.995 with no degradation vs single-arch)\n";

  // Model portability: serialise the Skylake model and reuse it elsewhere.
  const core::CsModel skylake_model = core::train(seg.blocks[0].sensors);
  const std::string blob = skylake_model.serialize();
  const core::CsModel shipped = core::CsModel::deserialize(blob);
  std::cout << "\nSkylake CS model ships as " << blob.size()
            << " bytes of text; round-trip "
            << (shipped == skylake_model ? "OK" : "FAILED") << '\n';
  return 0;
}
