// Dataset export: materialise a synthetic HPC-ODA segment on disk in the
// collection's native layout (one timestamp,value CSV per sensor) plus the
// extracted CS feature sets as a feature CSV — the artefacts another team
// would need to reproduce an experiment without this library.
//
// Usage: export_dataset [output_dir] [scale]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "data/csv.hpp"
#include "data/feature_csv.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : "hpcoda_export";
  hpcoda::GeneratorConfig config;
  config.scale = argc > 2 ? std::atof(argv[2]) : 0.4;

  const hpcoda::Segment seg = hpcoda::make_power_segment(config);
  std::cout << "Exporting the Power segment (scale=" << config.scale
            << ") to " << out_dir << "/\n";

  // Raw sensors: one CSV per sensor per component, HPC-ODA layout.
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    const auto block_dir = out_dir / "sensors" / block.name;
    data::write_sensor_dir(block_dir, block.sensors, block.sensor_names, 0,
                           seg.interval_ms);
    std::cout << "  " << block.sensor_names.size() << " sensor CSVs -> "
              << block_dir << '\n';
  }

  // Extracted feature sets for two CS resolutions plus the Tuncer baseline.
  std::filesystem::create_directories(out_dir / "features");
  const auto methods = harness::standard_methods();
  for (const harness::BlockMethod* method :
       {&methods[0] /*Tuncer*/, &methods[5] /*CS-20*/}) {
    const data::Dataset ds = harness::build_dataset(seg, *method);
    const auto file = out_dir / "features" / (method->name + ".csv");
    data::write_feature_csv(file, ds);
    std::cout << "  " << ds.size() << " x " << ds.feature_length()
              << " feature sets -> " << file << '\n';
  }

  // Round-trip check so the export is verified, not just written.
  const data::Dataset back =
      data::read_feature_csv(out_dir / "features" / "CS-20.csv");
  std::cout << "\nRe-read CS-20 features: " << back.size() << " samples, "
            << back.feature_length() << " features (round-trip OK)\n";
  return 0;
}
