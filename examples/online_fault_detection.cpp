// Online fault detection: the in-band ODA deployment of Fig. 1.
//
// A CS model and a random forest are trained offline on the first 60% of
// every run in the Fault segment — the "fault catalog" a production system
// accumulates. The remaining 40% of each run is then replayed
// sample-by-sample through a CsStream, classifying every emitted signature
// in real time, exactly the control loop the paper's Fault use case feeds.
//
// Usage: online_fault_detection [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/streaming.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"
#include "ml/metrics.hpp"
#include "ml/random_forest.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 1.0;

  const hpcoda::Segment seg = hpcoda::make_fault_segment(config);
  const common::Matrix& sensors = seg.blocks.front().sensors;
  std::cout << "Fault segment: " << sensors.rows() << " sensors, "
            << sensors.cols() << " samples, " << seg.runs.size()
            << " runs\n";

  // Offline phase: CS model over the historical data, then a classifier
  // over the training share of every run.
  const core::CsModel model = core::train(sensors);
  core::StreamOptions opts;
  opts.window_length = seg.window.length;
  opts.window_step = seg.window.step;
  opts.cs.blocks = 20;

  data::Dataset train_set;
  for (const hpcoda::RunInfo& run : seg.runs) {
    const std::size_t train_len = (run.end - run.begin) * 3 / 5;
    if (train_len < opts.window_length) continue;
    core::CsStream trainer(model, opts);
    for (const core::Signature& sig :
         trainer.push_all(sensors.sub_cols(run.begin, train_len))) {
      train_set.features.append_row(sig.flatten());
      train_set.labels.push_back(run.label);
    }
  }
  ml::RandomForestClassifier forest;
  forest.fit(train_set.features, train_set.labels);
  std::cout << "Trained on " << train_set.size()
            << " signatures from the first 60% of each run\n\n";

  // Online phase: replay the held-out tail of every run through a stream.
  ml::ConfusionMatrix cm(seg.class_names.size());
  std::size_t n_online = 0;
  std::vector<std::size_t> per_class_hits(seg.class_names.size(), 0);
  std::vector<std::size_t> per_class_total(seg.class_names.size(), 0);
  for (const hpcoda::RunInfo& run : seg.runs) {
    const std::size_t train_len = (run.end - run.begin) * 3 / 5;
    const std::size_t test_begin = run.begin + train_len;
    if (run.end - test_begin < opts.window_length) continue;
    core::CsStream stream(model, opts);
    std::vector<double> column(sensors.rows());
    for (std::size_t c = test_begin; c < run.end; ++c) {
      for (std::size_t s = 0; s < sensors.rows(); ++s) {
        column[s] = sensors(s, c);
      }
      if (const auto sig = stream.push(column)) {
        const int predicted = forest.predict_one(sig->flatten());
        cm.add(run.label, predicted);
        const auto cls = static_cast<std::size_t>(run.label);
        ++per_class_total[cls];
        if (predicted == run.label) ++per_class_hits[cls];
        ++n_online;
      }
    }
  }

  std::printf("%-12s %8s\n", "Class", "Hits");
  for (std::size_t c = 0; c < seg.class_names.size(); ++c) {
    std::printf("%-12s %4zu/%-4zu\n", seg.class_names[c].c_str(),
                per_class_hits[c], per_class_total[c]);
  }
  std::printf("\nOnline totals: %zu signatures, accuracy %.4f, macro F1 "
              "%.4f\n",
              n_online, cm.accuracy(), cm.macro_f1());
  return 0;
}
