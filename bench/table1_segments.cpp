// Table I reproduction: overview of the HPC-ODA segment structure.
//
// Prints one row per segment with the same columns as the paper's Table I.
// Node, sensor, interval, wl and ws values match the paper exactly; data
// point and feature set counts are smaller because the synthetic segments
// are sized for laptop-scale experiments (pass a scale factor to grow them).
//
// Usage: table1_segments [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/summary.hpp"
#include "hpcoda/generator.hpp"

int main(int argc, char** argv) {
  csm::hpcoda::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);

  std::cout << "Table I: HPC-ODA segment overview (synthetic reproduction, "
               "scale="
            << config.scale << ")\n\n";
  std::printf("%-20s %5s %8s %10s %10s %9s %9s %6s %6s\n", "Segment", "Nodes",
              "Sensors", "DataPts", "Length", "Interval", "FeatSets", "wl",
              "ws");

  std::vector<csm::hpcoda::Segment> segments =
      csm::hpcoda::make_primary_segments(config);
  segments.push_back(csm::hpcoda::make_cross_arch_segment(config));

  for (const auto& segment : segments) {
    std::cout << csm::harness::format_summary(
                     csm::harness::summarize(segment))
              << '\n';
  }
  std::cout << "\nPaper reference (Table I): Fault 1x128 @1s wl=1m ws=10s; "
               "Application 16x52 @1s wl=30s ws=5s; Power 1x47 @100ms wl=1s "
               "ws=500ms; Infrastructure 148 nodes, 31 sensors @10s wl=5m "
               "ws=1m; Cross-Arch 3x(52,46,39) @1s wl=30s ws=2s.\n";
  return 0;
}
