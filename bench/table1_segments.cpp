// Table I reproduction: overview of the HPC-ODA segment structure.
//
// Prints one row per segment with the same columns as the paper's Table I.
// Node, sensor, interval, wl and ws values match the paper exactly; data
// point and feature set counts are smaller because the synthetic segments
// are sized for laptop-scale experiments (pass --scale to grow them).
//
// Under benchkit each segment build is one timed case, so the nightly perf
// workflow tracks generator throughput alongside the structural metrics.
#include <cstdio>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "benchkit/benchkit.hpp"
#include "harness/summary.hpp"
#include "hpcoda/generator.hpp"

namespace csm::benchkit {

Setup bench_setup() {
  return {"table1_segments",
          "Table I: HPC-ODA segment overview (synthetic reproduction)",
          kFlagScale, ""};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;

  std::cout << "Table I: HPC-ODA segment overview (synthetic reproduction, "
               "scale=" << config.scale << ")\n\n";
  std::printf("%-20s %5s %8s %10s %10s %9s %9s %6s %6s\n", "Segment", "Nodes",
              "Sensors", "DataPts", "Length", "Interval", "FeatSets", "wl",
              "ws");

  using Builder = std::function<hpcoda::Segment()>;
  const std::vector<std::pair<std::string, Builder>> builders = {
      {"fault", [&] { return hpcoda::make_fault_segment(config); }},
      {"application",
       [&] { return hpcoda::make_application_segment(config); }},
      {"power", [&] { return hpcoda::make_power_segment(config); }},
      {"infrastructure",
       [&] { return hpcoda::make_infrastructure_segment(config); }},
      {"cross-arch",
       [&] { return hpcoda::make_cross_arch_segment(config); }}};

  for (const auto& [name, build] : builders) {
    std::optional<hpcoda::Segment> segment;
    CaseResult& result = run.measure("generate/" + name, 1.0,
                                     [&] { segment = build(); });
    const harness::SegmentSummary summary = harness::summarize(*segment);
    result.items = static_cast<double>(summary.data_points);
    result.items_per_sec =
        result.wall_seconds > 0.0 ? result.items / result.wall_seconds : 0.0;
    result.param("segment", name);
    result.metric("nodes", static_cast<double>(summary.nodes));
    result.metric("sensors", static_cast<double>(summary.sensors));
    result.metric("data_points", static_cast<double>(summary.data_points));
    result.metric("feature_sets", static_cast<double>(summary.feature_sets));
    result.metric("wl", static_cast<double>(summary.wl));
    result.metric("ws", static_cast<double>(summary.ws));
    std::cout << harness::format_summary(summary) << '\n';
  }

  std::cout << "\nPaper reference (Table I): Fault 1x128 @1s wl=1m ws=10s; "
               "Application 16x52 @1s wl=30s ws=5s; Power 1x47 @100ms wl=1s "
               "ws=500ms; Infrastructure 148 nodes, 31 sensors @10s wl=5m "
               "ws=1m; Cross-Arch 3x(52,46,39) @1s wl=30s ws=2s.\n";
  return 0;
}

}  // namespace csm::benchkit
