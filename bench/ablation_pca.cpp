// Ablation: CS vs PCA-style dimensionality reduction.
//
// Section I-A argues that classic variance-maximising reduction (PCA and
// relatives) under-performs on ODA problems such as fault detection,
// because the critical status indicators do not contribute most of the
// variance [15]. This benchmark pits PCA-k signatures (2k features, same
// budget as CS-k) against CS-k on the Fault and Application segments.
// Expected: comparable on Application (load dominates variance there) but
// a clear CS win on Fault, where specific counters carry the signal.
//
// Usage: ablation_pca [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

namespace {

using namespace csm;

harness::BlockMethod pca_method(std::size_t components) {
  return harness::method_from_spec("pca:components=" +
                                   std::to_string(components));
}

}  // namespace

int main(int argc, char** argv) {
  hpcoda::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);

  std::cout << "Ablation: CS vs PCA at equal signature budgets "
               "(scale=" << config.scale << ")\n\n";
  std::printf("%-16s %-8s %9s %10s\n", "Segment", "Method", "SigSize",
              "MLScore");

  const auto models = harness::random_forest_factories();
  const hpcoda::Segment segments[] = {hpcoda::make_fault_segment(config),
                                      hpcoda::make_application_segment(config)};
  for (const hpcoda::Segment& segment : segments) {
    for (std::size_t k : {std::size_t{5}, std::size_t{20}}) {
      for (const harness::BlockMethod& method :
           {harness::make_cs_method(k), pca_method(k)}) {
        const harness::MethodEvaluation eval =
            harness::evaluate_method(segment, method, models);
        std::printf("%-16s %-8s %9zu %10.4f\n", eval.segment.c_str(),
                    eval.method.c_str(), eval.signature_size, eval.ml_score);
        std::fflush(stdout);
      }
    }
    std::cout << '\n';
  }
  return 0;
}
