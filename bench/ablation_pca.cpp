// Ablation: CS vs PCA-style dimensionality reduction.
//
// Section I-A argues that classic variance-maximising reduction (PCA and
// relatives) under-performs on ODA problems such as fault detection,
// because the critical status indicators do not contribute most of the
// variance [15]. This benchmark pits PCA-k signatures (2k features, same
// budget as CS-k) against CS-k on the Fault and Application segments.
// Expected: comparable on Application (load dominates variance there) but
// a clear CS win on Fault, where specific counters carry the signal.
//
// The pairing is registry-driven: --methods swaps in any spec line-up
// (default: CS and PCA at matched budgets 5 and 20).
#include <cstdio>
#include <iostream>

#include "benchkit/benchkit.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

namespace csm::benchkit {

Setup bench_setup() {
  return {"ablation_pca",
          "Ablation: CS vs PCA at equal signature budgets on the Fault and "
          "Application segments",
          kFlagMethods | kFlagScale,
          "cs:blocks=5,pca:components=5,cs:blocks=20,pca:components=20"};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;

  std::cout << "Ablation: CS vs PCA at equal signature budgets "
               "(scale=" << config.scale << ")\n\n";
  std::printf("%-16s %-24s %9s %10s\n", "Segment", "Method", "SigSize",
              "MLScore");

  const auto models = harness::random_forest_factories();
  const hpcoda::Segment segments[] = {
      hpcoda::make_fault_segment(config),
      hpcoda::make_application_segment(config)};
  for (const hpcoda::Segment& segment : segments) {
    const std::uint64_t shuffle_seed =
        run.derive_seed("shuffle/" + segment.name);
    for (const std::string& spec : run.methods()) {
      const harness::MethodEvaluation eval = harness::evaluate_method(
          segment, harness::method_from_spec(spec), models, 5,
          run.opts().repetitions, shuffle_seed);
      // Per-repetition mean: cv_seconds accumulates over the CV repeats.
      CaseResult& result = run.record(
          segment.name + "/" + spec,
          eval.generation_seconds +
              eval.cv_seconds /
                  static_cast<double>(run.opts().repetitions),
          static_cast<double>(eval.n_samples));
      result.seed = shuffle_seed;
      result.repetitions = run.opts().repetitions;
      result.param("segment", segment.name);
      result.param("method", spec);
      result.metric("ml_score", eval.ml_score);
      result.metric("signature_size",
                    static_cast<double>(eval.signature_size));
      std::printf("%-16s %-24s %9zu %10.4f\n", eval.segment.c_str(),
                  spec.c_str(), eval.signature_size, eval.ml_score);
      std::fflush(stdout);
    }
    std::cout << '\n';
  }
  return 0;
}

}  // namespace csm::benchkit
