// Figure 6 reproduction: 160-block signature heatmaps of Kripke, Linpack
// and Quicksilver over all 16 Application-segment nodes (~832 dimensions).
//
// Expected patterns (paper): Kripke shows clear iterative stripes in both
// channels; Linpack shows constant load with a pronounced initialisation
// phase; Quicksilver shows light load but a periodic pattern at the bottom
// of the imaginary channel from its oscillating CPU frequency.
//
// Under benchkit the shared training pass and each application's transform
// are timed cases; PGM images go to --out-dir (default fig6_out).
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "benchkit/benchkit.hpp"
#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "harness/heatmap.hpp"
#include "hpcoda/generator.hpp"
#include "hpcoda/types.hpp"

namespace csm::benchkit {

Setup bench_setup() {
  return {"fig6_app_signatures",
          "Fig. 6: 160-block signature heatmaps of Kripke/Linpack/"
          "Quicksilver across the Application segment",
          kFlagScale | kFlagOutDir, ""};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;
  const std::filesystem::path out_dir = run.opts().out_dir_or("fig6_out");
  std::filesystem::create_directories(out_dir);

  const hpcoda::Segment seg = hpcoda::make_application_segment(config);
  const common::Matrix all_nodes = harness::stack_blocks(seg);

  // One shared model trained on the full segment, as a production system
  // would; 160 blocks as in the paper.
  std::optional<core::CsModel> model;
  run.measure("train", static_cast<double>(all_nodes.cols()),
              [&] { model = core::train(all_nodes); })
      .param("dimensions", std::to_string(all_nodes.rows()));
  const core::CsPipeline pipeline(*model, core::CsOptions{160, false});

  for (hpcoda::AppId app : {hpcoda::AppId::kKripke, hpcoda::AppId::kLinpack,
                            hpcoda::AppId::kQuicksilver}) {
    const std::string name = hpcoda::app_name(app);
    // Concatenate the signature heatmaps of every run of this application
    // (the paper separates runs with vertical lines; we simply abut them).
    std::vector<core::Signature> sigs;
    std::size_t samples = 0;
    CaseResult& result = run.measure("transform/" + name, 0.0, [&] {
      sigs.clear();
      samples = 0;
      for (const hpcoda::RunInfo& run_info : seg.runs) {
        if (run_info.label != static_cast<int>(app)) continue;
        const common::Matrix window_data =
            all_nodes.sub_cols(run_info.begin, run_info.end - run_info.begin);
        samples += window_data.cols();
        const auto run_sigs = pipeline.transform(
            window_data, data::WindowSpec{seg.window.length, 2});
        sigs.insert(sigs.end(), run_sigs.begin(), run_sigs.end());
      }
    });
    result.items = static_cast<double>(samples);
    result.items_per_sec =
        result.wall_seconds > 0.0 ? result.items / result.wall_seconds : 0.0;
    result.param("application", name);
    result.metric("signatures", static_cast<double>(sigs.size()));

    const auto [re, im] = core::signature_heatmaps(sigs);
    std::cout << "=== " << name << " (" << sigs.size()
              << " signatures x 160 blocks) ===\n"
              << "--- real ---\n"
              << harness::ascii_heatmap(re, 18, 72) << "--- imaginary ---\n"
              << harness::ascii_heatmap(im, 18, 72) << '\n';
    harness::write_pgm(out_dir / ("fig6_" + name + "_real.pgm"), re);
    harness::write_pgm(out_dir / ("fig6_" + name + "_imag.pgm"), im);
  }
  std::cout << "PGM images written to " << out_dir << "/\n";
  return 0;
}

}  // namespace csm::benchkit
