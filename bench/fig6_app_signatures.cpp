// Figure 6 reproduction: 160-block signature heatmaps of Kripke, Linpack
// and Quicksilver over all 16 Application-segment nodes (~832 dimensions).
//
// Expected patterns (paper): Kripke shows clear iterative stripes in both
// channels; Linpack shows constant load with a pronounced initialisation
// phase; Quicksilver shows light load but a periodic pattern at the bottom
// of the imaginary channel from its oscillating CPU frequency.
//
// Usage: fig6_app_signatures [scale] [output_dir]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "harness/heatmap.hpp"
#include "hpcoda/generator.hpp"
#include "hpcoda/types.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);
  const std::filesystem::path out_dir = argc > 2 ? argv[2] : "fig6_out";
  std::filesystem::create_directories(out_dir);

  const hpcoda::Segment seg = hpcoda::make_application_segment(config);
  const common::Matrix all_nodes = harness::stack_blocks(seg);

  // One shared model trained on the full segment, as a production system
  // would; 160 blocks as in the paper.
  const core::CsPipeline pipeline(core::train(all_nodes),
                                  core::CsOptions{160, false});

  for (hpcoda::AppId app : {hpcoda::AppId::kKripke, hpcoda::AppId::kLinpack,
                            hpcoda::AppId::kQuicksilver}) {
    // Concatenate the signature heatmaps of every run of this application
    // (the paper separates runs with vertical lines; we simply abut them).
    std::vector<core::Signature> sigs;
    for (const hpcoda::RunInfo& run : seg.runs) {
      if (run.label != static_cast<int>(app)) continue;
      const common::Matrix window_data =
          all_nodes.sub_cols(run.begin, run.end - run.begin);
      const auto run_sigs = pipeline.transform(
          window_data, data::WindowSpec{seg.window.length, 2});
      sigs.insert(sigs.end(), run_sigs.begin(), run_sigs.end());
    }
    const auto [re, im] = core::signature_heatmaps(sigs);
    const std::string name = hpcoda::app_name(app);
    std::cout << "=== " << name << " (" << sigs.size()
              << " signatures x 160 blocks) ===\n"
              << "--- real ---\n"
              << harness::ascii_heatmap(re, 18, 72) << "--- imaginary ---\n"
              << harness::ascii_heatmap(im, 18, 72) << '\n';
    harness::write_pgm(out_dir / ("fig6_" + name + "_real.pgm"), re);
    harness::write_pgm(out_dir / ("fig6_" + name + "_imag.pgm"), im);
  }
  std::cout << "PGM images written to " << out_dir << "/\n";
  return 0;
}
