// Ablation: how much does Algorithm 1's greedy correlation ordering matter?
//
// Compares four ordering strategies — the paper's Algorithm 1, identity
// (no reordering), global-coefficient-only sorting, and a random
// permutation — on JS divergence and ML score for the Application segment
// at several block counts. Expected: Algorithm 1 dominates at small l
// (aggregating uncorrelated sensors destroys information), while at l = n
// ordering is irrelevant for ML (it only permutes features).
//
// Usage: ablation_ordering [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"
#include "stats/divergence.hpp"
#include "stats/finite_diff.hpp"
#include "stats/interpolate.hpp"

namespace {

using namespace csm;

const char* strategy_name(core::OrderingStrategy s) {
  switch (s) {
    case core::OrderingStrategy::kAlgorithm1: return "Algorithm1";
    case core::OrderingStrategy::kIdentity: return "Identity";
    case core::OrderingStrategy::kGlobalOnly: return "GlobalOnly";
    case core::OrderingStrategy::kRandom: return "Random";
  }
  return "?";
}

harness::BlockMethod strategy_method(core::OrderingStrategy strategy,
                                     std::size_t blocks) {
  return harness::BlockMethod{
      strategy_name(strategy),
      [strategy, blocks](const hpcoda::ComponentBlock& block) {
        auto pipeline = std::make_shared<const core::CsPipeline>(
            core::train_with_strategy(block.sensors, strategy),
            core::CsOptions{blocks, false});
        return std::make_unique<core::CsSignatureMethod>(std::move(pipeline));
      }};
}

double strategy_js(const hpcoda::Segment& seg,
                   core::OrderingStrategy strategy, std::size_t blocks) {
  double acc = 0.0;
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    const core::CsPipeline pipeline(
        core::train_with_strategy(block.sensors, strategy),
        core::CsOptions{blocks, false});
    const common::Matrix sorted = pipeline.sorted(block.sensors);
    const auto sigs = pipeline.transform(block.sensors, seg.window);
    auto [re, im] = core::signature_heatmaps(sigs);
    const double js_re = stats::js_divergence_2d(
        sorted, stats::resize_rows_nearest(re, sorted.rows()));
    const double js_im = stats::js_divergence_2d(
        stats::backward_diff_rows(sorted),
        stats::resize_rows_nearest(im, sorted.rows()));
    acc += 0.5 * (js_re + js_im);
  }
  return acc / static_cast<double>(seg.blocks.size());
}

}  // namespace

int main(int argc, char** argv) {
  hpcoda::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);

  std::cout << "Ablation: ordering strategy vs compression quality "
               "(Application segment, scale=" << config.scale << ")\n\n";
  std::printf("%-12s %-8s %10s %10s\n", "Strategy", "Blocks", "JSdiv",
              "MLScore");

  const hpcoda::Segment seg = hpcoda::make_application_segment(config);
  const auto models = harness::random_forest_factories();
  constexpr core::OrderingStrategy kStrategies[] = {
      core::OrderingStrategy::kAlgorithm1, core::OrderingStrategy::kIdentity,
      core::OrderingStrategy::kGlobalOnly, core::OrderingStrategy::kRandom};
  for (std::size_t blocks : {std::size_t{5}, std::size_t{20}}) {
    for (core::OrderingStrategy strategy : kStrategies) {
      const double js = strategy_js(seg, strategy, blocks);
      const double score =
          harness::evaluate_method(seg, strategy_method(strategy, blocks),
                                   models)
              .ml_score;
      std::printf("%-12s %-8zu %10.4f %10.4f\n", strategy_name(strategy),
                  blocks, js, score);
      std::fflush(stdout);
    }
    std::cout << '\n';
  }
  return 0;
}
