// Ablation: how much does Algorithm 1's greedy correlation ordering matter?
//
// Compares four ordering strategies — the paper's Algorithm 1, identity
// (no reordering), global-coefficient-only sorting, and a random
// permutation — on JS divergence and ML score for the Application segment
// at several block counts. Expected: Algorithm 1 dominates at small l
// (aggregating uncorrelated sensors destroys information), while at l = n
// ordering is irrelevant for ML (it only permutes features).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "benchkit/benchkit.hpp"
#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"
#include "stats/divergence.hpp"
#include "stats/finite_diff.hpp"
#include "stats/interpolate.hpp"

namespace {

using namespace csm;

const char* strategy_name(core::OrderingStrategy s) {
  switch (s) {
    case core::OrderingStrategy::kAlgorithm1: return "Algorithm1";
    case core::OrderingStrategy::kIdentity: return "Identity";
    case core::OrderingStrategy::kGlobalOnly: return "GlobalOnly";
    case core::OrderingStrategy::kRandom: return "Random";
  }
  return "?";
}

harness::BlockMethod strategy_method(core::OrderingStrategy strategy,
                                     std::size_t blocks) {
  return harness::BlockMethod{
      strategy_name(strategy),
      [strategy, blocks](const hpcoda::ComponentBlock& block) {
        auto pipeline = std::make_shared<const core::CsPipeline>(
            core::train_with_strategy(block.sensors, strategy),
            core::CsOptions{blocks, false});
        return std::make_unique<core::CsSignatureMethod>(std::move(pipeline));
      }};
}

double strategy_js(const hpcoda::Segment& seg,
                   core::OrderingStrategy strategy, std::size_t blocks) {
  double acc = 0.0;
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    const core::CsPipeline pipeline(
        core::train_with_strategy(block.sensors, strategy),
        core::CsOptions{blocks, false});
    const common::Matrix sorted = pipeline.sorted(block.sensors);
    const auto sigs = pipeline.transform(block.sensors, seg.window);
    auto [re, im] = core::signature_heatmaps(sigs);
    const double js_re = stats::js_divergence_2d(
        sorted, stats::resize_rows_nearest(re, sorted.rows()));
    const double js_im = stats::js_divergence_2d(
        stats::backward_diff_rows(sorted),
        stats::resize_rows_nearest(im, sorted.rows()));
    acc += 0.5 * (js_re + js_im);
  }
  return acc / static_cast<double>(seg.blocks.size());
}

}  // namespace

namespace csm::benchkit {

Setup bench_setup() {
  return {"ablation_ordering",
          "Ablation: ordering strategy (Algorithm 1 vs identity/global/"
          "random) vs JS divergence and ML score",
          kFlagScale, ""};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;

  std::cout << "Ablation: ordering strategy vs compression quality "
               "(Application segment, scale=" << config.scale << ")\n\n";
  std::printf("%-12s %-8s %10s %10s\n", "Strategy", "Blocks", "JSdiv",
              "MLScore");

  const hpcoda::Segment seg = hpcoda::make_application_segment(config);
  const auto models = harness::random_forest_factories();
  constexpr core::OrderingStrategy kStrategies[] = {
      core::OrderingStrategy::kAlgorithm1, core::OrderingStrategy::kIdentity,
      core::OrderingStrategy::kGlobalOnly, core::OrderingStrategy::kRandom};
  const std::vector<std::size_t> block_counts =
      run.quick() ? std::vector<std::size_t>{5}
                  : std::vector<std::size_t>{5, 20};
  const std::uint64_t shuffle_seed = run.derive_seed("shuffle/application");
  for (std::size_t blocks : block_counts) {
    for (core::OrderingStrategy strategy : kStrategies) {
      double js = 0.0;
      harness::MethodEvaluation eval;
      CaseResult& result = run.measure(
          std::string(strategy_name(strategy)) + "/blocks=" +
              std::to_string(blocks),
          1.0, [&] {
            js = strategy_js(seg, strategy, blocks);
            eval = harness::evaluate_method(
                seg, strategy_method(strategy, blocks), models, 5,
                1, shuffle_seed);
          });
      result.seed = shuffle_seed;
      result.items = static_cast<double>(eval.n_samples);
      result.items_per_sec = result.wall_seconds > 0.0
                                 ? result.items / result.wall_seconds
                                 : 0.0;
      result.param("strategy", strategy_name(strategy));
      result.param("blocks", std::to_string(blocks));
      result.metric("js_divergence", js);
      result.metric("ml_score", eval.ml_score);
      std::printf("%-12s %-8zu %10.4f %10.4f\n", strategy_name(strategy),
                  blocks, js, eval.ml_score);
      std::fflush(stdout);
    }
    std::cout << '\n';
  }
  return 0;
}

}  // namespace csm::benchkit
