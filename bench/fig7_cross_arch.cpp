// Section IV-F / Figure 7 reproduction: portability across architectures.
//
// The CS method is applied independently to three nodes with different
// architectures and sensor counts (Skylake 52, KNL 46, Rome 39), producing
// 20-block signatures; the three datasets are merged and 5-fold
// cross-validated with no knowledge of the architecture. The paper reports
// F1 = 0.995 (random forest) and 0.992 (MLP). Also renders the LAMMPS
// signature heatmaps per architecture (Fig. 7).
//
// Usage: fig7_cross_arch [scale] [output_dir]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "harness/heatmap.hpp"
#include "hpcoda/generator.hpp"
#include "hpcoda/types.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);
  const std::filesystem::path out_dir = argc > 2 ? argv[2] : "fig7_out";
  std::filesystem::create_directories(out_dir);

  const hpcoda::Segment seg = hpcoda::make_cross_arch_segment(config);

  // Step 1-2 of Section IV-F: per-node CS datasets (20 blocks), merged.
  data::Dataset merged;
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    hpcoda::Segment single = seg;
    single.blocks = {block};
    data::Dataset ds =
        harness::build_dataset(single, harness::make_cs_method(20));
    std::cout << block.name << ": " << ds.size() << " signatures of length "
              << ds.feature_length() << '\n';
    merged.merge(ds);
  }
  std::cout << "Merged dataset: " << merged.size() << " samples\n\n";

  // Step 3: 5-fold CV, architecture-blind.
  common::Rng rng(7);
  merged.shuffle(rng);
  const ml::CvResult rf = ml::cross_validate(
      merged, 5, harness::random_forest_factories(), rng);
  const ml::CvResult mlp =
      ml::cross_validate(merged, 5, harness::mlp_factories(), rng);
  std::printf("Random forest F1: %.4f   (paper: 0.995)\n", rf.mean_score);
  std::printf("MLP           F1: %.4f   (paper: 0.992)\n", mlp.mean_score);

  // Fig. 7: LAMMPS signature heatmaps on each architecture.
  const int lammps_label = static_cast<int>(hpcoda::AppId::kLammps) - 1;
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    const core::CsPipeline pipeline(core::train(block.sensors),
                                    core::CsOptions{20, false});
    std::vector<core::Signature> sigs;
    for (const hpcoda::RunInfo& run : seg.runs) {
      if (run.label != lammps_label) continue;
      const auto run_sigs = pipeline.transform(
          block.sensors.sub_cols(run.begin, run.end - run.begin),
          data::WindowSpec{seg.window.length, 2});
      sigs.insert(sigs.end(), run_sigs.begin(), run_sigs.end());
    }
    const auto [re, im] = core::signature_heatmaps(sigs);
    std::cout << "\n=== LAMMPS on " << block.name << " ("
              << block.sensors.rows() << " sensors, 20 blocks) ===\n"
              << "--- real ---\n"
              << harness::ascii_heatmap(re, 10, 72) << "--- imaginary ---\n"
              << harness::ascii_heatmap(im, 10, 72);
    harness::write_pgm(out_dir / ("fig7_" + block.name + "_real.pgm"), re);
    harness::write_pgm(out_dir / ("fig7_" + block.name + "_imag.pgm"), im);
  }
  std::cout << "\nPGM images written to " << out_dir << "/\n";
  return 0;
}
