// Section IV-F / Figure 7 reproduction: portability across architectures.
//
// The CS method is applied independently to three nodes with different
// architectures and sensor counts (Skylake 52, KNL 46, Rome 39), producing
// 20-block signatures; the three datasets are merged and 5-fold
// cross-validated with no knowledge of the architecture. The paper reports
// F1 = 0.995 (random forest) and 0.992 (MLP). Also renders the LAMMPS
// signature heatmaps per architecture (Fig. 7) into --out-dir.
//
// Under benchkit each per-architecture dataset build and both
// cross-validations are timed cases with the F1 scores as metrics.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "benchkit/benchkit.hpp"
#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "harness/heatmap.hpp"
#include "hpcoda/generator.hpp"
#include "hpcoda/types.hpp"

namespace csm::benchkit {

Setup bench_setup() {
  return {"fig7_cross_arch",
          "Fig. 7 / Sec. IV-F: architecture-blind CV over merged per-node "
          "CS datasets (Skylake/KNL/Rome) + LAMMPS heatmaps",
          kFlagScale | kFlagOutDir, ""};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;
  const std::filesystem::path out_dir = run.opts().out_dir_or("fig7_out");
  std::filesystem::create_directories(out_dir);

  const hpcoda::Segment seg = hpcoda::make_cross_arch_segment(config);

  // Step 1-2 of Section IV-F: per-node CS datasets (20 blocks), merged.
  data::Dataset merged;
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    hpcoda::Segment single = seg;
    single.blocks = {block};
    data::Dataset ds;
    run.measure("dataset/" + block.name,
                static_cast<double>(block.sensors.cols()),
                [&] {
                  ds = harness::build_dataset(single,
                                              harness::make_cs_method(20));
                })
        .param("architecture", block.name)
        .metric("signatures", static_cast<double>(ds.size()));
    std::cout << block.name << ": " << ds.size() << " signatures of length "
              << ds.feature_length() << '\n';
    merged.merge(ds);
  }
  std::cout << "Merged dataset: " << merged.size() << " samples\n\n";

  // Step 3: 5-fold CV, architecture-blind. One derived shuffle seed covers
  // both models — the RF-vs-MLP comparison holds the folds fixed.
  const std::uint64_t shuffle_seed = run.derive_seed("shuffle/merged");
  common::Rng rng(shuffle_seed);
  merged.shuffle(rng);
  ml::CvResult rf;
  run.measure("cv/random_forest", static_cast<double>(merged.size()),
              [&] {
                rf = ml::cross_validate(merged, 5,
                                        harness::random_forest_factories(),
                                        rng);
              })
      .metric("f1", rf.mean_score)
      .seed = shuffle_seed;
  ml::CvResult mlp;
  run.measure("cv/mlp", static_cast<double>(merged.size()),
              [&] {
                mlp = ml::cross_validate(merged, 5,
                                         harness::mlp_factories(), rng);
              })
      .metric("f1", mlp.mean_score)
      .seed = shuffle_seed;
  std::printf("Random forest F1: %.4f   (paper: 0.995)\n", rf.mean_score);
  std::printf("MLP           F1: %.4f   (paper: 0.992)\n", mlp.mean_score);

  // Fig. 7: LAMMPS signature heatmaps on each architecture.
  const int lammps_label = static_cast<int>(hpcoda::AppId::kLammps) - 1;
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    const core::CsPipeline pipeline(core::train(block.sensors),
                                    core::CsOptions{20, false});
    std::vector<core::Signature> sigs;
    for (const hpcoda::RunInfo& run_info : seg.runs) {
      if (run_info.label != lammps_label) continue;
      const auto run_sigs = pipeline.transform(
          block.sensors.sub_cols(run_info.begin,
                                 run_info.end - run_info.begin),
          data::WindowSpec{seg.window.length, 2});
      sigs.insert(sigs.end(), run_sigs.begin(), run_sigs.end());
    }
    const auto [re, im] = core::signature_heatmaps(sigs);
    std::cout << "\n=== LAMMPS on " << block.name << " ("
              << block.sensors.rows() << " sensors, 20 blocks) ===\n"
              << "--- real ---\n"
              << harness::ascii_heatmap(re, 10, 72) << "--- imaginary ---\n"
              << harness::ascii_heatmap(im, 10, 72);
    harness::write_pgm(out_dir / ("fig7_" + block.name + "_real.pgm"), re);
    harness::write_pgm(out_dir / ("fig7_" + block.name + "_imag.pgm"), im);
  }
  std::cout << "\nPGM images written to " << out_dir << "/\n";
  return 0;
}

}  // namespace csm::benchkit
