// Figure 2 reproduction: the three stages of the CS algorithm on AMG data
// from the Application segment (16 nodes, ~832 dimensions, 160 blocks).
//
// Prints ASCII heatmaps of (1) the raw sensor matrix, (2) the sorted matrix
// after the CS sorting stage and (3) the real/imaginary signature heatmaps,
// and writes full-resolution PGM images to --out-dir (default fig2_out).
// Under benchkit the training and transform stages are timed cases.
#include <filesystem>
#include <iostream>
#include <optional>

#include "benchkit/benchkit.hpp"
#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "harness/heatmap.hpp"
#include "hpcoda/generator.hpp"
#include "hpcoda/types.hpp"

namespace csm::benchkit {

Setup bench_setup() {
  return {"fig2_pipeline_viz",
          "Fig. 2: raw/sorted/signature heatmaps of the CS stages on AMG "
          "data (PGM images written to --out-dir)",
          kFlagScale | kFlagOutDir, ""};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;
  const std::filesystem::path out_dir = run.opts().out_dir_or("fig2_out");

  const hpcoda::Segment seg = hpcoda::make_application_segment(config);
  const common::Matrix all_nodes = harness::stack_blocks(seg);
  std::cout << "Application segment: " << all_nodes.rows()
            << " total dimensions across " << seg.n_blocks() << " nodes\n";

  // Locate the AMG run (label == AppId::kAmg) in the shared schedule.
  const int amg_label = static_cast<int>(hpcoda::AppId::kAmg);
  std::size_t begin = 0, end = 0;
  for (const hpcoda::RunInfo& run_info : seg.runs) {
    if (run_info.label == amg_label) {
      begin = run_info.begin;
      end = run_info.end;
      break;
    }
  }
  const common::Matrix amg = all_nodes.sub_cols(begin, end - begin);

  // Training stage on the AMG data itself (as in the paper's Fig. 2).
  std::optional<core::CsModel> model;
  run.measure("train", static_cast<double>(amg.cols()),
              [&] { model = core::train(amg); })
      .param("dimensions", std::to_string(amg.rows()))
      .param("samples", std::to_string(amg.cols()));

  const core::CsPipeline pipeline(*model, core::CsOptions{160, false});
  const common::Matrix sorted = pipeline.sorted(amg);
  std::vector<core::Signature> sigs;
  run.measure("transform", static_cast<double>(amg.cols()),
              [&] {
                sigs = pipeline.transform(
                    amg, data::WindowSpec{seg.window.length, 2});
              })
      .metric("signatures", static_cast<double>(sigs.size()));
  const auto [re, im] = core::signature_heatmaps(sigs);

  std::cout << "\n--- Raw time-series data (left of Fig. 2) ---\n"
            << harness::ascii_heatmap(
                   core::CsPipeline(
                       core::train_with_strategy(
                           amg, core::OrderingStrategy::kIdentity),
                       core::CsOptions{})
                       .sorted(amg),
                   20, 72)
            << "\n--- Sorted data (centre of Fig. 2) ---\n"
            << harness::ascii_heatmap(sorted, 20, 72)
            << "\n--- CS signatures, real part (" << sigs.size()
            << " signatures x 160 blocks) ---\n"
            << harness::ascii_heatmap(re, 20, 72)
            << "\n--- CS signatures, imaginary part ---\n"
            << harness::ascii_heatmap(im, 20, 72);

  std::filesystem::create_directories(out_dir);
  harness::write_pgm(out_dir / "fig2_raw.pgm", amg);
  harness::write_pgm(out_dir / "fig2_sorted.pgm", sorted);
  harness::write_pgm(out_dir / "fig2_signature_real.pgm", re);
  harness::write_pgm(out_dir / "fig2_signature_imag.pgm", im);
  std::cout << "\nPGM images written to " << out_dir << "/\n";
  return 0;
}

}  // namespace csm::benchkit
