// Figure 5 reproduction: time to compute one signature as a function of the
// aggregation window wl (n fixed at 100) and of the number of dimensions n
// (wl fixed at 100), for every method in the line-up.
//
// Expected shapes (paper): all methods linear in n; CS and Lan linear in
// wl while Tuncer/Bodik grow as O(wl log wl) from per-sensor percentile
// sorting; CS roughly an order of magnitude faster than Tuncer/Bodik at
// the high end; the CS block count barely matters.
//
// Previously built on Google Benchmark; now timed with benchkit's
// calibrated bench_loop, which also removes the library dependency. The
// line-up is registry-driven (--methods). Every sweep point draws its
// window from a distinct derived seed — recorded per case — and all
// methods at one sweep point share that window, because Fig. 5 compares
// methods on identical input. CS entries skip the Algorithm 1 training
// stage (identity ordering): Fig. 5 excludes training, and a random matrix
// has no correlation structure worth learning; other trainable methods are
// fitted on the benchmark window itself, outside the timed loop.
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/registry.hpp"
#include "benchkit/benchkit.hpp"
#include "common/rng.hpp"
#include "core/method_registry.hpp"
#include "core/pipeline.hpp"
#include "core/training.hpp"

namespace {

using namespace csm;

common::Matrix random_window(std::size_t n, std::size_t wl,
                             std::uint64_t seed) {
  common::Rng rng(seed);
  common::Matrix m(n, wl);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < wl; ++c) m(r, c) = rng.uniform();
  }
  return m;
}

// Trained method for one spec on one window. CS bypasses fit() to keep the
// identity ordering (see header comment); everything else goes through the
// uniform registry lifecycle.
std::unique_ptr<core::SignatureMethod> make_method(
    const std::string& spec_text, const common::Matrix& window) {
  const core::MethodSpec spec = core::MethodSpec::parse(spec_text);
  if (spec.name == "cs") {
    spec.expect_only({"blocks", "real-only"});
    auto pipeline = std::make_shared<const core::CsPipeline>(
        core::train_with_strategy(window, core::OrderingStrategy::kIdentity),
        core::CsOptions{spec.get_size_t("blocks", 0),
                        spec.get_flag("real-only")});
    return std::make_unique<core::CsSignatureMethod>(std::move(pipeline));
  }
  return baselines::default_registry().create(spec)->fit(window);
}

}  // namespace

namespace csm::benchkit {

Setup bench_setup() {
  return {"fig5_scalability",
          "Fig. 5: per-signature compute time vs window length (n=100) and "
          "vs dimensions (wl=100) for the method line-up",
          kFlagMethods,
          "tuncer,bodik,lan,cs:blocks=5,cs:blocks=20,cs:blocks=0"};
}

int bench_run(Runner& run) {
  const std::vector<std::size_t> sweep =
      run.quick() ? std::vector<std::size_t>{10, 100, 1000}
                  : std::vector<std::size_t>{10, 100, 1000, 4000, 10000};

  struct Axis {
    const char* name;   // Case-name prefix and swept parameter name.
    const char* fixed;  // The parameter held at 100.
  };
  const Axis axes[] = {{"window/wl", "n"}, {"dims/n", "wl"}};

  for (const Axis& axis : axes) {
    const bool window_axis = std::string_view(axis.name) == "window/wl";
    std::printf("== Sweep over %s (%s=100) ==\n",
                window_axis ? "window length wl" : "dimensions n",
                axis.fixed);
    std::printf("%10s %-24s %15s %15s\n", window_axis ? "wl" : "n", "method",
                "us/signature", "sig/s");
    for (const std::size_t value : sweep) {
      const std::size_t n = window_axis ? 100 : value;
      const std::size_t wl = window_axis ? value : 100;
      const std::string point =
          std::string(axis.name) + "=" + std::to_string(value);
      // One window per sweep point, shared across methods: Fig. 5 compares
      // methods on identical input.
      const std::uint64_t seed = run.derive_seed(point);
      const common::Matrix window = random_window(n, wl, seed);
      for (const std::string& spec : run.methods()) {
        const auto method = make_method(spec, window);
        CaseResult& result = run.bench_loop(
            point + "/" + spec, [&] { method->compute(window); });
        result.seed = seed;
        result.param("n", std::to_string(n));
        result.param("wl", std::to_string(wl));
        result.param("method", spec);
        std::printf("%10zu %-24s %15.2f %15.0f\n", value, spec.c_str(),
                    result.wall_seconds * 1e6, result.items_per_sec);
        std::fflush(stdout);
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace csm::benchkit
