// Figure 5 reproduction (google-benchmark): time to compute one signature
// as a function of the aggregation window wl (n fixed at 100) and of the
// number of dimensions n (wl fixed at 100), for every method.
//
// Expected shapes (paper): all methods linear in n; CS and Lan linear in
// wl while Tuncer/Bodik grow as O(wl log wl) from per-sensor percentile
// sorting; CS roughly an order of magnitude faster than Tuncer/Bodik at
// the high end; the CS block count barely matters.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/bodik.hpp"
#include "baselines/lan.hpp"
#include "baselines/tuncer.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/training.hpp"

namespace {

using namespace csm;

common::Matrix random_window(std::size_t n, std::size_t wl,
                             std::uint64_t seed) {
  common::Rng rng(seed);
  common::Matrix m(n, wl);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < wl; ++c) m(r, c) = rng.uniform();
  }
  return m;
}

// Identity-ordering CS model: Fig. 5 excludes the training stage, and a
// random matrix has no correlation structure worth learning.
std::shared_ptr<const core::CsPipeline> make_cs(const common::Matrix& window,
                                                std::size_t blocks) {
  return std::make_shared<const core::CsPipeline>(
      core::train_with_strategy(window, core::OrderingStrategy::kIdentity),
      core::CsOptions{blocks, false});
}

void run_method(benchmark::State& state, const core::SignatureMethod& method,
                const common::Matrix& window) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(method.compute(window));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// --- Sweep over the aggregation window wl, n = 100 (Fig. 5a). -------------

void BM_Tuncer_Window(benchmark::State& state) {
  const auto window =
      random_window(100, static_cast<std::size_t>(state.range(0)), 1);
  run_method(state, baselines::TuncerMethod(), window);
}
void BM_Bodik_Window(benchmark::State& state) {
  const auto window =
      random_window(100, static_cast<std::size_t>(state.range(0)), 2);
  run_method(state, baselines::BodikMethod(), window);
}
void BM_Lan_Window(benchmark::State& state) {
  const auto window =
      random_window(100, static_cast<std::size_t>(state.range(0)), 3);
  run_method(state, baselines::LanMethod(), window);
}
void BM_CS_Window(benchmark::State& state) {
  const auto window =
      random_window(100, static_cast<std::size_t>(state.range(0)), 4);
  const auto blocks = static_cast<std::size_t>(state.range(1));
  const core::CsSignatureMethod method(make_cs(window, blocks));
  run_method(state, method, window);
}

// --- Sweep over the number of dimensions n, wl = 100 (Fig. 5b). -----------

void BM_Tuncer_Dims(benchmark::State& state) {
  const auto window =
      random_window(static_cast<std::size_t>(state.range(0)), 100, 5);
  run_method(state, baselines::TuncerMethod(), window);
}
void BM_Bodik_Dims(benchmark::State& state) {
  const auto window =
      random_window(static_cast<std::size_t>(state.range(0)), 100, 6);
  run_method(state, baselines::BodikMethod(), window);
}
void BM_Lan_Dims(benchmark::State& state) {
  const auto window =
      random_window(static_cast<std::size_t>(state.range(0)), 100, 7);
  run_method(state, baselines::LanMethod(), window);
}
void BM_CS_Dims(benchmark::State& state) {
  const auto window =
      random_window(static_cast<std::size_t>(state.range(0)), 100, 8);
  const auto blocks = static_cast<std::size_t>(state.range(1));
  const core::CsSignatureMethod method(make_cs(window, blocks));
  run_method(state, method, window);
}

constexpr std::int64_t kSweep[] = {10, 100, 1000, 4000, 10000};

void window_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t wl : kSweep) b->Arg(wl);
  b->Unit(benchmark::kMicrosecond);
}
void cs_window_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t blocks : {5, 20, 0}) {  // 0 = CS-All.
    for (std::int64_t wl : kSweep) b->Args({wl, blocks});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Tuncer_Window)->Apply(window_args);
BENCHMARK(BM_Bodik_Window)->Apply(window_args);
BENCHMARK(BM_Lan_Window)->Apply(window_args);
BENCHMARK(BM_CS_Window)->Apply(cs_window_args);
BENCHMARK(BM_Tuncer_Dims)->Apply(window_args);
BENCHMARK(BM_Bodik_Dims)->Apply(window_args);
BENCHMARK(BM_Lan_Dims)->Apply(window_args);
BENCHMARK(BM_CS_Dims)->Apply(cs_window_args);

}  // namespace

BENCHMARK_MAIN();
