# ctest helper: run ${DRIVER} --quick --json twice and check that
# ${BENCHDIFF} parses the files (schema validation) and diffs them clean.
file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(tag a b)
  execute_process(
    COMMAND "${DRIVER}" --quick --json "${WORK_DIR}/BENCH_${tag}.json"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "driver run ${tag} failed (${rc}):\n${out}\n${err}")
  endif()
endforeach()

# Generous threshold: the two runs happen back to back on a shared CI box;
# this asserts schema compatibility and case-name stability, not timing.
execute_process(
  COMMAND "${BENCHDIFF}" "${WORK_DIR}/BENCH_a.json" "${WORK_DIR}/BENCH_b.json"
          --threshold-pct 400 --fail-on-missing
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "benchdiff failed (${rc}):\n${out}\n${err}")
endif()
message(STATUS "benchdiff clean:\n${out}")
