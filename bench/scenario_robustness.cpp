// Drift-triggered adaptive retrain under adversarial streaming scenarios.
//
// The kOnDrift policy (core::RetrainPolicy) claims two things: under a
// genuine mid-stream regime change it detects and retrains quickly, and on
// a stationary stream it never fires at all. This driver prices both claims
// against the replay::Scenario fault injectors: a stationary correlated
// synthetic stream is mutated by each scenario (clean control, mid-stream
// drift, sensor dropout, NaN sampler gaps, cascading bursts) and pushed
// column by column through a MethodStream per retrain policy (no retrain,
// periodic sync, drift-triggered). Every cell reports throughput, emitted
// signatures, retrain swaps and the kOnDrift counters (windows scored,
// windows flagged, drift retrains); the drift cell additionally reports
// detection latency in samples from scenario onset to the first
// drift-triggered retrain.
//
// Hard-FAIL invariants (the acceptance checks for the adaptive policy):
//
//   - the drift-triggered policy on the CLEAN control must report exactly
//     zero drift retrains — any false retrain fails the driver;
//   - under the injected mid-stream drift scenario it must retrain at least
//     once, never before the scenario onset, and within kLatencyBound
//     samples of the onset;
//   - the no-retrain baseline must report zero swaps in every scenario, and
//     every policy must emit exactly as many signatures as that baseline
//     (emission cadence is retrain-policy-independent);
//   - the fault scenarios (dropout / nan / cascade) must stream to
//     completion under every policy — detector robustness to non-drift
//     faults is reported, not pinned.
//
// hpcoda segments are deliberately NOT used here: they are intrinsically
// non-stationary (the fault segment contains faults, the application
// segment has workload phases), so a clean control over them flags
// constantly and the zero-false-retrain check would be meaningless. The
// driver generates its own stationary stream, where "clean" really is.
//
// Runs under the shared benchkit CLI (see --help). All policies within one
// scenario share that scenario's derived seed — the policy comparison
// requires identical input — and every seed lands in the JSON output.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "baselines/registry.hpp"
#include "benchkit/benchkit.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/method_stream.hpp"
#include "core/streaming.hpp"
#include "replay/scenario.hpp"

namespace {

using namespace csm;

// Window-stationary correlated stream: a two-factor model (two shared white
// latents with per-sensor loadings, plus idiosyncratic noise and a
// per-sensor level). Unlike stream_throughput's slow sinusoid — whose ~126
// sample period makes every 60-sample window sit at a different phase — the
// per-window means and pair correlations here are constant up to sampling
// noise, so the drift reference built from the first window stays
// representative for the whole run and a clean control really is quiet
// (measured clean scores: p50 ~0.12, max ~0.23; the drift injector below
// scores >1.5).
common::Matrix factor_stream(std::size_t n, std::size_t t,
                             std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> w1(n), w2(n), level(n);
  for (std::size_t r = 0; r < n; ++r) {
    w1[r] = std::cos(0.4 * static_cast<double>(r));
    w2[r] = std::sin(0.4 * static_cast<double>(r));
    level[r] = 1.0 + 0.25 * static_cast<double>(r);
  }
  common::Matrix s(n, t);
  for (std::size_t c = 0; c < t; ++c) {
    const double z1 = rng.gaussian();
    const double z2 = rng.gaussian();
    for (std::size_t r = 0; r < n; ++r) {
      s(r, c) = level[r] + w1[r] * z1 + w2[r] * z2 + 0.3 * rng.gaussian();
    }
  }
  return s;
}

// One (scenario x policy) cell: the whole mutated stream pushed column by
// column so the first drift-triggered retrain can be located to the sample.
struct CellRun {
  std::size_t signatures = 0;
  std::size_t swaps = 0;
  std::size_t drift_windows = 0;
  std::size_t drift_flags = 0;
  std::size_t drift_retrains = 0;
  /// 1-based sample index of the push that fired the first drift retrain.
  std::optional<std::size_t> first_drift_retrain_at;
  /// Non-empty when the stream died mid-run (a retrain refit over
  /// fault-poisoned history can throw — e.g. NaN gaps leave the CS fit with
  /// non-finite normalisation bounds). Reported per cell; only the
  /// no-retrain baseline and the drift-triggered policy are required to
  /// survive every scenario.
  std::string error;
};

CellRun run_cell(const std::shared_ptr<const core::SignatureMethod>& method,
                 const core::StreamOptions& opts, const common::Matrix& data) {
  CellRun out;
  core::MethodStream stream(method, opts);
  std::vector<double> column(data.rows());
  try {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      for (std::size_t r = 0; r < data.rows(); ++r) column[r] = data(r, c);
      if (stream.push(column)) ++out.signatures;
      if (!out.first_drift_retrain_at && stream.drift_retrains() > 0) {
        out.first_drift_retrain_at = c + 1;
      }
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.swaps = stream.retrain_swaps();
  out.drift_windows = stream.drift_windows();
  out.drift_flags = stream.drift_flags();
  out.drift_retrains = stream.drift_retrains();
  return out;
}

}  // namespace

namespace csm::benchkit {

Setup bench_setup() {
  return {"scenario_robustness",
          "drift-triggered adaptive retrain vs periodic and no-retrain "
          "baselines under adversarial streaming scenarios (clean control, "
          "mid-stream drift, dropout, NaN gaps, cascading bursts), with "
          "detection latency and false-retrain-rate per cell",
          0, ""};
}

int bench_run(Runner& run) {
  const bool quick = run.quick();

  const std::size_t sensors = 24;
  const std::size_t t = quick ? 6000 : 16384;
  const std::size_t onset = t / 2;  // Drift scenario switches regime here.
  // Detection budget from onset to the firing retrain: the reference is
  // scored every window_step samples and the patience streak must fill, so
  // the floor is window_step * patience; the budget leaves ~10x headroom
  // for the scorer to climb past the threshold.
  const std::size_t kLatencyBound = 600;

  core::StreamOptions base;
  base.window_length = 60;
  base.window_step = 10;
  base.history_length = 2048;
  base.cs.blocks = 8;

  // Tuned on the factor-model generator: clean windows score ~0.12 with a
  // measured max of ~0.23; the drift injector below scores >1.5 from its
  // first mutated window. 0.5 sits over 2x above the clean maximum and 3x
  // below the drifted minimum. Patience 3 means an isolated fluke window
  // can never fire a retrain on its own.
  const double drift_threshold = 0.5;
  const std::size_t drift_patience = 3;
  const std::size_t periodic_interval = 2048;

  struct ScenarioCase {
    const char* label;
    std::string spec;  ///< "" = clean control.
  };
  const ScenarioCase scenarios[] = {
      {"clean", ""},
      {"drift",
       "drift:at=" + std::to_string(onset) + ",mix=0.6,gain=1.6"},
      {"dropout", "dropout:p=0.02,len=40"},
      {"nan", "nan:p=0.01,len=25"},
      {"cascade", "cascade:p=0.02,len=60,span=8,mag=2.5"},
  };

  struct PolicyCase {
    const char* label;
    core::RetrainPolicy policy;
  };
  const PolicyCase policies[] = {
      {"off", core::RetrainPolicy::kSync},      // interval 0: never retrains.
      {"periodic", core::RetrainPolicy::kSync},
      {"ondrift", core::RetrainPolicy::kOnDrift},
  };

  std::printf("== Scenario robustness: retrain policies under adversarial "
              "streams (%zu sensors, %zu samples, wl=%zu ws=%zu) ==\n",
              sensors, t, base.window_length, base.window_step);
  std::printf("ondrift: threshold=%.2f patience=%zu; periodic: interval=%zu; "
              "drift onset at sample %zu\n",
              drift_threshold, drift_patience, periodic_interval, onset);
  std::printf("%10s %10s %12s %6s %6s %8s %6s %9s %9s\n", "scenario",
              "policy", "smp/s", "sigs", "swaps", "windows", "flags",
              "retrains", "latency");

  for (const ScenarioCase& sc : scenarios) {
    const std::uint64_t seed = run.derive_seed(std::string("scenario/") +
                                               sc.label);
    // The model is fit on a clean prefix — the live deployment story:
    // trained at standup, faults arrive later. The streamed data is the
    // scenario-mutated copy (the clean control streams the original).
    const common::Matrix clean = factor_stream(sensors, t, seed);
    const std::shared_ptr<const core::SignatureMethod> method =
        baselines::default_registry()
            .create("cs:blocks=8")
            ->fit(clean.sub_cols(0, 2000));
    common::Matrix data = clean;
    if (!sc.spec.empty()) {
      replay::Scenario scenario = replay::Scenario::parse(sc.spec, seed);
      scenario.apply(0, 0, data);
    }

    std::size_t baseline_signatures = 0;
    for (const PolicyCase& pc : policies) {
      core::StreamOptions opts = base;
      opts.retrain_policy = pc.policy;
      if (pc.policy == core::RetrainPolicy::kOnDrift) {
        opts.drift_threshold = drift_threshold;
        opts.drift_patience = drift_patience;
      } else if (std::string(pc.label) == "periodic") {
        opts.retrain_interval = periodic_interval;
      }

      const std::string name =
          std::string(sc.label) + "/" + pc.label;
      CellRun cell;
      CaseResult& result = run.measure(name, static_cast<double>(t), [&] {
        cell = run_cell(method, opts, data);
      });
      result.seed = seed;
      result.param("scenario", sc.spec.empty() ? "clean" : sc.spec);
      result.param("policy", pc.label);
      result.param("sensors", std::to_string(sensors));
      result.param("samples", std::to_string(t));
      result.metric("signatures", static_cast<double>(cell.signatures));
      result.metric("retrain_swaps", static_cast<double>(cell.swaps));
      result.metric("drift_windows", static_cast<double>(cell.drift_windows));
      result.metric("drift_flags", static_cast<double>(cell.drift_flags));
      result.metric("drift_retrains",
                    static_cast<double>(cell.drift_retrains));
      // False-retrain rate: drift retrains per scored window. Only the
      // clean control pins it to zero; fault scenarios report it.
      if (cell.drift_windows > 0) {
        result.metric("false_retrain_rate",
                      static_cast<double>(cell.drift_retrains) /
                          static_cast<double>(cell.drift_windows));
      }

      char latency_buf[32];
      std::snprintf(latency_buf, sizeof(latency_buf), "%s", "-");
      // Detection latency only means something where there is an onset to
      // measure from — the drift scenario.
      if (pc.policy == core::RetrainPolicy::kOnDrift &&
          std::string(sc.label) == "drift" && cell.first_drift_retrain_at) {
        const std::size_t fired = *cell.first_drift_retrain_at;
        const std::size_t latency = fired > onset ? fired - onset : 0;
        result.metric("detection_latency_samples",
                      static_cast<double>(latency));
        std::snprintf(latency_buf, sizeof(latency_buf), "%zu", latency);
      }
      std::printf("%10s %10s %12.0f %6zu %6zu %8zu %6zu %9zu %9s\n",
                  sc.label, pc.label, result.items_per_sec, cell.signatures,
                  cell.swaps, cell.drift_windows, cell.drift_flags,
                  cell.drift_retrains, latency_buf);
      if (!cell.error.empty()) {
        result.metric("stream_died", 1.0);
        std::printf("%10s %10s   stream died mid-run: %s\n", "", "",
                    cell.error.c_str());
      }

      // -- Hard-FAIL invariants ------------------------------------------
      const std::string policy_label = pc.label;
      // The no-retrain baseline and the drift-triggered policy must survive
      // every scenario (the drift scorer is NaN-robust and only refits on a
      // held flag); the periodic policy may die refitting over poisoned
      // history — that fragility is exactly what the table reports.
      if (!cell.error.empty() &&
          pc.policy != core::RetrainPolicy::kSync) {
        std::fprintf(stderr, "FAIL: %s died mid-stream: %s\n", name.c_str(),
                     cell.error.c_str());
        return 1;
      }
      if (!cell.error.empty() && policy_label == "off") {
        std::fprintf(stderr,
                     "FAIL: retrain-free baseline died under %s: %s\n",
                     sc.label, cell.error.c_str());
        return 1;
      }
      if (policy_label == "off") {
        baseline_signatures = cell.signatures;
        if (cell.swaps != 0 || cell.drift_retrains != 0) {
          std::fprintf(stderr,
                       "FAIL: no-retrain baseline retrained under %s "
                       "(%zu swaps, %zu drift retrains)\n",
                       sc.label, cell.swaps, cell.drift_retrains);
          return 1;
        }
      } else if (cell.error.empty() &&
                 cell.signatures != baseline_signatures) {
        std::fprintf(stderr,
                     "FAIL: %s emitted %zu signatures, baseline emitted "
                     "%zu\n", name.c_str(), cell.signatures,
                     baseline_signatures);
        return 1;
      }
      if (pc.policy == core::RetrainPolicy::kOnDrift) {
        if (std::string(sc.label) == "clean" && cell.drift_retrains != 0) {
          std::fprintf(stderr,
                       "FAIL: drift detector fired %zu false retrain(s) on "
                       "the stationary clean control\n", cell.drift_retrains);
          return 1;
        }
        if (std::string(sc.label) == "drift") {
          if (cell.drift_retrains == 0) {
            std::fprintf(stderr,
                         "FAIL: drift detector never retrained under the "
                         "injected regime change (max score never held "
                         "%.2f for %zu windows)\n",
                         drift_threshold, drift_patience);
            return 1;
          }
          const std::size_t fired = *cell.first_drift_retrain_at;
          if (fired <= onset) {
            std::fprintf(stderr,
                         "FAIL: drift retrain fired at sample %zu, before "
                         "the scenario onset at %zu\n", fired, onset);
            return 1;
          }
          if (fired - onset > kLatencyBound) {
            std::fprintf(stderr,
                         "FAIL: drift detection latency %zu samples "
                         "exceeds the %zu-sample budget\n",
                         fired - onset, kLatencyBound);
            return 1;
          }
        }
      }
    }
  }

  std::printf("\nOK: clean control fired zero false retrains; injected "
              "drift detected within %zu samples of onset\n", kLatencyBound);
  return 0;
}

}  // namespace csm::benchkit
