// Figure 3 reproduction: testing times (a), signature sizes (b) and ML
// scores (c) for the method line-up on the four primary HPC-ODA segments,
// with random forests (50 estimators) under 5-fold stratified
// cross-validation.
//
// Expected shapes (paper): Tuncer slowest and most accurate baseline; CS
// matches baseline ML scores with signatures up to ~10x smaller and lower
// generation times; Fault needs many blocks, Infrastructure is accurate
// even at CS-5.
//
// The line-up is registry-driven: the default reproduces the paper
// (Tuncer/Bodik/Lan/CS-{5,10,20,40,All}); any registered spec string works,
// e.g. --methods "cs:blocks=20,tuncer,pca:components=8". The CV shuffle
// seed is derived per segment (recorded per case) and shared across
// methods within a segment, so the fold assignment — part of what the
// method comparison holds fixed — is identical for every method.
#include <cstdio>
#include <iostream>

#include "benchkit/benchkit.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

namespace csm::benchkit {

Setup bench_setup() {
  return {"fig3_ml_performance",
          "Fig. 3: per-method signature size, generation/CV time and ML "
          "score on the primary HPC-ODA segments",
          kFlagMethods | kFlagScale,
          "tuncer,bodik,lan,cs:blocks=5,cs:blocks=10,cs:blocks=20,"
          "cs:blocks=40,cs:blocks=0"};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;
  const std::size_t repeats = run.opts().repetitions;

  std::cout << "Figure 3: signature methods on the HPC-ODA segments "
               "(scale=" << config.scale << ", repeats=" << repeats
            << ", RF 50 trees, 5-fold CV)\n\n";
  std::printf("%-16s %-20s %9s %8s %10s %10s %9s\n", "Segment", "Method",
              "SigSize", "Samples", "GenTime", "CVTime", "MLScore");

  const auto models = harness::random_forest_factories();
  for (const hpcoda::Segment& segment :
       hpcoda::make_primary_segments(config)) {
    const std::uint64_t shuffle_seed =
        run.derive_seed("shuffle/" + segment.name);
    for (const std::string& spec : run.methods()) {
      const harness::BlockMethod method = harness::method_from_spec(spec);
      const harness::MethodEvaluation eval = harness::evaluate_method(
          segment, method, models, 5, repeats, shuffle_seed);
      // eval.cv_seconds accumulates over the CV repeats; record the
      // per-repetition mean so runs with different --repetitions stay
      // benchdiff-comparable (dataset generation happens once).
      const double cv_mean = eval.cv_seconds / static_cast<double>(repeats);
      CaseResult& result =
          run.record(segment.name + "/" + spec,
                     eval.generation_seconds + cv_mean,
                     static_cast<double>(eval.n_samples));
      result.seed = shuffle_seed;
      result.repetitions = repeats;
      result.param("segment", segment.name);
      result.param("method", spec);
      result.param("method_name", eval.method);
      result.metric("ml_score", eval.ml_score);
      result.metric("signature_size",
                    static_cast<double>(eval.signature_size));
      result.metric("generation_seconds", eval.generation_seconds);
      result.metric("cv_seconds", cv_mean);
      std::printf("%-16s %-20s %9zu %8zu %9.2fs %9.2fs %9.4f\n",
                  eval.segment.c_str(), eval.method.c_str(),
                  eval.signature_size, eval.n_samples,
                  eval.generation_seconds, eval.cv_seconds, eval.ml_score);
      std::fflush(stdout);
    }
    std::cout << '\n';
  }
  return 0;
}

}  // namespace csm::benchkit
