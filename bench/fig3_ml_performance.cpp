// Figure 3 reproduction: testing times (a), signature sizes (b) and ML
// scores (c) for Tuncer / Bodik / Lan / CS-{5,10,20,40,All} on the four
// primary HPC-ODA segments, with random forests (50 estimators) under
// 5-fold stratified cross-validation.
//
// Expected shapes (paper): Tuncer slowest and most accurate baseline; CS
// matches baseline ML scores with signatures up to ~10x smaller and lower
// generation times; Fault needs many blocks, Infrastructure is accurate
// even at CS-5.
//
// Usage: fig3_ml_performance [scale] [repeats]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);
  std::size_t repeats = 1;
  if (argc > 2) repeats = static_cast<std::size_t>(std::atoi(argv[2]));

  std::cout << "Figure 3: signature methods on the HPC-ODA segments "
               "(scale=" << config.scale << ", repeats=" << repeats
            << ", RF 50 trees, 5-fold CV)\n\n";
  std::printf("%-16s %-8s %9s %8s %10s %10s %9s\n", "Segment", "Method",
              "SigSize", "Samples", "GenTime", "CVTime", "MLScore");

  const auto methods = harness::standard_methods();
  const auto models = harness::random_forest_factories();
  for (const hpcoda::Segment& segment :
       hpcoda::make_primary_segments(config)) {
    for (const harness::BlockMethod& method : methods) {
      const harness::MethodEvaluation eval =
          harness::evaluate_method(segment, method, models, 5, repeats);
      std::printf("%-16s %-8s %9zu %8zu %9.2fs %9.2fs %9.4f\n",
                  eval.segment.c_str(), eval.method.c_str(),
                  eval.signature_size, eval.n_samples,
                  eval.generation_seconds, eval.cv_seconds, eval.ml_score);
      std::fflush(stdout);
    }
    std::cout << '\n';
  }
  return 0;
}
