// Ablation: pruning the central signature blocks.
//
// Section III-C3 claims the central CS coefficients represent the least
// insightful sensors and "can be potentially eliminated with minimal loss
// of information". This benchmark prunes an increasing share of central
// blocks from CS-40 signatures on the Fault and Application segments and
// tracks the ML score. Expected: flat scores up to substantial pruning.
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchkit/benchkit.hpp"
#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

namespace {

using namespace csm;

// CS-40 with `pruned` central blocks removed before flattening.
class PrunedCsMethod final : public core::SignatureMethod {
 public:
  PrunedCsMethod(std::shared_ptr<const core::CsPipeline> pipeline,
                 std::size_t pruned)
      : pipeline_(std::move(pipeline)), pruned_(pruned) {}

  std::string name() const override {
    return "CS-40-p" + std::to_string(pruned_);
  }
  std::size_t signature_length(std::size_t) const override {
    return 2 * (40 - pruned_);
  }
  std::vector<double> compute(
      const common::MatrixView& window) const override {
    return pipeline_->transform_window(window).pruned_center(pruned_)
        .flatten();
  }

 private:
  std::shared_ptr<const core::CsPipeline> pipeline_;
  std::size_t pruned_;
};

harness::BlockMethod pruned_method(std::size_t pruned) {
  return harness::BlockMethod{
      "CS-40-p" + std::to_string(pruned),
      [pruned](const hpcoda::ComponentBlock& block) {
        auto pipeline = std::make_shared<const core::CsPipeline>(
            core::train(block.sensors), core::CsOptions{40, false});
        return std::make_unique<PrunedCsMethod>(std::move(pipeline), pruned);
      }};
}

}  // namespace

namespace csm::benchkit {

Setup bench_setup() {
  return {"ablation_pruning",
          "Ablation: central-block pruning of CS-40 signatures vs ML score",
          kFlagScale, ""};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;

  std::cout << "Ablation: central-block pruning of CS-40 signatures "
               "(scale=" << config.scale << ")\n\n";
  std::printf("%-16s %-10s %9s %10s\n", "Segment", "Pruned", "SigSize",
              "MLScore");

  const auto models = harness::random_forest_factories();
  const hpcoda::Segment segments[] = {
      hpcoda::make_fault_segment(config),
      hpcoda::make_application_segment(config)};
  const std::vector<std::size_t> prune_counts =
      run.quick() ? std::vector<std::size_t>{0, 20}
                  : std::vector<std::size_t>{0, 10, 20, 30};
  for (const hpcoda::Segment& segment : segments) {
    const std::uint64_t shuffle_seed =
        run.derive_seed("shuffle/" + segment.name);
    for (std::size_t pruned : prune_counts) {
      const harness::MethodEvaluation eval = harness::evaluate_method(
          segment, pruned_method(pruned), models, 5,
          run.opts().repetitions, shuffle_seed);
      // Per-repetition mean: cv_seconds accumulates over the CV repeats.
      CaseResult& result = run.record(
          segment.name + "/pruned=" + std::to_string(pruned),
          eval.generation_seconds +
              eval.cv_seconds /
                  static_cast<double>(run.opts().repetitions),
          static_cast<double>(eval.n_samples));
      result.seed = shuffle_seed;
      result.repetitions = run.opts().repetitions;
      result.param("segment", segment.name);
      result.param("pruned", std::to_string(pruned));
      result.metric("ml_score", eval.ml_score);
      result.metric("signature_size",
                    static_cast<double>(eval.signature_size));
      std::printf("%-16s %2zu/40      %9zu %10.4f\n", eval.segment.c_str(),
                  pruned, eval.signature_size, eval.ml_score);
      std::fflush(stdout);
    }
    std::cout << '\n';
  }
  return 0;
}

}  // namespace csm::benchkit
