// Ablation: pruning the central signature blocks.
//
// Section III-C3 claims the central CS coefficients represent the least
// insightful sensors and "can be potentially eliminated with minimal loss
// of information". This benchmark prunes an increasing share of central
// blocks from CS-40 signatures on the Fault and Application segments and
// tracks the ML score. Expected: flat scores up to substantial pruning.
//
// Usage: ablation_pruning [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

namespace {

using namespace csm;

// CS-40 with `pruned` central blocks removed before flattening.
class PrunedCsMethod final : public core::SignatureMethod {
 public:
  PrunedCsMethod(std::shared_ptr<const core::CsPipeline> pipeline,
                 std::size_t pruned)
      : pipeline_(std::move(pipeline)), pruned_(pruned) {}

  std::string name() const override {
    return "CS-40-p" + std::to_string(pruned_);
  }
  std::size_t signature_length(std::size_t) const override {
    return 2 * (40 - pruned_);
  }
  std::vector<double> compute(const common::Matrix& window) const override {
    return pipeline_->transform_window(window).pruned_center(pruned_)
        .flatten();
  }

 private:
  std::shared_ptr<const core::CsPipeline> pipeline_;
  std::size_t pruned_;
};

harness::BlockMethod pruned_method(std::size_t pruned) {
  return harness::BlockMethod{
      "CS-40-p" + std::to_string(pruned),
      [pruned](const hpcoda::ComponentBlock& block) {
        auto pipeline = std::make_shared<const core::CsPipeline>(
            core::train(block.sensors), core::CsOptions{40, false});
        return std::make_unique<PrunedCsMethod>(std::move(pipeline), pruned);
      }};
}

}  // namespace

int main(int argc, char** argv) {
  hpcoda::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);

  std::cout << "Ablation: central-block pruning of CS-40 signatures "
               "(scale=" << config.scale << ")\n\n";
  std::printf("%-16s %-10s %9s %10s\n", "Segment", "Pruned", "SigSize",
              "MLScore");

  const auto models = harness::random_forest_factories();
  const hpcoda::Segment segments[] = {hpcoda::make_fault_segment(config),
                                      hpcoda::make_application_segment(config)};
  for (const hpcoda::Segment& segment : segments) {
    for (std::size_t pruned : {std::size_t{0}, std::size_t{10},
                               std::size_t{20}, std::size_t{30}}) {
      const harness::MethodEvaluation eval =
          harness::evaluate_method(segment, pruned_method(pruned), models);
      std::printf("%-16s %2zu/40      %9zu %10.4f\n", eval.segment.c_str(),
                  pruned, eval.signature_size, eval.ml_score);
      std::fflush(stdout);
    }
    std::cout << '\n';
  }
  return 0;
}
