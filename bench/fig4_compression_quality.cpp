// Figure 4 reproduction: Jensen-Shannon divergence (Eq. 4) and ML score as
// a function of the CS signature length l in {5, 10, 20, 40, All}, with and
// without the imaginary (derivative) channel ("-R" variant).
//
// Expected shapes (paper): JS divergence decreases and ML score increases
// monotonically with l; dropping the imaginary channel adds ~0.2 JS
// divergence everywhere, hurts Power and Fault scores noticeably, barely
// moves Infrastructure.
//
// Registry-driven line-up: each spec is one case per segment; the default
// reproduces the paper's sweep (both channel variants at every length).
// The Eq. 4 JS-divergence metric is defined for the CS representation, so
// it is reported for cs specs and omitted for other methods.
#include <cstdio>
#include <iostream>
#include <string>

#include "benchkit/benchkit.hpp"
#include "core/method_registry.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

namespace csm::benchkit {

Setup bench_setup() {
  return {"fig4_compression_quality",
          "Fig. 4: compression fidelity (Eq. 4 JS divergence) and ML score "
          "vs CS signature length, with/without the imaginary channel",
          kFlagMethods | kFlagScale,
          "cs:blocks=5,cs:blocks=5,real-only,"
          "cs:blocks=10,cs:blocks=10,real-only,"
          "cs:blocks=20,cs:blocks=20,real-only,"
          "cs:blocks=40,cs:blocks=40,real-only,"
          "cs:blocks=0,cs:blocks=0,real-only"};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;

  std::cout << "Figure 4: compression fidelity vs signature length "
               "(scale=" << config.scale << ")\n\n";
  std::printf("%-16s %-28s %10s %12s\n", "Segment", "Method", "JSdiv",
              "MLScore");

  const auto models = harness::random_forest_factories();
  for (const hpcoda::Segment& segment :
       hpcoda::make_primary_segments(config)) {
    const std::uint64_t shuffle_seed =
        run.derive_seed("shuffle/" + segment.name);
    for (const std::string& spec_text : run.methods()) {
      const core::MethodSpec spec = core::MethodSpec::parse(spec_text);
      const harness::BlockMethod method =
          harness::method_from_spec(spec_text);
      const harness::MethodEvaluation eval = harness::evaluate_method(
          segment, method, models, 5, run.opts().repetitions, shuffle_seed);
      // Per-repetition mean: cv_seconds accumulates over the CV repeats.
      CaseResult& result = run.record(
          segment.name + "/" + spec_text,
          eval.generation_seconds +
              eval.cv_seconds /
                  static_cast<double>(run.opts().repetitions),
          static_cast<double>(eval.n_samples));
      result.seed = shuffle_seed;
      result.repetitions = run.opts().repetitions;
      result.param("segment", segment.name);
      result.param("method", spec_text);
      result.metric("ml_score", eval.ml_score);
      result.metric("signature_size",
                    static_cast<double>(eval.signature_size));
      double js = -1.0;
      if (spec.name == "cs") {
        js = harness::cs_js_divergence(segment,
                                       spec.get_size_t("blocks", 0),
                                       spec.get_flag("real-only"));
        result.metric("js_divergence", js);
      }
      std::printf("%-16s %-28s %10.4f %12.4f\n", segment.name.c_str(),
                  spec_text.c_str(), js, eval.ml_score);
      std::fflush(stdout);
    }
    std::cout << '\n';
  }
  return 0;
}

}  // namespace csm::benchkit
