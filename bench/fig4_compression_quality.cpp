// Figure 4 reproduction: Jensen-Shannon divergence (Eq. 4) and ML score as
// a function of the CS signature length l in {5, 10, 20, 40, All}, with and
// without the imaginary (derivative) channel ("-R" variant).
//
// Expected shapes (paper): JS divergence decreases and ML score increases
// monotonically with l; dropping the imaginary channel adds ~0.2 JS
// divergence everywhere, hurts Power and Fault scores noticeably, barely
// moves Infrastructure.
//
// Usage: fig4_compression_quality [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);

  std::cout << "Figure 4: compression fidelity vs signature length "
               "(scale=" << config.scale << ")\n\n";
  std::printf("%-16s %-8s %10s %10s %12s %12s\n", "Segment", "Length",
              "JSdiv", "JSdiv-R", "MLScore", "MLScore-R");

  const auto models = harness::random_forest_factories();
  const std::size_t lengths[] = {5, 10, 20, 40, 0};  // 0 = All.
  for (const hpcoda::Segment& segment :
       hpcoda::make_primary_segments(config)) {
    for (std::size_t l : lengths) {
      const std::string label =
          l == 0 ? "All" : std::to_string(l);
      const double js = harness::cs_js_divergence(segment, l, false);
      const double js_r = harness::cs_js_divergence(segment, l, true);
      const double score =
          harness::evaluate_method(segment, harness::make_cs_method(l, false),
                                   models)
              .ml_score;
      const double score_r =
          harness::evaluate_method(segment, harness::make_cs_method(l, true),
                                   models)
              .ml_score;
      std::printf("%-16s %-8s %10.4f %10.4f %12.4f %12.4f\n",
                  segment.name.c_str(), label.c_str(), js, js_r, score,
                  score_r);
      std::fflush(stdout);
    }
    std::cout << '\n';
  }
  return 0;
}
