// Ablation: aggregation window length wl vs fidelity and accuracy.
//
// Section IV-C notes that "a decrease in wl" has the same effect as an
// increase in l — higher fidelity — but omits the sweep for space. This
// benchmark runs it: CS-20 on the Power segment at several window lengths
// (shorter windows = more temporal resolution per signature but noisier
// statistics). Expected: JS divergence decreases as wl shrinks; the ML
// score for the short-horizon power prediction task improves with shorter
// windows, then saturates.
//
// Usage: ablation_window [scale]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

int main(int argc, char** argv) {
  using namespace csm;
  hpcoda::GeneratorConfig config;
  if (argc > 1) config.scale = std::atof(argv[1]);

  std::cout << "Ablation: window length sweep, CS-20 on Power "
               "(scale=" << config.scale << ")\n\n";
  std::printf("%-8s %-8s %10s %10s %10s\n", "wl", "Samples", "JSdiv",
              "MLScore", "SigSize");

  const auto models = harness::random_forest_factories();
  for (std::size_t wl : {std::size_t{5}, std::size_t{10}, std::size_t{20},
                         std::size_t{40}, std::size_t{80}}) {
    hpcoda::Segment seg = hpcoda::make_power_segment(config);
    seg.window.length = wl;
    seg.window.step = std::max<std::size_t>(1, wl / 2);
    const double js = harness::cs_js_divergence(seg, 20);
    const harness::MethodEvaluation eval =
        harness::evaluate_method(seg, harness::make_cs_method(20), models);
    std::printf("%-8zu %-8zu %10.4f %10.4f %10zu\n", wl, eval.n_samples, js,
                eval.ml_score, eval.signature_size);
    std::fflush(stdout);
  }
  return 0;
}
