// Ablation: aggregation window length wl vs fidelity and accuracy.
//
// Section IV-C notes that "a decrease in wl" has the same effect as an
// increase in l — higher fidelity — but omits the sweep for space. This
// benchmark runs it: CS-20 on the Power segment at several window lengths
// (shorter windows = more temporal resolution per signature but noisier
// statistics). Expected: JS divergence decreases as wl shrinks; the ML
// score for the short-horizon power prediction task improves with shorter
// windows, then saturates.
#include <cstdio>
#include <iostream>
#include <vector>

#include "benchkit/benchkit.hpp"
#include "harness/experiment.hpp"
#include "hpcoda/generator.hpp"

namespace csm::benchkit {

Setup bench_setup() {
  return {"ablation_window",
          "Ablation: window-length sweep of CS-20 on the Power segment "
          "(JS divergence + ML score)",
          kFlagScale, ""};
}

int bench_run(Runner& run) {
  hpcoda::GeneratorConfig config;
  config.scale = run.opts().scale_or(run.quick() ? 0.3 : 1.0);
  config.seed = run.opts().seed;

  std::cout << "Ablation: window length sweep, CS-20 on Power "
               "(scale=" << config.scale << ")\n\n";
  std::printf("%-8s %-8s %10s %10s %10s\n", "wl", "Samples", "JSdiv",
              "MLScore", "SigSize");

  const auto models = harness::random_forest_factories();
  // Quick mode caps wl at 20: at the reduced scale the Power segment's runs
  // hold too few wl=40/80 windows to fill 5 CV folds.
  const std::vector<std::size_t> window_lengths =
      run.quick() ? std::vector<std::size_t>{5, 10, 20}
                  : std::vector<std::size_t>{5, 10, 20, 40, 80};
  const std::uint64_t shuffle_seed = run.derive_seed("shuffle/power");
  for (std::size_t wl : window_lengths) {
    hpcoda::Segment seg = hpcoda::make_power_segment(config);
    seg.window.length = wl;
    seg.window.step = std::max<std::size_t>(1, wl / 2);
    const double js = harness::cs_js_divergence(seg, 20);
    const harness::MethodEvaluation eval = harness::evaluate_method(
        seg, harness::make_cs_method(20), models, 5,
        run.opts().repetitions, shuffle_seed);
    // Per-repetition mean: cv_seconds accumulates over the CV repeats.
    CaseResult& result = run.record(
        "wl=" + std::to_string(wl),
        eval.generation_seconds +
            eval.cv_seconds / static_cast<double>(run.opts().repetitions),
        static_cast<double>(eval.n_samples));
    result.seed = shuffle_seed;
    result.repetitions = run.opts().repetitions;
    result.param("wl", std::to_string(wl));
    result.param("ws", std::to_string(seg.window.step));
    result.metric("js_divergence", js);
    result.metric("ml_score", eval.ml_score);
    result.metric("signature_size",
                  static_cast<double>(eval.signature_size));
    std::printf("%-8zu %-8zu %10.4f %10.4f %10zu\n", wl, eval.n_samples, js,
                eval.ml_score, eval.signature_size);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace csm::benchkit
