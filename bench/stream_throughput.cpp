// Online ingestion throughput: ring-buffer CsStream vs the erase-front
// history it replaced, window-copy emit vs the zero-copy MatrixView emit,
// and StreamEngine scaling across node counts.
//
// The paper's in-band ODA claim only holds if the per-sample cost of the
// online path is independent of how much history a stream retains. The old
// CsStream kept its history in a std::vector<std::vector<double>>: one heap
// allocation per push and an O(history) erase-front once the buffer was
// full, so throughput degraded as history_length grew. NaiveStream below
// reproduces that implementation verbatim as the "before" baseline; the
// library CsStream (common::RingMatrix) is the "after". The copy-vs-view
// table isolates the emit path: CopyStream reproduces the pre-MatrixView
// emit (copy_latest window assembly + sorted/derivative temporaries per
// signature) while the library CsStream reads the ring segments in place
// through the fused smooth_window kernel — the two must emit identical
// signatures, and the view path must not be slower at any history length.
// The last table fans synthetic node fleets through StreamEngine and
// reports aggregate samples/sec, and the driver exits non-zero if
// StreamEngine ever disagrees with per-node CsStream runs.
//
// The daemon-loopback table prices the fleet-daemon service path: the same
// ingest driven through a FleetServer over the in-process loopback
// transport — CSMF frame encode, CRC, connection servicing and all —
// against direct StreamEngine calls. The drained signatures must be
// bit-for-bit identical to the direct engine's, or the driver fails.
//
// The cold-start table measures the fleet-standup path the ModelPack exists
// for: reviving all N trained node models, once from N per-file text models
// (open + parse each) and once from a single mmap-ed pack (open once,
// binary-decode N records). Engines stood up from the two load paths must
// emit identical signatures on identical input, and the driver fails if the
// pack path is not at least 2x faster (it measures far higher in practice).
//
// The train-kernel table prices the retrain fit itself: the cache-tiled
// shifted-correlation pass against the scalar reference it replaced, with a
// bit-identity probe (the driver fails on a single differing byte) and a 2x
// speedup floor at n=1024. The retrain-policy table then pushes the same
// single-node stream under no retraining, inline (sync) retraining and
// shadow-fit (async) retraining, recording per-push wall times: the sync
// stall surfaces in the p99/max columns, and the driver fails if async
// ingest p99 with retrains firing exceeds 5x the no-retrain baseline.
//
// Runs under the shared benchkit CLI (see --help). Naive and ring cases at
// one sweep point share the same derived data seed — the before/after
// comparison requires identical input — while distinct sweep points get
// distinct seeds, all recorded in the JSON output.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "benchkit/benchkit.hpp"
#include "common/matrix.hpp"
#include "common/ring_matrix.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/method_registry.hpp"
#include "core/method_stream.hpp"
#include "core/model_codec.hpp"
#include "core/model_pack.hpp"
#include "core/smoothing.hpp"
#include "core/stream_engine.hpp"
#include "core/streaming.hpp"
#include "core/training.hpp"
#include "net/loopback.hpp"
#include "net/message.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "stats/correlation.hpp"
#include "stats/finite_diff.hpp"

namespace {

using namespace csm;

common::Matrix synthetic_stream(std::size_t n, std::size_t t,
                                std::uint64_t seed) {
  common::Rng rng(seed);
  common::Matrix s(n, t);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < t; ++c) {
      s(r, c) = std::sin(0.05 * static_cast<double>(c) +
                         0.3 * static_cast<double>(r)) +
                0.1 * rng.gaussian();
    }
  }
  return s;
}

// The pre-ring-buffer CsStream, kept verbatim as the "before" baseline:
// vector-of-vectors history with erase-front eviction and element-by-element
// window assembly. Retraining omitted (disabled in the comparison anyway).
class NaiveStream {
 public:
  NaiveStream(core::CsModel model, core::StreamOptions options)
      : model_(std::move(model)), options_(options) {
    history_.reserve(options_.history_length);
    next_emit_at_ = options_.window_length;
  }

  std::optional<core::Signature> push(std::span<const double> column) {
    if (history_.size() == options_.history_length) {
      history_.erase(history_.begin());  // O(history) shift on every push.
    }
    history_.emplace_back(column.begin(), column.end());
    ++samples_seen_;

    if (samples_seen_ < next_emit_at_) return std::nullopt;
    next_emit_at_ += options_.window_step;

    const std::size_t n = model_.n_sensors();
    const std::size_t wl = options_.window_length;
    const bool have_seed = history_.size() > wl;
    const std::size_t first = history_.size() - wl;
    common::Matrix window(n, wl);
    for (std::size_t c = 0; c < wl; ++c) {
      for (std::size_t r = 0; r < n; ++r) {
        window(r, c) = history_[first + c][r];
      }
    }
    const common::Matrix sorted = model_.sort(window);
    common::Matrix derivs;
    if (have_seed) {
      common::Matrix seed_col(n, 1);
      for (std::size_t r = 0; r < n; ++r) {
        seed_col(r, 0) = history_[first - 1][r];
      }
      const common::Matrix sorted_seed = model_.sort(seed_col);
      derivs = stats::backward_diff_rows_seeded(sorted, sorted_seed.col(0));
    } else {
      derivs = stats::backward_diff_rows(sorted);
    }
    return core::smooth(sorted, derivs,
                        options_.cs.resolve_blocks(model_.n_sensors()));
  }

 private:
  core::CsModel model_;
  core::StreamOptions options_;
  std::vector<std::vector<double>> history_;
  std::size_t samples_seen_ = 0;
  std::size_t next_emit_at_ = 0;
};

std::size_t run_naive(const core::CsModel& model,
                      const core::StreamOptions& opts,
                      const common::Matrix& data) {
  NaiveStream stream(model, opts);
  std::vector<double> column(data.rows());
  std::size_t sigs = 0;
  for (std::size_t c = 0; c < data.cols(); ++c) {
    for (std::size_t r = 0; r < data.rows(); ++r) column[r] = data(r, c);
    if (stream.push(column)) ++sigs;
  }
  return sigs;
}

// The pre-MatrixView CsStream emit path, kept verbatim as the copy-vs-view
// "before" baseline: ring-buffer ingest (that part stays), but every emit
// assembles the window with copy_latest into a reused matrix, materialises
// a sorted matrix, a sorted seed and a derivative matrix, then smooths.
class CopyStream {
 public:
  CopyStream(core::CsModel model, core::StreamOptions options)
      : model_(std::move(model)),
        options_(options),
        history_(model_.n_sensors(), options_.history_length),
        window_(model_.n_sensors(), options_.window_length),
        seed_col_(model_.n_sensors(), 1) {
    next_emit_at_ = options_.window_length;
  }

  std::vector<core::Signature> push_all(const common::Matrix& columns) {
    std::vector<core::Signature> out;
    for (std::size_t c = 0; c < columns.cols(); ++c) {
      const std::span<double> slot = history_.push_slot();
      const double* src = columns.data() + c;
      const std::size_t stride = columns.cols();
      for (std::size_t r = 0; r < slot.size(); ++r) slot[r] = src[r * stride];
      ++samples_seen_;
      if (samples_seen_ < next_emit_at_) continue;
      next_emit_at_ += options_.window_step;

      const std::size_t n = model_.n_sensors();
      const std::size_t wl = options_.window_length;
      const bool have_seed = history_.size() > wl;
      history_.copy_latest(wl, window_);
      const common::Matrix sorted = model_.sort(window_);
      common::Matrix derivs;
      if (have_seed) {
        const std::span<const double> seed = history_.newest(wl);
        for (std::size_t r = 0; r < n; ++r) seed_col_(r, 0) = seed[r];
        const common::Matrix sorted_seed = model_.sort(seed_col_);
        derivs = stats::backward_diff_rows_seeded(sorted, sorted_seed.col(0));
      } else {
        derivs = stats::backward_diff_rows(sorted);
      }
      out.push_back(core::smooth(sorted, derivs,
                                 options_.cs.resolve_blocks(n)));
    }
    return out;
  }

 private:
  core::CsModel model_;
  core::StreamOptions options_;
  common::RingMatrix history_;
  common::Matrix window_;
  common::Matrix seed_col_;
  std::size_t samples_seen_ = 0;
  std::size_t next_emit_at_ = 0;
};

std::size_t run_ring(const core::CsModel& model,
                     const core::StreamOptions& opts,
                     const common::Matrix& data) {
  core::CsStream stream(model, opts);
  return stream.push_all(data).size();
}

bool engine_matches_per_node_streams(const core::StreamOptions& opts,
                                     std::uint64_t seed) {
  const std::size_t n_nodes = 8;
  core::StreamEngine engine(opts);
  std::vector<common::Matrix> batches;
  std::vector<core::CsModel> models;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    batches.push_back(synthetic_stream(24, 600, seed + i));
    models.push_back(core::train(batches.back()));
    engine.add_node("node", models.back());
  }
  engine.ingest_batch(batches);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    core::CsStream reference(models[i], opts);
    const auto expected = reference.push_all(batches[i]);
    const auto got = engine.drain(i);
    if (got.size() != expected.size()) return false;
    for (std::size_t k = 0; k < got.size(); ++k) {
      if (!(got[k] == expected[k].flatten())) return false;
    }
  }
  return true;
}

// One retrain-policy run: the whole batch pushed column by column through a
// MethodStream with per-push wall time recorded, so the retrain tables can
// quote ingest latency quantiles rather than throughput alone.
struct RetrainRun {
  std::size_t signatures = 0;
  std::size_t swaps = 0;
  std::size_t aborts = 0;
  std::vector<double> push_us;  ///< One wall-clock entry per push.
};

RetrainRun run_retrain_policy(
    const std::shared_ptr<const core::SignatureMethod>& method,
    const core::StreamOptions& opts, const common::Matrix& data) {
  RetrainRun out;
  out.push_us.reserve(data.cols());
  core::MethodStream stream(method, opts);
  std::vector<double> column(data.rows());
  for (std::size_t c = 0; c < data.cols(); ++c) {
    for (std::size_t r = 0; r < data.rows(); ++r) column[r] = data(r, c);
    const auto t0 = std::chrono::steady_clock::now();
    if (stream.push(column)) ++out.signatures;
    const auto t1 = std::chrono::steady_clock::now();
    out.push_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  out.swaps = stream.retrain_swaps();
  out.aborts = stream.retrain_aborts();
  return out;
}

double quantile_us(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  const std::size_t k = std::min(
      samples.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(k),
                   samples.end());
  return samples[k];
}

}  // namespace

namespace csm::benchkit {

Setup bench_setup() {
  return {"stream_throughput",
          "CsStream push path (erase-front history vs ring buffer), "
          "StreamEngine fleet-scaling throughput, the daemon loopback "
          "frame path vs direct engine ingest, and fleet cold-start from "
          "per-file models vs one model pack",
          kFlagOutDir, ""};
}

int bench_run(Runner& run) {
  const bool quick = run.quick();

  core::StreamOptions opts;
  opts.window_length = 60;
  opts.window_step = 10;
  opts.cs.blocks = 20;

  const std::vector<std::size_t> sensor_counts =
      quick ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64};
  const std::vector<std::size_t> histories =
      quick ? std::vector<std::size_t>{512, 4096}
            : std::vector<std::size_t>{1024, 4096, 16384};

  std::printf("== CsStream push path: erase-front history vs ring buffer "
              "(wl=60, ws=10) ==\n");
  std::printf("%8s %9s %9s %15s %15s %9s\n", "sensors", "history", "samples",
              "naive (smp/s)", "ring (smp/s)", "speedup");
  for (std::size_t n : sensor_counts) {
    for (std::size_t history : histories) {
      // The stream must outlive the history several times over, otherwise
      // the naive buffer never fills and erase-front never runs.
      const std::size_t t =
          std::max<std::size_t>(5 * history, quick ? 8000 : 20000);
      const std::string point = "n=" + std::to_string(n) +
                                "/hist=" + std::to_string(history);
      // One seed per sweep point, shared by the naive and ring cases: the
      // before/after comparison requires identical input data.
      const std::uint64_t seed = run.derive_seed("push/" + point);
      const common::Matrix data = synthetic_stream(n, t, seed);
      const core::CsModel model =
          core::train(data.sub_cols(0, std::min<std::size_t>(t, 4000)));
      opts.history_length = history;

      std::size_t naive_sigs = 0;
      std::size_t ring_sigs = 0;
      CaseResult& naive =
          run.measure("naive/" + point, static_cast<double>(t),
                      [&] { naive_sigs = run_naive(model, opts, data); });
      CaseResult& ring =
          run.measure("ring/" + point, static_cast<double>(t),
                      [&] { ring_sigs = run_ring(model, opts, data); });
      for (CaseResult* c : {&naive, &ring}) {
        c->seed = seed;
        c->param("sensors", std::to_string(n));
        c->param("history", std::to_string(history));
        c->param("samples", std::to_string(t));
      }
      naive.metric("signatures", static_cast<double>(naive_sigs));
      ring.metric("signatures", static_cast<double>(ring_sigs));
      if (naive_sigs != ring_sigs) {
        std::fprintf(stderr, "FAIL: signature count mismatch (%zu vs %zu)\n",
                     naive_sigs, ring_sigs);
        return 1;
      }
      std::printf("%8zu %9zu %9zu %15.0f %15.0f %8.1fx\n", n, history, t,
                  naive.items_per_sec, ring.items_per_sec,
                  ring.items_per_sec / naive.items_per_sec);
    }
  }

  std::printf("\n== CsStream emit path: window copy vs zero-copy MatrixView "
              "(wl=60, ws=10) ==\n");
  std::printf("%8s %9s %9s %15s %15s %9s\n", "sensors", "history", "samples",
              "copy (smp/s)", "view (smp/s)", "speedup");
  for (std::size_t n : sensor_counts) {
    for (std::size_t history : histories) {
      // Long enough that the ring wraps and emits dominate; shared seed so
      // copy and view consume identical input.
      const std::size_t t =
          std::max<std::size_t>(3 * history, quick ? 8000 : 20000);
      const std::string point = "n=" + std::to_string(n) +
                                "/hist=" + std::to_string(history);
      const std::uint64_t seed = run.derive_seed("emit/" + point);
      const common::Matrix data = synthetic_stream(n, t, seed);
      const core::CsModel model =
          core::train(data.sub_cols(0, std::min<std::size_t>(t, 4000)));
      opts.history_length = history;

      std::vector<core::Signature> copy_sigs;
      std::vector<core::Signature> view_sigs;
      CaseResult& copy =
          run.measure("window-copy/" + point, static_cast<double>(t), [&] {
            CopyStream stream(model, opts);
            copy_sigs = stream.push_all(data);
          });
      CaseResult& view =
          run.measure("window-view/" + point, static_cast<double>(t), [&] {
            core::CsStream stream(model, opts);
            view_sigs = stream.push_all(data);
          });
      for (CaseResult* c : {&copy, &view}) {
        c->seed = seed;
        c->param("sensors", std::to_string(n));
        c->param("history", std::to_string(history));
        c->param("samples", std::to_string(t));
      }
      copy.metric("signatures", static_cast<double>(copy_sigs.size()));
      view.metric("signatures", static_cast<double>(view_sigs.size()));
      if (copy_sigs != view_sigs) {
        std::fprintf(stderr,
                     "FAIL: view emit differs from copy emit at %s\n",
                     point.c_str());
        return 1;
      }
      // The zero-copy invariant this driver guards: the view emit must not
      // be slower than the copy emit at any sweep point. The 10% grace
      // absorbs shared-runner jitter (the view path measures ~1.4-2x in
      // practice), so tripping this means the invariant actually broke.
      if (view.items_per_sec < 0.9 * copy.items_per_sec) {
        std::fprintf(stderr,
                     "FAIL: view emit slower than copy emit at %s "
                     "(%.0f vs %.0f smp/s)\n",
                     point.c_str(), view.items_per_sec, copy.items_per_sec);
        return 1;
      }
      std::printf("%8zu %9zu %9zu %15.0f %15.0f %8.2fx\n", n, history, t,
                  copy.items_per_sec, view.items_per_sec,
                  view.items_per_sec / copy.items_per_sec);
    }
  }

  const std::size_t fleet_t = quick ? 4000 : 20000;
  std::printf("\n== StreamEngine fleet scaling (32 sensors/node, history "
              "4096, %zu samples/node) ==\n", fleet_t);
  opts.history_length = 4096;
  std::printf("%8s %15s %15s %12s\n", "nodes", "samples", "agg smp/s",
              "signatures");
  for (std::size_t nodes : {1u, 4u, 16u}) {
    const std::string name = "engine/nodes=" + std::to_string(nodes);
    const std::uint64_t seed = run.derive_seed(name);
    std::vector<common::Matrix> batches;
    std::vector<core::CsModel> models;
    for (std::size_t i = 0; i < nodes; ++i) {
      batches.push_back(synthetic_stream(32, fleet_t, seed + i));
      models.push_back(core::train(batches.back()));
    }
    std::size_t signatures = 0;
    CaseResult& result = run.measure(
        name, static_cast<double>(nodes * fleet_t), [&] {
          core::StreamEngine engine(opts);
          for (std::size_t i = 0; i < nodes; ++i) {
            engine.add_node("node", models[i]);
          }
          engine.ingest_batch(batches);
          signatures = engine.stats().signatures;
        });
    result.param("nodes", std::to_string(nodes));
    result.param("samples_per_node", std::to_string(fleet_t));
    result.metric("signatures", static_cast<double>(signatures));
    std::printf("%8zu %15llu %15.0f %12llu\n", nodes,
                static_cast<unsigned long long>(nodes * fleet_t),
                result.items_per_sec,
                static_cast<unsigned long long>(signatures));
  }

  // Daemon frame path: the same fleet ingest, once through direct
  // StreamEngine calls and once through a FleetServer serving CSMF frames
  // over the in-process loopback transport. The gap is the whole protocol
  // tax — frame encode on the client (pre-paid outside the timed region,
  // as a real collector would pay it), CRC verify + decode + connection
  // servicing on the daemon. Both paths must drain bit-for-bit identical
  // signatures. Wire bytes are pre-encoded so repetitions re-run only the
  // daemon side: fresh engine, fresh server thread, fresh connection.
  {
    const std::size_t daemon_nodes = 4;
    const std::size_t daemon_sensors = 16;
    const std::size_t daemon_t = quick ? 2000 : 8000;
    const std::size_t daemon_chunk = 250;  // Columns per kSampleBatch.
    const std::uint64_t daemon_seed = run.derive_seed("daemon-loopback");
    std::printf("\n== Fleet ingest: direct engine vs daemon loopback frame "
                "path (%zu nodes, %zu sensors/node, %zu samples/node) ==\n",
                daemon_nodes, daemon_sensors, daemon_t);

    core::StreamOptions d_opts;
    d_opts.window_length = 60;
    d_opts.window_step = 10;
    d_opts.history_length = 1024;
    d_opts.cs.blocks = 8;
    const auto& registry = baselines::default_registry();

    std::vector<std::string> ids;
    std::vector<common::Matrix> batches;
    std::vector<std::shared_ptr<const core::SignatureMethod>> methods;
    std::vector<net::Frame> add_frames;
    std::vector<std::vector<std::uint8_t>> wire(daemon_nodes);
    for (std::size_t i = 0; i < daemon_nodes; ++i) {
      ids.push_back("bench" + std::to_string(i));
      batches.push_back(
          synthetic_stream(daemon_sensors, daemon_t, daemon_seed + i));
      methods.push_back(registry.create("cs:blocks=8")->fit(batches.back()));
      net::NodeAdd add;
      add.record = core::codec::encode_binary(*methods.back());
      net::Frame frame;
      frame.type = net::FrameType::kNodeAdd;
      frame.node = ids.back();
      frame.payload = net::encode_node_add(add);
      add_frames.push_back(std::move(frame));
      for (std::size_t at = 0; at < daemon_t; at += daemon_chunk) {
        net::Frame batch;
        batch.type = net::FrameType::kSampleBatch;
        batch.node = ids.back();
        batch.payload = net::encode_sample_batch(batches.back().sub_cols(
            at, std::min(daemon_chunk, daemon_t - at)));
        const std::vector<std::uint8_t> bytes = net::encode_frame(batch);
        wire[i].insert(wire[i].end(), bytes.begin(), bytes.end());
      }
    }

    const std::string daemon_point =
        "nodes=" + std::to_string(daemon_nodes);
    std::vector<std::vector<std::vector<double>>> expected(daemon_nodes);
    CaseResult& direct = run.measure(
        "engine-direct/" + daemon_point,
        static_cast<double>(daemon_nodes * daemon_t), [&] {
          core::StreamEngine engine(d_opts);
          for (std::size_t i = 0; i < daemon_nodes; ++i) {
            engine.add_node(ids[i], methods[i]);
          }
          engine.ingest_batch(batches);
          for (std::size_t i = 0; i < daemon_nodes; ++i) {
            expected[i] = engine.drain(i);
          }
        });

    std::vector<std::vector<std::vector<double>>> drained(daemon_nodes);
    CaseResult& daemon = run.measure(
        "daemon-loopback/" + daemon_point,
        static_cast<double>(daemon_nodes * daemon_t), [&] {
          core::StreamEngine engine(d_opts);
          net::LoopbackHub hub;
          net::FleetServerOptions server_opts;
          server_opts.server_version = "bench";
          server_opts.registry = &registry;
          server_opts.poll_timeout_ms = 10;
          net::FleetServer server(hub.listen(), engine,
                                  std::move(server_opts));
          std::thread server_thread([&] { server.run(); });
          {
            const std::unique_ptr<net::Connection> conn = hub.connect();
            net::FrameReader reader;
            for (const net::Frame& add : add_frames) {
              net::call(*conn, reader, add, 30000);
            }
            for (std::size_t i = 0; i < daemon_nodes; ++i) {
              net::write_all(*conn, wire[i]);
            }
            // Drains double as the sync point: batches are not acked, but
            // the server answers a drain only after every frame queued
            // before it on this connection has been ingested.
            for (std::size_t i = 0; i < daemon_nodes; ++i) {
              net::Frame request;
              request.type = net::FrameType::kDrainRequest;
              request.node = ids[i];
              const net::Frame response =
                  net::call(*conn, reader, request, 30000);
              drained[i] =
                  net::decode_drain_response(response.payload).signatures;
            }
          }
          server.stop();
          server_thread.join();
        });

    for (std::size_t i = 0; i < daemon_nodes; ++i) {
      if (expected[i].empty() || drained[i] != expected[i]) {
        std::fprintf(stderr,
                     "FAIL: daemon-drained signatures differ from the "
                     "direct engine on %s\n", ids[i].c_str());
        return 1;
      }
    }
    for (CaseResult* c : {&direct, &daemon}) {
      c->seed = daemon_seed;
      c->param("nodes", std::to_string(daemon_nodes));
      c->param("sensors", std::to_string(daemon_sensors));
      c->param("samples_per_node", std::to_string(daemon_t));
      c->param("batch_cols", std::to_string(daemon_chunk));
    }
    const double tax = direct.items_per_sec / daemon.items_per_sec;
    daemon.metric("slowdown_vs_direct", tax);
    std::printf("%12s %15s %11s\n", "path", "agg smp/s", "frame tax");
    std::printf("%12s %15.0f %11s\n", "direct", direct.items_per_sec, "-");
    std::printf("%12s %15.0f %10.2fx\n", "loopback", daemon.items_per_sec,
                tax);
  }

  // Fleet cold-start: the same N trained models land on disk twice — once
  // as N per-file "csmethod v2" text models, once inside a single pack —
  // and each layout stands up a fresh StreamEngine from zero. Only the
  // standup is timed; fixture writing happens outside the measured lambdas.
  namespace fs = std::filesystem;
  const std::size_t cold_nodes = quick ? 2000 : 100000;
  const std::size_t cold_distinct = 32;  // Distinct models, replicated.
  const std::uint64_t cold_seed = run.derive_seed("coldstart");
  const auto& registry = baselines::default_registry();

  const fs::path work_dir = run.opts().out_dir
                                ? fs::path(*run.opts().out_dir)
                                : fs::temp_directory_path() /
                                      ("csm_coldstart_" +
                                       std::to_string(run.opts().seed));
  const fs::path model_dir = work_dir / "models";
  const fs::path pack_file = work_dir / "fleet.pack";
  fs::create_directories(model_dir);

  std::printf("\n== Fleet cold-start: %zu nodes, per-file text models vs "
              "one mmap-ed pack ==\n", cold_nodes);
  {
    // 32 distinct 32-sensor CS models; node i carries model i % 32. The
    // text blob and binary record of each are encoded once and replicated,
    // so fixture setup is file-I/O bound, not codec bound.
    const std::size_t cold_sensors = 32;
    std::vector<std::string> text_blobs;
    std::vector<std::vector<std::uint8_t>> bin_records;
    const auto untrained = registry.create("cs:blocks=4");
    for (std::size_t k = 0; k < cold_distinct; ++k) {
      const auto trained =
          untrained->fit(synthetic_stream(cold_sensors, 400, cold_seed + k));
      text_blobs.push_back(trained->serialize());
      bin_records.push_back(core::codec::encode_binary(*trained));
    }

    std::vector<std::string> ids;
    ids.reserve(cold_nodes);
    core::ModelPackWriter writer(pack_file);
    for (std::size_t i = 0; i < cold_nodes; ++i) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "node%06zu", i);
      ids.emplace_back(buf);
      const std::size_t k = i % cold_distinct;
      std::ofstream out(model_dir / (ids.back() + ".csm"),
                        std::ios::binary | std::ios::trunc);
      out << text_blobs[k];
      if (!out) {
        std::fprintf(stderr, "FAIL: cannot write cold-start fixtures\n");
        return 1;
      }
      writer.add_record(ids.back(), bin_records[k]);
    }
    writer.finish();

    // The timed region is model revival only — the part the pack changes:
    // open + read + parse one file per node versus mmap once + binary-decode
    // each record. Downstream engine registration costs the same either way
    // and is exercised (unmeasured) by the equivalence probe below.
    const std::string cold_point = "nodes=" + std::to_string(cold_nodes);
    std::vector<std::shared_ptr<const core::SignatureMethod>> from_files;
    CaseResult& files_case =
        run.measure("coldstart-files/" + cold_point,
                    static_cast<double>(cold_nodes), [&] {
          from_files.clear();
          from_files.reserve(cold_nodes);
          for (const std::string& id : ids) {
            from_files.push_back(registry.load(model_dir / (id + ".csm")));
          }
        });
    // Keep only the equivalence probes from the file fleet before timing
    // the pack: holding all 10^5 file-loaded methods resident would make
    // the pack phase fault in a second fleet-sized heap, charging the pack
    // for memory the files path left behind rather than for its own work.
    from_files.resize(std::min<std::size_t>(cold_nodes, 8));
    from_files.shrink_to_fit();
    std::vector<std::shared_ptr<const core::SignatureMethod>> from_pack;
    CaseResult& pack_case =
        run.measure("coldstart-pack/" + cold_point,
                    static_cast<double>(cold_nodes), [&] {
          from_pack.clear();
          from_pack.reserve(cold_nodes);
          const core::ModelPack pack = core::ModelPack::open(pack_file);
          // Whole-fleet standup walks the index by position; by-id lookup
          // (pack.load) is the single-node path, probed below.
          for (std::size_t i = 0; i < cold_nodes; ++i) {
            from_pack.push_back(registry.decode(pack.record(i)));
          }
        });
    for (CaseResult* c : {&files_case, &pack_case}) {
      c->seed = cold_seed;
      c->param("nodes", std::to_string(cold_nodes));
      c->param("distinct_models", std::to_string(cold_distinct));
      c->param("sensors", std::to_string(cold_sensors));
    }
    const double speedup = pack_case.items_per_sec / files_case.items_per_sec;
    pack_case.metric("speedup_vs_files", speedup);

    // Both load paths must stream identically: stand one engine up from the
    // file-loaded methods and one through StreamEngine::add_node(pack, id),
    // probe both with one shared batch and compare the emitted feature
    // vectors exactly. Pack ids are index-sorted and ids[] is zero-padded,
    // so node i in one engine is node i in the other.
    core::StreamOptions cold_opts;
    cold_opts.window_length = 16;
    cold_opts.window_step = 8;
    cold_opts.history_length = 40;
    const std::size_t probe_nodes = std::min<std::size_t>(cold_nodes, 8);
    const core::ModelPack pack = core::ModelPack::open(pack_file);
    core::StreamEngine files_engine(cold_opts);
    core::StreamEngine pack_engine(cold_opts);
    for (std::size_t i = 0; i < probe_nodes; ++i) {
      files_engine.add_node(ids[i], from_files[i]);
      pack_engine.add_node(pack, ids[i], registry);
    }
    const common::Matrix probe =
        synthetic_stream(cold_sensors, 64, cold_seed + 999);
    for (std::size_t i = 0; i < probe_nodes; ++i) {
      files_engine.ingest(i, probe);
      pack_engine.ingest(i, probe);
      if (files_engine.drain(i) != pack_engine.drain(i)) {
        std::fprintf(stderr,
                     "FAIL: pack-loaded node %zu streams differently from "
                     "its file-loaded twin\n", i);
        return 1;
      }
    }

    std::printf("%8s %18s %18s %9s\n", "nodes", "files (models/s)",
                "pack (models/s)", "speedup");
    std::printf("%8zu %18.0f %18.0f %8.1fx\n", cold_nodes,
                files_case.items_per_sec, pack_case.items_per_sec, speedup);
    // The invariant the pack exists for. 2x is a deliberately loose floor
    // (shared CI runners); the full-size sweep measures well above 10x.
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: pack cold-start only %.2fx faster than per-file "
                   "models (fixtures kept in %s)\n",
                   speedup, work_dir.string().c_str());
      return 1;
    }
  }
  fs::remove_all(model_dir);
  fs::remove(pack_file);
  if (!run.opts().out_dir) fs::remove_all(work_dir);

  // Training kernel: the cache-tiled shifted-correlation pass against the
  // scalar reference it replaced. The tiled path must be bit-identical (the
  // async retrain swap depends on it — a swapped-in shadow model must equal
  // the model a sync fit would have produced) and at least 2x faster at the
  // fleet-scale sensor count, where the reference rereads every row ~n
  // times with no cache blocking.
  {
    const std::size_t kernel_t = quick ? 512 : 2048;
    std::printf("\n== Training kernel: tiled shifted-correlation vs scalar "
                "reference (%zu samples) ==\n", kernel_t);
    std::printf("%8s %9s %16s %16s %9s\n", "sensors", "samples",
                "ref (coef/s)", "tiled (coef/s)", "speedup");
    for (const std::size_t n : {64u, 256u, 1024u}) {
      const std::string point = "n=" + std::to_string(n);
      // Shared seed: both kernels must consume identical input.
      const std::uint64_t seed = run.derive_seed("train-kernel/" + point);
      const common::Matrix s = synthetic_stream(n, kernel_t, seed);
      const common::MatrixView view{s};
      const double coefficients = static_cast<double>(n * n);

      common::Matrix ref_out;
      common::Matrix tiled_out;
      CaseResult& ref =
          run.measure("train-kernel-ref/" + point, coefficients,
                      [&] { ref_out = stats::shifted_correlation_matrix_reference(view); });
      stats::CorrelationWorkspace ws;
      CaseResult& tiled =
          run.measure("train-kernel/" + point, coefficients,
                      [&] { tiled_out = stats::shifted_correlation_matrix(view, ws); });
      for (CaseResult* c : {&ref, &tiled}) {
        c->seed = seed;
        c->param("sensors", std::to_string(n));
        c->param("samples", std::to_string(kernel_t));
      }
      if (tiled_out.rows() != ref_out.rows() ||
          tiled_out.cols() != ref_out.cols() ||
          std::memcmp(tiled_out.data(), ref_out.data(),
                      ref_out.size() * sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "FAIL: tiled correlation kernel is not bit-identical "
                     "to the reference at %s\n", point.c_str());
        return 1;
      }
      const double speedup = tiled.items_per_sec / ref.items_per_sec;
      tiled.metric("speedup_vs_reference", speedup);
      std::printf("%8zu %9zu %16.0f %16.0f %8.1fx\n", n, kernel_t,
                  ref.items_per_sec, tiled.items_per_sec, speedup);
      // The acceptance floor: >=2x at the largest sweep point. Loose on
      // purpose (shared runners); measures far higher in practice.
      if (n == 1024 && speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL: tiled kernel only %.2fx faster than the scalar "
                     "reference at n=1024\n", speedup);
        return 1;
      }
    }
  }

  // Retrain policies: the same single-node ingest under no retraining, the
  // historical inline (sync) retrain, and the shadow-fit async retrain.
  // Per-push wall times are recorded so the table can quote ingest latency
  // quantiles: the sync stall shows up as a p99/max blow-up, and the async
  // pin — ingest p99 with retrains firing within 5x of the no-retrain
  // baseline — is the invariant the shadow-fit pipeline exists for.
  {
    const std::size_t rt_sensors = 32;
    const std::size_t rt_t = quick ? 8192 : 16384;
    core::StreamOptions rt_opts;
    rt_opts.window_length = 60;
    rt_opts.window_step = 10;
    rt_opts.history_length = 256;
    rt_opts.cs.blocks = 8;
    rt_opts.retrain_threads = 2;
    // Rare enough that a single-core runner's scheduler noise around each
    // fit stays below the p99 index (pushes affected per fit << 1% of the
    // run), frequent enough that every run exercises dozens of swaps.
    const std::size_t rt_interval = 512;
    const std::string rt_point = "n=" + std::to_string(rt_sensors) +
                                 "/interval=" + std::to_string(rt_interval);
    const std::uint64_t rt_seed = run.derive_seed("retrain/" + rt_point);
    std::printf("\n== Retrain policies: ingest latency with retrains firing "
                "every %zu samples (%zu sensors, %zu samples) ==\n",
                rt_interval, rt_sensors, rt_t);

    const common::Matrix rt_data =
        synthetic_stream(rt_sensors, rt_t, rt_seed);
    const std::shared_ptr<const core::SignatureMethod> rt_method =
        baselines::default_registry()
            .create("cs:blocks=8")
            ->fit(rt_data.sub_cols(0, 2000));

    struct PolicyCase {
      const char* label;
      std::size_t interval;
      core::RetrainPolicy policy;
    };
    const PolicyCase policies[] = {
        {"retrain-off", 0, core::RetrainPolicy::kSync},
        {"retrain-sync", rt_interval, core::RetrainPolicy::kSync},
        {"retrain-async", rt_interval, core::RetrainPolicy::kAsync},
    };
    std::printf("%14s %13s %10s %10s %10s %7s %7s\n", "policy", "smp/s",
                "p50 (us)", "p99 (us)", "max (us)", "swaps", "aborts");
    double off_p99 = 0.0;
    double async_p99 = 0.0;
    std::size_t off_signatures = 0;
    for (const PolicyCase& pc : policies) {
      core::StreamOptions opts_for = rt_opts;
      opts_for.retrain_interval = pc.interval;
      opts_for.retrain_policy = pc.policy;
      RetrainRun rr;
      CaseResult& result = run.measure(
          std::string(pc.label) + "/" + rt_point, static_cast<double>(rt_t),
          [&] { rr = run_retrain_policy(rt_method, opts_for, rt_data); });
      const double p50 = quantile_us(rr.push_us, 0.50);
      const double p99 = quantile_us(rr.push_us, 0.99);
      const double max_us =
          *std::max_element(rr.push_us.begin(), rr.push_us.end());
      result.seed = rt_seed;
      result.param("sensors", std::to_string(rt_sensors));
      result.param("samples", std::to_string(rt_t));
      result.param("history", std::to_string(rt_opts.history_length));
      result.param("retrain_interval", std::to_string(pc.interval));
      result.metric("ingest_p50_us", p50);
      result.metric("ingest_p99_us", p99);
      result.metric("ingest_max_us", max_us);
      result.metric("signatures", static_cast<double>(rr.signatures));
      result.metric("retrain_swaps", static_cast<double>(rr.swaps));
      result.metric("retrain_aborts", static_cast<double>(rr.aborts));
      std::printf("%14s %13.0f %10.1f %10.1f %10.1f %7zu %7zu\n", pc.label,
                  result.items_per_sec, p50, p99, max_us, rr.swaps,
                  rr.aborts);

      // The emission cadence is retrain-policy-independent: every policy
      // must emit exactly as many signatures as the no-retrain baseline.
      if (pc.interval == 0) {
        off_signatures = rr.signatures;
        off_p99 = p99;
      } else if (rr.signatures != off_signatures) {
        std::fprintf(stderr,
                     "FAIL: %s emitted %zu signatures, baseline emitted "
                     "%zu\n", pc.label, rr.signatures, off_signatures);
        return 1;
      }
      if (pc.policy == core::RetrainPolicy::kAsync && pc.interval != 0) {
        async_p99 = p99;
        // Every fired retrain must be accounted exactly once — swapped in
        // or aborted — except a single fit still in flight at teardown.
        const std::size_t triggers = rt_t / rt_interval;
        if (rr.swaps + rr.aborts + 1 < triggers ||
            rr.swaps + rr.aborts > triggers) {
          std::fprintf(stderr,
                       "FAIL: async retrain accounting off (%zu swaps + "
                       "%zu aborts vs %zu triggers)\n",
                       rr.swaps, rr.aborts, triggers);
          return 1;
        }
        if (rr.swaps == 0) {
          std::fprintf(stderr,
                       "FAIL: no async retrain ever completed and swapped "
                       "in\n");
          return 1;
        }
        result.metric("p99_vs_no_retrain", p99 / off_p99);
      }
    }
    // The pin the shadow-fit pipeline exists for: retraining in the
    // background must leave ingest tail latency within 5x of never
    // retraining at all (sync, measured above, stalls for the full fit).
    if (async_p99 > 5.0 * off_p99) {
      std::fprintf(stderr,
                   "FAIL: async retrain ingest p99 %.1f us exceeds 5x the "
                   "no-retrain baseline %.1f us\n", async_p99, off_p99);
      return 1;
    }
  }

  std::printf("\n== StreamEngine vs per-node CsStream equivalence ==\n");
  opts.history_length = 1024;
  if (!engine_matches_per_node_streams(opts,
                                       run.derive_seed("equivalence"))) {
    std::printf("FAIL: engine output differs from per-node streams\n");
    return 1;
  }
  std::printf("OK: identical signatures on all nodes\n");
  return 0;
}

}  // namespace csm::benchkit
