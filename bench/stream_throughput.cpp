// Online ingestion throughput: ring-buffer CsStream vs the erase-front
// history it replaced, and StreamEngine scaling across node counts.
//
// The paper's in-band ODA claim only holds if the per-sample cost of the
// online path is independent of how much history a stream retains. The old
// CsStream kept its history in a std::vector<std::vector<double>>: one heap
// allocation per push and an O(history) erase-front once the buffer was
// full, so throughput degraded as history_length grew. NaiveStream below
// reproduces that implementation verbatim as the "before" baseline; the
// library CsStream (common::RingMatrix) is the "after". The second table
// fans synthetic node fleets through StreamEngine and reports aggregate
// samples/sec, and the driver exits non-zero if StreamEngine ever disagrees
// with per-node CsStream runs.
//
// Runs under the shared benchkit CLI (see --help). Naive and ring cases at
// one sweep point share the same derived data seed — the before/after
// comparison requires identical input — while distinct sweep points get
// distinct seeds, all recorded in the JSON output.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "benchkit/benchkit.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/smoothing.hpp"
#include "core/stream_engine.hpp"
#include "core/streaming.hpp"
#include "core/training.hpp"
#include "stats/finite_diff.hpp"

namespace {

using namespace csm;

common::Matrix synthetic_stream(std::size_t n, std::size_t t,
                                std::uint64_t seed) {
  common::Rng rng(seed);
  common::Matrix s(n, t);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < t; ++c) {
      s(r, c) = std::sin(0.05 * static_cast<double>(c) +
                         0.3 * static_cast<double>(r)) +
                0.1 * rng.gaussian();
    }
  }
  return s;
}

// The pre-ring-buffer CsStream, kept verbatim as the "before" baseline:
// vector-of-vectors history with erase-front eviction and element-by-element
// window assembly. Retraining omitted (disabled in the comparison anyway).
class NaiveStream {
 public:
  NaiveStream(core::CsModel model, core::StreamOptions options)
      : model_(std::move(model)), options_(options) {
    history_.reserve(options_.history_length);
    next_emit_at_ = options_.window_length;
  }

  std::optional<core::Signature> push(std::span<const double> column) {
    if (history_.size() == options_.history_length) {
      history_.erase(history_.begin());  // O(history) shift on every push.
    }
    history_.emplace_back(column.begin(), column.end());
    ++samples_seen_;

    if (samples_seen_ < next_emit_at_) return std::nullopt;
    next_emit_at_ += options_.window_step;

    const std::size_t n = model_.n_sensors();
    const std::size_t wl = options_.window_length;
    const bool have_seed = history_.size() > wl;
    const std::size_t first = history_.size() - wl;
    common::Matrix window(n, wl);
    for (std::size_t c = 0; c < wl; ++c) {
      for (std::size_t r = 0; r < n; ++r) {
        window(r, c) = history_[first + c][r];
      }
    }
    const common::Matrix sorted = model_.sort(window);
    common::Matrix derivs;
    if (have_seed) {
      common::Matrix seed_col(n, 1);
      for (std::size_t r = 0; r < n; ++r) {
        seed_col(r, 0) = history_[first - 1][r];
      }
      const common::Matrix sorted_seed = model_.sort(seed_col);
      derivs = stats::backward_diff_rows_seeded(sorted, sorted_seed.col(0));
    } else {
      derivs = stats::backward_diff_rows(sorted);
    }
    return core::smooth(sorted, derivs,
                        options_.cs.resolve_blocks(model_.n_sensors()));
  }

 private:
  core::CsModel model_;
  core::StreamOptions options_;
  std::vector<std::vector<double>> history_;
  std::size_t samples_seen_ = 0;
  std::size_t next_emit_at_ = 0;
};

std::size_t run_naive(const core::CsModel& model,
                      const core::StreamOptions& opts,
                      const common::Matrix& data) {
  NaiveStream stream(model, opts);
  std::vector<double> column(data.rows());
  std::size_t sigs = 0;
  for (std::size_t c = 0; c < data.cols(); ++c) {
    for (std::size_t r = 0; r < data.rows(); ++r) column[r] = data(r, c);
    if (stream.push(column)) ++sigs;
  }
  return sigs;
}

std::size_t run_ring(const core::CsModel& model,
                     const core::StreamOptions& opts,
                     const common::Matrix& data) {
  core::CsStream stream(model, opts);
  return stream.push_all(data).size();
}

bool engine_matches_per_node_streams(const core::StreamOptions& opts,
                                     std::uint64_t seed) {
  const std::size_t n_nodes = 8;
  core::StreamEngine engine(opts);
  std::vector<common::Matrix> batches;
  std::vector<core::CsModel> models;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    batches.push_back(synthetic_stream(24, 600, seed + i));
    models.push_back(core::train(batches.back()));
    engine.add_node("node", models.back());
  }
  engine.ingest_batch(batches);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    core::CsStream reference(models[i], opts);
    const auto expected = reference.push_all(batches[i]);
    const auto got = engine.drain(i);
    if (got.size() != expected.size()) return false;
    for (std::size_t k = 0; k < got.size(); ++k) {
      if (!(got[k] == expected[k].flatten())) return false;
    }
  }
  return true;
}

}  // namespace

namespace csm::benchkit {

Setup bench_setup() {
  return {"stream_throughput",
          "CsStream push path (erase-front history vs ring buffer) and "
          "StreamEngine fleet-scaling throughput",
          0, ""};
}

int bench_run(Runner& run) {
  const bool quick = run.quick();

  core::StreamOptions opts;
  opts.window_length = 60;
  opts.window_step = 10;
  opts.cs.blocks = 20;

  const std::vector<std::size_t> sensor_counts =
      quick ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 64};
  const std::vector<std::size_t> histories =
      quick ? std::vector<std::size_t>{512, 4096}
            : std::vector<std::size_t>{1024, 4096, 16384};

  std::printf("== CsStream push path: erase-front history vs ring buffer "
              "(wl=60, ws=10) ==\n");
  std::printf("%8s %9s %9s %15s %15s %9s\n", "sensors", "history", "samples",
              "naive (smp/s)", "ring (smp/s)", "speedup");
  for (std::size_t n : sensor_counts) {
    for (std::size_t history : histories) {
      // The stream must outlive the history several times over, otherwise
      // the naive buffer never fills and erase-front never runs.
      const std::size_t t =
          std::max<std::size_t>(5 * history, quick ? 8000 : 20000);
      const std::string point = "n=" + std::to_string(n) +
                                "/hist=" + std::to_string(history);
      // One seed per sweep point, shared by the naive and ring cases: the
      // before/after comparison requires identical input data.
      const std::uint64_t seed = run.derive_seed("push/" + point);
      const common::Matrix data = synthetic_stream(n, t, seed);
      const core::CsModel model =
          core::train(data.sub_cols(0, std::min<std::size_t>(t, 4000)));
      opts.history_length = history;

      std::size_t naive_sigs = 0;
      std::size_t ring_sigs = 0;
      CaseResult& naive =
          run.measure("naive/" + point, static_cast<double>(t),
                      [&] { naive_sigs = run_naive(model, opts, data); });
      CaseResult& ring =
          run.measure("ring/" + point, static_cast<double>(t),
                      [&] { ring_sigs = run_ring(model, opts, data); });
      for (CaseResult* c : {&naive, &ring}) {
        c->seed = seed;
        c->param("sensors", std::to_string(n));
        c->param("history", std::to_string(history));
        c->param("samples", std::to_string(t));
      }
      naive.metric("signatures", static_cast<double>(naive_sigs));
      ring.metric("signatures", static_cast<double>(ring_sigs));
      if (naive_sigs != ring_sigs) {
        std::fprintf(stderr, "FAIL: signature count mismatch (%zu vs %zu)\n",
                     naive_sigs, ring_sigs);
        return 1;
      }
      std::printf("%8zu %9zu %9zu %15.0f %15.0f %8.1fx\n", n, history, t,
                  naive.items_per_sec, ring.items_per_sec,
                  ring.items_per_sec / naive.items_per_sec);
    }
  }

  const std::size_t fleet_t = quick ? 4000 : 20000;
  std::printf("\n== StreamEngine fleet scaling (32 sensors/node, history "
              "4096, %zu samples/node) ==\n", fleet_t);
  opts.history_length = 4096;
  std::printf("%8s %15s %15s %12s\n", "nodes", "samples", "agg smp/s",
              "signatures");
  for (std::size_t nodes : {1u, 4u, 16u}) {
    const std::string name = "engine/nodes=" + std::to_string(nodes);
    const std::uint64_t seed = run.derive_seed(name);
    std::vector<common::Matrix> batches;
    std::vector<core::CsModel> models;
    for (std::size_t i = 0; i < nodes; ++i) {
      batches.push_back(synthetic_stream(32, fleet_t, seed + i));
      models.push_back(core::train(batches.back()));
    }
    std::size_t signatures = 0;
    CaseResult& result = run.measure(
        name, static_cast<double>(nodes * fleet_t), [&] {
          core::StreamEngine engine(opts);
          for (std::size_t i = 0; i < nodes; ++i) {
            engine.add_node("node", models[i]);
          }
          engine.ingest_batch(batches);
          signatures = engine.stats().signatures;
        });
    result.param("nodes", std::to_string(nodes));
    result.param("samples_per_node", std::to_string(fleet_t));
    result.metric("signatures", static_cast<double>(signatures));
    std::printf("%8zu %15llu %15.0f %12llu\n", nodes,
                static_cast<unsigned long long>(nodes * fleet_t),
                result.items_per_sec,
                static_cast<unsigned long long>(signatures));
  }

  std::printf("\n== StreamEngine vs per-node CsStream equivalence ==\n");
  opts.history_length = 1024;
  if (!engine_matches_per_node_streams(opts,
                                       run.derive_seed("equivalence"))) {
    std::printf("FAIL: engine output differs from per-node streams\n");
    return 1;
  }
  std::printf("OK: identical signatures on all nodes\n");
  return 0;
}

}  // namespace csm::benchkit
