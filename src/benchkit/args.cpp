#include "benchkit/args.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>
#include <string>

namespace csm::benchkit {

namespace {

[[noreturn]] void fail(std::string_view flag, std::string_view kind,
                       std::string_view value) {
  throw std::invalid_argument(std::string(flag) + ": expected " +
                              std::string(kind) + ", got \"" +
                              std::string(value) + "\"");
}

template <typename T>
T parse_integer(std::string_view flag, std::string_view kind,
                std::string_view value) {
  T out{};
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size() ||
      value.empty()) {
    fail(flag, kind, value);
  }
  return out;
}

}  // namespace

std::size_t parse_size_t(std::string_view flag, std::string_view value) {
  return parse_integer<std::size_t>(flag, "a non-negative integer", value);
}

std::uint64_t parse_uint64(std::string_view flag, std::string_view value) {
  return parse_integer<std::uint64_t>(flag, "a non-negative integer", value);
}

std::int64_t parse_int64(std::string_view flag, std::string_view value) {
  return parse_integer<std::int64_t>(flag, "an integer", value);
}

double parse_double(std::string_view flag, std::string_view value) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size() ||
      value.empty() || !std::isfinite(out)) {
    fail(flag, "a finite number", value);
  }
  return out;
}

}  // namespace csm::benchkit
