// Minimal JSON value: enough for the benchkit result schema and benchdiff.
//
// Objects preserve insertion order so emitted files are stable and diffable.
// Numbers are doubles; 64-bit seeds are therefore stored as decimal STRINGS
// in the bench schema (a double cannot represent every uint64 exactly).
// parse() accepts exactly what dump() emits plus ordinary JSON whitespace;
// it rejects trailing garbage and reports the byte offset of errors.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace csm::benchkit {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Member = std::pair<std::string, Json>;

  Json() = default;
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  Json(T value)
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(std::string_view value) : Json(std::string(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }

  /// Value accessors; throw std::runtime_error on a type mismatch.
  double number() const;
  const std::string& str() const;
  bool boolean() const;

  /// Array size / object member count; 0 for scalars.
  std::size_t size() const noexcept;

  // --- array ---------------------------------------------------------------
  /// Appends to an array (converts a null value into an empty array first).
  Json& push(Json value);
  /// Array element access; throws std::runtime_error when out of range.
  const Json& operator[](std::size_t index) const;
  const std::vector<Json>& elements() const { return array_; }

  // --- object --------------------------------------------------------------
  /// Appends/overwrites a member (converts null into an empty object first).
  Json& set(std::string key, Json value);
  /// Member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Member lookup; throws std::runtime_error naming the missing key.
  const Json& at(std::string_view key) const;
  const std::vector<Member>& members() const { return object_; }

  /// Serialises with `indent` spaces per level (0 = compact single line).
  std::string dump(int indent = 2) const;

  /// Parses a complete JSON document; throws std::runtime_error with the
  /// byte offset on malformed input or trailing garbage.
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<Member> object_;
};

}  // namespace csm::benchkit
