#include "benchkit/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "benchkit/benchkit.hpp"

namespace csm::benchkit {

namespace {

const char* status_name(DiffStatus status) {
  switch (status) {
    case DiffStatus::kOk: return "ok";
    case DiffStatus::kRegression: return "REGRESSION";
    case DiffStatus::kImprovement: return "improvement";
    case DiffStatus::kMissing: return "MISSING";
    case DiffStatus::kNew: return "new";
  }
  return "?";
}

void check_schema(const Json& doc, const char* which) {
  if (!doc.is_object() || !doc.find("schema") ||
      !doc.at("schema").is_string() ||
      doc.at("schema").str() != kSchemaVersion) {
    throw std::runtime_error(std::string(which) +
                             " file is not a csm-bench-v1 result (missing or "
                             "unexpected \"schema\" key)");
  }
  if (!doc.find("cases") || !doc.at("cases").is_array()) {
    throw std::runtime_error(std::string(which) +
                             " file has no \"cases\" array");
  }
}

/// Metric value of one case, or nullopt when absent / not a number.
std::optional<double> metric_value(const Json& entry,
                                   const std::string& metric) {
  static constexpr std::string_view kMetricsPrefix = "metrics.";
  const Json* holder = &entry;
  std::string_view key = metric;
  if (key.substr(0, kMetricsPrefix.size()) == kMetricsPrefix) {
    holder = entry.find("metrics");
    if (!holder) return std::nullopt;
    key = key.substr(kMetricsPrefix.size());
  }
  const Json* value = holder->find(key);
  if (!value || !value->is_number()) return std::nullopt;
  return value->number();
}

}  // namespace

bool DiffOptions::lower_is_better() const {
  const std::string_view suffix = "_seconds";
  return metric.size() >= suffix.size() &&
         std::string_view(metric).substr(metric.size() - suffix.size()) ==
             suffix;
}

std::size_t DiffReport::count(DiffStatus status) const {
  return static_cast<std::size_t>(
      std::count_if(cases.begin(), cases.end(), [&](const CaseDiff& c) {
        return c.status == status;
      }));
}

bool DiffReport::failed(const DiffOptions& opts) const {
  if (count(DiffStatus::kRegression) > 0) return true;
  return opts.fail_on_missing && count(DiffStatus::kMissing) > 0;
}

std::string DiffReport::format() const {
  std::string out = "benchdiff: driver " + driver + ", metric " + metric +
                    " (" + std::to_string(cases.size()) + " cases)\n";
  char buf[256];
  for (const CaseDiff& c : cases) {
    switch (c.status) {
      case DiffStatus::kMissing:
        std::snprintf(buf, sizeof(buf),
                      "  %-48s %12s -> (absent)      MISSING\n",
                      c.name.c_str(), "baseline");
        break;
      case DiffStatus::kNew:
        std::snprintf(buf, sizeof(buf),
                      "  %-48s (absent) -> %12.6g  new\n", c.name.c_str(),
                      c.current);
        break;
      default:
        std::snprintf(buf, sizeof(buf),
                      "  %-48s %12.6g -> %12.6g  %+7.1f%%  %s\n",
                      c.name.c_str(), c.baseline, c.current, c.change_pct,
                      status_name(c.status));
    }
    out += buf;
  }
  for (const std::string& note : notes) out += "  note: " + note + "\n";
  std::snprintf(buf, sizeof(buf),
                "  summary: %zu ok, %zu regression(s), %zu improvement(s), "
                "%zu missing, %zu new\n",
                count(DiffStatus::kOk), count(DiffStatus::kRegression),
                count(DiffStatus::kImprovement), count(DiffStatus::kMissing),
                count(DiffStatus::kNew));
  out += buf;
  return out;
}

DiffReport diff_results(const Json& baseline, const Json& current,
                        const DiffOptions& opts) {
  check_schema(baseline, "baseline");
  check_schema(current, "current");

  DiffReport report;
  report.metric = opts.metric;
  const Json* driver = current.find("driver");
  report.driver = driver && driver->is_string() ? driver->str() : "?";
  const Json* base_driver = baseline.find("driver");
  if (base_driver && base_driver->is_string() &&
      base_driver->str() != report.driver) {
    report.notes.push_back("driver mismatch: baseline is \"" +
                           base_driver->str() + "\", current is \"" +
                           report.driver + "\"");
  }

  const Json& base_cases = baseline.at("cases");
  const Json& cur_cases = current.at("cases");
  auto case_name = [](const Json& entry) -> std::string {
    const Json* name = entry.find("name");
    return name && name->is_string() ? name->str() : std::string();
  };
  auto find_case = [&](const Json& cases, const std::string& name)
      -> const Json* {
    for (const Json& entry : cases.elements()) {
      if (case_name(entry) == name) return &entry;
    }
    return nullptr;
  };

  for (const Json& base_entry : base_cases.elements()) {
    const std::string name = case_name(base_entry);
    CaseDiff diff;
    diff.name = name;
    const Json* cur_entry = find_case(cur_cases, name);
    if (!cur_entry) {
      diff.status = DiffStatus::kMissing;
      report.cases.push_back(std::move(diff));
      continue;
    }
    const auto base_value = metric_value(base_entry, opts.metric);
    const auto cur_value = metric_value(*cur_entry, opts.metric);
    if (!base_value || !cur_value) {
      report.notes.push_back("case \"" + name + "\" has no metric \"" +
                             opts.metric + "\" in one of the files");
      continue;
    }
    diff.baseline = *base_value;
    diff.current = *cur_value;
    if (*base_value <= 0.0) {
      report.notes.push_back("case \"" + name +
                             "\" has a non-positive baseline value; skipped");
      continue;
    }
    diff.change_pct = (diff.current - diff.baseline) / diff.baseline * 100.0;
    const double worsening_pct =
        opts.lower_is_better() ? diff.change_pct : -diff.change_pct;
    if (worsening_pct > opts.threshold_pct) {
      diff.status = DiffStatus::kRegression;
    } else if (-worsening_pct > opts.threshold_pct) {
      diff.status = DiffStatus::kImprovement;
    } else {
      diff.status = DiffStatus::kOk;
    }
    report.cases.push_back(std::move(diff));
  }

  for (const Json& cur_entry : cur_cases.elements()) {
    const std::string name = case_name(cur_entry);
    if (find_case(base_cases, name)) continue;
    CaseDiff diff;
    diff.name = name;
    diff.status = DiffStatus::kNew;
    if (const auto value = metric_value(cur_entry, opts.metric)) {
      diff.current = *value;
    }
    report.cases.push_back(std::move(diff));
  }
  return report;
}

}  // namespace csm::benchkit
