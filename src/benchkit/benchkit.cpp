#include "benchkit/benchkit.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "benchkit/args.hpp"
#include "common/timer.hpp"
#include "core/method_registry.hpp"

#ifndef CSM_GIT_SHA
#define CSM_GIT_SHA "unknown"
#endif

namespace csm::benchkit {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

Json host_json() {
  Json host = Json::object();
  std::string hostname = "unknown", system = "unknown", machine = "unknown";
#if defined(__unix__) || defined(__APPLE__)
  utsname uts{};
  if (uname(&uts) == 0) {
    hostname = uts.nodename;
    system = uts.sysname;
    machine = uts.machine;
  }
#endif
  host.set("hostname", hostname);
  host.set("system", system);
  host.set("machine", machine);
  host.set("cpus",
           static_cast<double>(std::thread::hardware_concurrency()));
  return host;
}

double cpu_seconds_now() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

}  // namespace

std::string git_sha() {
  if (const char* env = std::getenv("CSM_GIT_SHA")) return env;
  return CSM_GIT_SHA;
}

std::string usage(const Setup& setup) {
  std::string out = "usage: " + setup.driver +
                    " [--quick] [--json PATH] [--repetitions N] [--seed N]";
  if (setup.flags & kFlagMethods) out += " [--methods SPECS]";
  if (setup.flags & kFlagScale) out += " [--scale S]";
  if (setup.flags & kFlagOutDir) out += " [--out-dir DIR]";
  out += "\n\n" + setup.summary + "\n\n";
  out +=
      "  --quick          reduced sweeps/scale for CI smoke runs\n"
      "  --json PATH      write the csm-bench-v1 JSON result file\n"
      "  --repetitions N  timed repetitions per case (default 1)\n"
      "  --seed N         base RNG seed; per-case seeds derive from it\n";
  if (setup.flags & kFlagMethods) {
    out +=
        "  --methods SPECS  registry spec strings, e.g. "
        "\"cs:blocks=20,tuncer\"\n                   (default: " +
        setup.default_methods + ")\n";
  }
  if (setup.flags & kFlagScale) {
    out += "  --scale S        segment-size multiplier (> 0)\n";
  }
  if (setup.flags & kFlagOutDir) {
    out += "  --out-dir DIR    directory for image/side-output files\n";
  }
  return out;
}

std::vector<std::string> split_method_specs(
    const core::MethodRegistry& registry, std::string_view text) {
  // Tokens are comma/';'-separated; a comma token starts a NEW spec when its
  // head (before ':' or '=') is a registered method name and it is not a
  // key=value parameter, otherwise it extends the previous spec. ';' always
  // starts a new spec.
  std::vector<std::string> raw;
  std::string current;
  std::string_view rest = text;
  char last_sep = ';';
  while (true) {
    const std::size_t cut = rest.find_first_of(",;");
    const std::string_view token = trim(rest.substr(0, cut));
    if (token.empty()) {
      throw std::invalid_argument("--methods: empty method spec in \"" +
                                  std::string(text) + "\"");
    }
    const std::size_t head_end = token.find_first_of(":=");
    const bool is_param =
        head_end != std::string_view::npos && token[head_end] == '=';
    const std::string head = lowered(token.substr(0, head_end));
    const bool new_spec = current.empty() || last_sep == ';' ||
                          (!is_param && registry.contains(head));
    if (new_spec) {
      if (!current.empty()) raw.push_back(current);
      current = std::string(token);
    } else {
      current += current.find(':') == std::string::npos ? ':' : ',';
      current += std::string(token);
    }
    if (cut == std::string_view::npos) break;
    last_sep = rest[cut];
    rest = rest.substr(cut + 1);
  }
  if (!current.empty()) raw.push_back(current);
  if (raw.empty()) {
    throw std::invalid_argument("--methods: no method specs given");
  }

  std::vector<std::string> specs;
  specs.reserve(raw.size());
  for (const std::string& spec_text : raw) {
    const core::MethodSpec spec = core::MethodSpec::parse(spec_text);
    registry.create(spec);  // Validate name and parameters; surface the
                            // registry's own error message on failure.
    specs.push_back(spec.to_string());
  }
  return specs;
}

Options parse_args(const Setup& setup, const core::MethodRegistry& registry,
                   int argc, const char* const* argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&](std::string_view flag) -> std::string_view {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(flag) + ": missing value");
      }
      return argv[++i];
    };
    auto enabled = [&](unsigned flag_bit, std::string_view flag) {
      if (!(setup.flags & flag_bit)) {
        throw std::invalid_argument(std::string(flag) +
                                    " is not supported by " + setup.driver);
      }
    };
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
      return opts;
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--json") {
      opts.json_path = std::string(value("--json"));
    } else if (arg == "--repetitions") {
      opts.repetitions = parse_size_t("--repetitions", value("--repetitions"));
      if (opts.repetitions == 0) {
        throw std::invalid_argument("--repetitions: must be >= 1");
      }
    } else if (arg == "--seed") {
      opts.seed = parse_uint64("--seed", value("--seed"));
    } else if (arg == "--methods") {
      enabled(kFlagMethods, "--methods");
      opts.methods = split_method_specs(registry, value("--methods"));
    } else if (arg == "--scale") {
      enabled(kFlagScale, "--scale");
      const double scale = parse_double("--scale", value("--scale"));
      if (scale <= 0.0) {
        throw std::invalid_argument("--scale: must be > 0");
      }
      opts.scale = scale;
    } else if (arg == "--out-dir") {
      enabled(kFlagOutDir, "--out-dir");
      opts.out_dir = std::string(value("--out-dir"));
    } else if (!arg.empty() && arg.front() == '-') {
      throw std::invalid_argument("unknown flag: " + std::string(arg) +
                                  " (see --help)");
    } else {
      throw std::invalid_argument("unexpected positional argument \"" +
                                  std::string(arg) +
                                  "\" (flags only; see --help)");
    }
  }
  if (opts.methods.empty() && (setup.flags & kFlagMethods) &&
      !setup.default_methods.empty()) {
    opts.methods = split_method_specs(registry, setup.default_methods);
  }
  return opts;
}

CaseResult& CaseResult::param(std::string key, std::string value) {
  params.emplace_back(std::move(key), std::move(value));
  return *this;
}

CaseResult& CaseResult::metric(std::string key, double value) {
  metrics.emplace_back(std::move(key), value);
  return *this;
}

Runner::Runner(Setup setup, Options options)
    : setup_(std::move(setup)), options_(std::move(options)) {
  methods_ = options_.methods;
}

std::uint64_t Runner::derive_seed(std::string_view tag) const {
  // FNV-1a over the tag, mixed with the base seed through the splitmix64
  // finaliser: deterministic, and distinct tags give unrelated streams.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  std::uint64_t z = options_.seed ^ h;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

CaseResult& Runner::record(std::string name, double wall_seconds,
                           double items) {
  CaseResult result;
  // Default provenance: the run's base seed, which is what drivers that
  // never fork a per-case stream actually feed their generators. Drivers
  // that do derive a case seed overwrite this field.
  result.seed = options_.seed;
  result.name = std::move(name);
  result.wall_seconds = wall_seconds;
  result.items = items;
  result.items_per_sec = wall_seconds > 0.0 ? items / wall_seconds : 0.0;
  cases_.push_back(std::move(result));
  return cases_.back();
}

CaseResult& Runner::measure(std::string name, double items,
                            const std::function<void()>& fn) {
  const std::size_t reps = std::max<std::size_t>(1, options_.repetitions);
  const double cpu0 = cpu_seconds_now();
  const common::Timer timer;
  for (std::size_t r = 0; r < reps; ++r) fn();
  const double wall = timer.seconds() / static_cast<double>(reps);
  const double cpu =
      (cpu_seconds_now() - cpu0) / static_cast<double>(reps);
  CaseResult& result = record(std::move(name), wall, items);
  result.cpu_seconds = cpu;
  result.repetitions = reps;
  return result;
}

CaseResult& Runner::bench_loop(std::string name,
                               const std::function<void()>& fn) {
  fn();  // Warm-up (first-touch allocation, caches).
  const double min_seconds = options_.quick ? 0.05 : 0.2;
  std::size_t iters = 1;
  double wall = 0.0;
  double cpu = 0.0;
  for (;;) {
    const double cpu0 = cpu_seconds_now();
    const common::Timer timer;
    for (std::size_t i = 0; i < iters; ++i) fn();
    wall = timer.seconds();
    cpu = cpu_seconds_now() - cpu0;
    if (wall >= min_seconds || iters >= (std::size_t{1} << 28)) break;
    const double grow = wall > 1e-9 ? (min_seconds / wall) * 1.5 : 8.0;
    iters = std::max(iters + 1,
                     std::min(iters * 8,
                              static_cast<std::size_t>(
                                  static_cast<double>(iters) * grow) +
                                  1));
  }
  const double n = static_cast<double>(iters);
  CaseResult& result = record(std::move(name), wall / n, 1.0);
  result.cpu_seconds = cpu / n;
  result.repetitions = iters;
  return result;
}

Json Runner::result_json() const {
  Json root = Json::object();
  root.set("schema", std::string(kSchemaVersion));
  root.set("driver", setup_.driver);
  root.set("timestamp_utc", utc_timestamp());
  root.set("git_sha", git_sha());
  root.set("host", host_json());

  Json run = Json::object();
  run.set("quick", options_.quick);
  run.set("repetitions", static_cast<double>(options_.repetitions));
  run.set("seed", std::to_string(options_.seed));
  run.set("scale", options_.scale ? Json(*options_.scale) : Json());
  Json methods = Json::array();
  for (const std::string& spec : methods_) methods.push(spec);
  run.set("methods", std::move(methods));
  root.set("run", std::move(run));

  Json cases = Json::array();
  for (const CaseResult& c : cases_) {
    Json entry = Json::object();
    entry.set("name", c.name);
    entry.set("seed", std::to_string(c.seed));
    entry.set("repetitions", static_cast<double>(c.repetitions));
    entry.set("wall_seconds", c.wall_seconds);
    entry.set("cpu_seconds", c.cpu_seconds);
    entry.set("items", c.items);
    entry.set("items_per_sec", c.items_per_sec);
    Json params = Json::object();
    for (const auto& [key, val] : c.params) params.set(key, val);
    entry.set("params", std::move(params));
    Json metrics = Json::object();
    for (const auto& [key, val] : c.metrics) metrics.set(key, val);
    entry.set("metrics", std::move(metrics));
    cases.push(std::move(entry));
  }
  root.set("cases", std::move(cases));
  return root;
}

int Runner::finish() const {
  if (options_.json_path.empty()) return 0;
  std::ofstream out(options_.json_path,
                    std::ios::binary | std::ios::trunc);
  if (out) out << result_json().dump(2) << '\n';
  if (!out) {
    std::cerr << "benchkit: cannot write " << options_.json_path << '\n';
    return 2;
  }
  std::cout << "benchkit: wrote " << options_.json_path << " ("
            << cases_.size() << " cases)\n";
  return 0;
}

}  // namespace csm::benchkit
