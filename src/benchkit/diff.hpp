// Comparison of two csm-bench-v1 result files (the tools/benchdiff core).
//
// Cases are matched by name. A case present in the baseline but not in the
// current file is reported as MISSING (renames therefore show up as a
// MISSING + NEW pair, never silently dropped); the reverse is NEW. Matched
// cases compare one metric with a relative threshold; whether bigger is
// worse follows from the metric ("*_seconds" = lower is better, everything
// else = higher is better).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "benchkit/json.hpp"

namespace csm::benchkit {

struct DiffOptions {
  /// Top-level case field ("wall_seconds", "cpu_seconds", "items_per_sec")
  /// or a driver metric addressed as "metrics.<key>" (e.g.
  /// "metrics.ml_score").
  std::string metric = "wall_seconds";
  /// Relative change (percent) beyond which a worsening is a regression.
  double threshold_pct = 30.0;
  /// Treat MISSING cases as failures.
  bool fail_on_missing = false;

  /// True when a larger `metric` value is worse (timing metrics).
  bool lower_is_better() const;
};

enum class DiffStatus { kOk, kRegression, kImprovement, kMissing, kNew };

struct CaseDiff {
  std::string name;
  DiffStatus status = DiffStatus::kOk;
  double baseline = 0.0;    ///< Metric value in the baseline file.
  double current = 0.0;     ///< Metric value in the current file.
  double change_pct = 0.0;  ///< (current - baseline) / baseline * 100.
};

struct DiffReport {
  std::string driver;
  std::string metric;
  std::vector<CaseDiff> cases;
  std::vector<std::string> notes;  ///< Non-fatal oddities (driver mismatch,
                                   ///< cases without the metric, ...).

  std::size_t count(DiffStatus status) const;
  /// Regressions present, or missing cases when opts.fail_on_missing.
  bool failed(const DiffOptions& opts) const;
  /// Human-readable report (one line per case + summary).
  std::string format() const;
};

/// Compares two parsed result documents. Throws std::runtime_error when a
/// document is not a csm-bench-v1 result.
DiffReport diff_results(const Json& baseline, const Json& current,
                        const DiffOptions& opts);

}  // namespace csm::benchkit
