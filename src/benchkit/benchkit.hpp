// Unified benchmark runner: one CLI, one JSON result schema, one main().
//
// Every driver under bench/ defines two functions instead of a main():
//
//   namespace csm::benchkit {
//   Setup bench_setup();        // name, summary, accepted optional flags
//   int bench_run(Runner& run); // the benchmark body; returns an exit code
//   }
//
// and links csm::benchkit_main, whose shared main() parses the common
// command line (strict: unknown flags are errors), builds a Runner and
// writes the results as versioned JSON when --json is given:
//
//   <driver> [--quick] [--json PATH] [--repetitions N] [--seed N]
//            [--methods SPECS] [--scale S] [--out-dir DIR]
//
// --methods takes registry spec strings ("cs:blocks=20,tuncer,
// pca:components=8"): comma-separated, where a token opens a new spec when
// its head is a registered method name and attaches to the previous spec as
// a parameter otherwise ("cs:blocks=20,real-only,tuncer" is two specs);
// ';' always separates specs for the ambiguity-averse. Specs are validated
// through baselines::default_registry() at parse time, so typos fail with
// the registry's own message before any work starts.
//
// The JSON schema ("csm-bench-v1") records run metadata (driver, git sha,
// host, options), and per case: wall/cpu seconds, items and items/sec, the
// case's RNG seed (derived from --seed, distinct per case tag) and freeform
// params/metrics. tools/benchdiff compares two such files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "benchkit/json.hpp"

namespace csm::core {
class MethodRegistry;
}

namespace csm::benchkit {

/// Optional flags a driver can opt into (the common set is always on).
inline constexpr unsigned kFlagMethods = 1u << 0;  ///< --methods SPECS
inline constexpr unsigned kFlagScale = 1u << 1;    ///< --scale S
inline constexpr unsigned kFlagOutDir = 1u << 2;   ///< --out-dir DIR

/// Static description of one bench driver.
struct Setup {
  std::string driver;           ///< Binary name, e.g. "fig3_ml_performance".
  std::string summary;          ///< One-liner shown by --help.
  unsigned flags = 0;           ///< Optional flags accepted (kFlag* mask).
  std::string default_methods;  ///< Line-up used when --methods is absent.
};

/// Parsed common command line.
struct Options {
  bool help = false;   ///< --help/-h seen; print usage and exit 0.
  bool quick = false;  ///< Reduced sweeps/scales for CI smoke runs.
  std::string json_path;              ///< Empty = no JSON output.
  std::vector<std::string> methods;   ///< Canonical validated spec strings.
  std::size_t repetitions = 1;        ///< Timed repetitions per case.
  std::uint64_t seed = 2021;          ///< Base seed (matches hpcoda default).
  std::optional<double> scale;        ///< --scale, when accepted and given.
  std::optional<std::string> out_dir; ///< --out-dir, when accepted and given.

  double scale_or(double fallback) const {
    return scale.value_or(fallback);
  }
  std::string out_dir_or(std::string fallback) const {
    return out_dir.value_or(std::move(fallback));
  }
};

/// The git sha this build was configured from (the CSM_GIT_SHA runtime env
/// var overrides, e.g. in CI after a shallow checkout; "unknown" when
/// neither is available). Recorded in bench JSON, `csmcli version` and
/// csmd's stats scrapes, so every artefact names the build it came from.
std::string git_sha();

/// Usage text for a driver (common flags + the driver's optional ones).
std::string usage(const Setup& setup);

/// Parses argv strictly: unknown flags, flags the driver did not opt into,
/// missing values, malformed numbers and positional arguments all throw
/// std::invalid_argument naming the offender. --methods values are split
/// and validated against `registry`.
Options parse_args(const Setup& setup, const core::MethodRegistry& registry,
                   int argc, const char* const* argv);

/// Splits a --methods value into validated canonical spec strings (see the
/// header comment for the comma/';' rules). Throws std::invalid_argument
/// carrying the registry's message on unknown methods or bad parameters.
std::vector<std::string> split_method_specs(
    const core::MethodRegistry& registry, std::string_view text);

/// One benchmark case: timings plus freeform params and metrics.
struct CaseResult {
  std::string name;
  /// RNG seed governing the case's data: the run's base seed unless the
  /// driver recorded a derived per-case seed.
  std::uint64_t seed = 0;
  std::size_t repetitions = 1;   ///< Timed repetitions averaged below.
  double wall_seconds = 0.0;     ///< Mean wall time of one repetition.
  double cpu_seconds = 0.0;      ///< Mean process-CPU time of one repetition.
  double items = 0.0;            ///< Work items per repetition.
  double items_per_sec = 0.0;
  std::vector<std::pair<std::string, std::string>> params;
  std::vector<std::pair<std::string, double>> metrics;

  CaseResult& param(std::string key, std::string value);
  CaseResult& metric(std::string key, double value);
};

/// Collects cases and writes the JSON result file.
class Runner {
 public:
  Runner(Setup setup, Options options);

  const Setup& setup() const noexcept { return setup_; }
  const Options& opts() const noexcept { return options_; }
  bool quick() const noexcept { return options_.quick; }

  /// The driver's method line-up: --methods when given, the Setup default
  /// otherwise (validated either way).
  const std::vector<std::string>& methods() const noexcept {
    return methods_;
  }

  /// Deterministic per-case seed: mixes the base --seed with `tag` so two
  /// different tags get unrelated streams while identical tags (e.g. the
  /// same sweep point benchmarked under several methods) share one — the
  /// comparison-requires-identical-data case. Drivers that use a derived
  /// seed must also store it on the case (`result.seed = seed`); cases
  /// default to the run's base seed.
  std::uint64_t derive_seed(std::string_view tag) const;

  /// Runs `fn` opts().repetitions times and records mean wall/CPU time.
  /// `items` is the work per repetition (for items/sec).
  CaseResult& measure(std::string name, double items,
                      const std::function<void()>& fn);

  /// Latency-style loop: calibrates an iteration count until the timed
  /// batch is long enough to trust (quick: ≥50 ms, full: ≥200 ms), then
  /// records the mean per-iteration time with items = 1.
  CaseResult& bench_loop(std::string name, const std::function<void()>& fn);

  /// Records an externally timed case. The returned reference stays valid
  /// across later record()/measure() calls (deque storage), so drivers can
  /// hold several case handles at once.
  CaseResult& record(std::string name, double wall_seconds, double items);

  const std::deque<CaseResult>& cases() const noexcept { return cases_; }

  /// Builds the full result document (also used by finish()).
  Json result_json() const;

  /// Writes the JSON file if --json was given. Returns 0, or 2 when the
  /// file cannot be written (error printed to stderr).
  int finish() const;

 private:
  Setup setup_;
  Options options_;
  std::vector<std::string> methods_;
  std::deque<CaseResult> cases_;
};

/// Schema identifier written by Runner::result_json().
inline constexpr std::string_view kSchemaVersion = "csm-bench-v1";

// Defined by each bench driver; called from the shared main() in
// bench_main.cpp (csm::benchkit_main).
Setup bench_setup();
int bench_run(Runner& run);

}  // namespace csm::benchkit
