#include "benchkit/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace csm::benchkit {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::runtime_error(std::string("Json: expected ") + want + ", have " +
                           kNames[static_cast<int>(got)]);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; emit null so consumers see "absent" not garbage.
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{}) {
    out += "0";
    return;
  }
  out.append(buf, ptr);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json::parse: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  // Parsing recurses once per nesting level, so untrusted input like
  // "[[[[..." would otherwise run the stack out (fuzz regression
  // fuzz/regressions/json/deep-nesting). The cap is far above anything the
  // bench schema produces and far below any thread's stack budget.
  static constexpr std::size_t kMaxDepth = 192;

  Json parse_value() {
    if (depth_ >= kMaxDepth) fail("nesting deeper than 192 levels");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_keyword("true")) return Json(true);
        fail("bad keyword");
      case 'f':
        if (consume_keyword("false")) return Json(false);
        fail("bad keyword");
      case 'n':
        if (consume_keyword("null")) return Json();
        fail("bad keyword");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    ++depth_;
    Json out = Json::object();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return out;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      out.set(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return out;
    }
  }

  Json parse_array() {
    expect('[');
    ++depth_;
    Json out = Json::array();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return out;
    }
    for (;;) {
      out.push(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return out;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          const auto first = text_.data() + pos_;
          const auto [ptr, ec] = std::from_chars(first, first + 4, code, 16);
          if (ec != std::errc{} || ptr != first + 4) fail("bad \\u escape");
          pos_ += 4;
          // Only the control-character range we ourselves emit; other code
          // points pass through dump() unescaped as UTF-8 already.
          if (code > 0x7f) fail("unsupported \\u escape above 0x7f");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // Closing quote.
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto first = text_.data() + start;
    const auto last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (first == last || ec != std::errc{} || ptr != last) {
      pos_ = start;
      fail("bad number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

double Json::number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::str() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

bool Json::boolean() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

Json& Json::push(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

const Json& Json::operator[](std::size_t index) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (index >= array_.size()) {
    throw std::runtime_error("Json: array index " + std::to_string(index) +
                             " out of range (size " +
                             std::to_string(array_.size()) + ")");
  }
  return array_[index];
}

Json& Json::set(std::string key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (Member& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (!found) {
    throw std::runtime_error("Json: missing key \"" + std::string(key) +
                             "\"");
  }
  return *found;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += i == 0 ? "" : ",";
        out += nl;
        out += indent > 0 ? pad : "";
        array_[i].dump_to(out, indent, depth + 1);
      }
      out += nl;
      out += indent > 0 ? close_pad : "";
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += i == 0 ? "" : ",";
        out += nl;
        out += indent > 0 ? pad : "";
        append_escaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      out += nl;
      out += indent > 0 ? close_pad : "";
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace csm::benchkit
