// Shared main() for every bench driver (csm::benchkit_main). Drivers define
// bench_setup()/bench_run(); this translation unit owns argument parsing,
// usage/exit-code policy and the JSON write-out.
//
// Exit status: 0 on success, 1 on usage errors (unknown flag, bad value,
// bad --methods spec), 2 on runtime failures, and whatever non-zero code
// bench_run returns on benchmark-level failures (e.g. an equivalence check).
#include <exception>
#include <iostream>
#include <utility>

#include "baselines/registry.hpp"
#include "benchkit/benchkit.hpp"

int main(int argc, char** argv) {
  using namespace csm::benchkit;
  const Setup setup = bench_setup();
  Options opts;
  try {
    opts = parse_args(setup, csm::baselines::default_registry(), argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n" << usage(setup);
    return 1;
  }
  if (opts.help) {
    std::cout << usage(setup);
    return 0;
  }
  try {
    Runner runner(setup, std::move(opts));
    const int run_rc = bench_run(runner);
    const int finish_rc = runner.finish();
    return run_rc != 0 ? run_rc : finish_rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
