// Checked command-line value parsing shared by the bench drivers (via the
// benchkit flag parser) and csmcli.
//
// Every helper parses the ENTIRE value or throws std::invalid_argument with
// a message naming the offending flag — "--blocks 20x" must be an error, not
// a silent 20 (the classic atoll trap the CLI tools used to fall into).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace csm::benchkit {

/// Non-negative integer ("20"). Rejects signs, leading/trailing garbage and
/// empty values.
std::size_t parse_size_t(std::string_view flag, std::string_view value);

/// Unsigned 64-bit integer (seeds).
std::uint64_t parse_uint64(std::string_view flag, std::string_view value);

/// Signed 64-bit integer ("-5").
std::int64_t parse_int64(std::string_view flag, std::string_view value);

/// Finite double ("0.25", "1e-3"). Rejects trailing garbage, NaN and inf.
double parse_double(std::string_view flag, std::string_view value);

}  // namespace csm::benchkit
