// Lan et al. baseline (Section III-B, [13]).
//
// Each sensor row is sub-sampled to a fixed length `wr` with a mean filter
// (chunked averaging along the time axis) and the sub-sampled rows are
// concatenated, preserving coarse time information. Signature length
// l = n * wr. The paper replaces the original flatten+PCA with this
// sub-sampling step for scalability; we follow that variant.
#pragma once

#include "core/signature_method.hpp"

namespace csm::baselines {

class LanMethod final : public core::SignatureMethod {
 public:
  /// `wr` is the per-sensor sub-sampled length (default 10, a compromise the
  /// evaluation uses between footprint and fidelity).
  explicit LanMethod(std::size_t wr = 10);

  std::size_t wr() const noexcept { return wr_; }

  using core::SignatureMethod::compute;
  using core::SignatureMethod::fit;

  std::string name() const override { return "Lan"; }
  std::size_t signature_length(std::size_t n_sensors) const override {
    return n_sensors * wr_;
  }
  std::vector<double> compute(
      const common::MatrixView& window) const override;

  // Stateless lifecycle: fit() is a copy; serialisation keeps wr.
  std::unique_ptr<core::SignatureMethod> fit(
      const common::MatrixView& train) const override;
  std::string codec_key() const override { return "lan"; }
  void save(core::codec::Sink& sink) const override;

 private:
  std::size_t wr_;
};

/// Mean-filter resampling of one series to `target` samples: target chunks
/// cover the series contiguously (boundary samples may be shared when the
/// length is not divisible, mirroring the CS block scheme on the time axis).
std::vector<double> mean_filter_resample(std::span<const double> x,
                                         std::size_t target);

}  // namespace csm::baselines
