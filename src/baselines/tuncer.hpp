// Tuncer et al. baseline (Section III-B, [15]).
//
// For every sensor row of the window, eleven statistical indicators are
// computed and concatenated: mean, standard deviation, minimum, maximum, the
// 5th/25th/50th/75th/95th percentiles, the sum of changes and the absolute
// sum of changes (the paper substitutes the last two for skewness/kurtosis).
// Signature length l = n * 11. Per-sensor percentile sorting makes the cost
// O(n * wl log wl).
#pragma once

#include "core/signature_method.hpp"

namespace csm::baselines {

class TuncerMethod final : public core::SignatureMethod {
 public:
  static constexpr std::size_t kFeaturesPerSensor = 11;

  using core::SignatureMethod::compute;
  using core::SignatureMethod::fit;

  std::string name() const override { return "Tuncer"; }
  std::size_t signature_length(std::size_t n_sensors) const override {
    return n_sensors * kFeaturesPerSensor;
  }
  std::vector<double> compute(
      const common::MatrixView& window) const override;

  // Stateless lifecycle: fit() is a copy, serialisation carries no fields.
  std::unique_ptr<core::SignatureMethod> fit(
      const common::MatrixView& train) const override;
  std::string codec_key() const override { return "tuncer"; }
  void save(core::codec::Sink& sink) const override;
};

}  // namespace csm::baselines
