#include "baselines/lan.hpp"

#include <stdexcept>

#include "core/model_codec.hpp"

namespace csm::baselines {

LanMethod::LanMethod(std::size_t wr) : wr_(wr) {
  if (wr_ == 0) throw std::invalid_argument("Lan: zero wr");
}

std::vector<double> mean_filter_resample(std::span<const double> x,
                                         std::size_t target) {
  if (x.empty() || target == 0) {
    throw std::invalid_argument("mean_filter_resample: empty input or target");
  }
  std::vector<double> out(target);
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < target; ++i) {
    const std::size_t begin = i * n / target;
    const std::size_t end = ((i + 1) * n + target - 1) / target;
    double acc = 0.0;
    for (std::size_t k = begin; k < end; ++k) acc += x[k];
    out[i] = acc / static_cast<double>(end - begin);
  }
  return out;
}

std::vector<double> LanMethod::compute(
    const common::MatrixView& window) const {
  if (window.empty()) throw std::invalid_argument("Lan: empty window");
  std::vector<double> out;
  out.reserve(signature_length(window.rows()));
  std::vector<double> scratch;  // Row gather buffer for ring-segment views.
  for (std::size_t r = 0; r < window.rows(); ++r) {
    const std::vector<double> sub =
        mean_filter_resample(window.row(r, scratch), wr_);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::unique_ptr<core::SignatureMethod> LanMethod::fit(
    const common::MatrixView& /*train*/) const {
  return std::make_unique<LanMethod>(*this);
}

void LanMethod::save(core::codec::Sink& sink) const {
  sink.size("wr", wr_);
}

}  // namespace csm::baselines
