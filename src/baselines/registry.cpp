#include "baselines/registry.hpp"

#include <sstream>
#include <stdexcept>

#include "baselines/bodik.hpp"
#include "baselines/lan.hpp"
#include "baselines/pca.hpp"
#include "baselines/tuncer.hpp"

namespace csm::baselines {

namespace {

using core::MethodRegistry;
using core::MethodSpec;
using core::SignatureMethod;

// Stateless methods serialise as a bare header; reject bodies so corrupt
// files fail loudly instead of silently reviving a default-configured method.
void expect_empty_body(const std::string& body, const char* method) {
  if (body.find_first_not_of(" \t\r\n") != std::string::npos) {
    throw std::runtime_error(std::string(method) +
                             ": unexpected serialised body");
  }
}

}  // namespace

void register_baseline_methods(core::MethodRegistry& registry) {
  registry.add(MethodRegistry::Entry{
      "tuncer", "tuncer",
      "Eleven per-sensor statistical indicators (Sec. III-B [15]); stateless",
      [](const MethodSpec& spec) -> std::unique_ptr<SignatureMethod> {
        spec.expect_only({});
        return std::make_unique<TuncerMethod>();
      },
      [](core::codec::Source&) -> std::unique_ptr<SignatureMethod> {
        return std::make_unique<TuncerMethod>();
      },
      [](const std::string& body) -> std::unique_ptr<SignatureMethod> {
        expect_empty_body(body, "TuncerMethod");
        return std::make_unique<TuncerMethod>();
      }});

  registry.add(MethodRegistry::Entry{
      "bodik", "bodik",
      "Nine per-sensor quantile indicators (Sec. III-B [16]); stateless",
      [](const MethodSpec& spec) -> std::unique_ptr<SignatureMethod> {
        spec.expect_only({});
        return std::make_unique<BodikMethod>();
      },
      [](core::codec::Source&) -> std::unique_ptr<SignatureMethod> {
        return std::make_unique<BodikMethod>();
      },
      [](const std::string& body) -> std::unique_ptr<SignatureMethod> {
        expect_empty_body(body, "BodikMethod");
        return std::make_unique<BodikMethod>();
      }});

  registry.add(MethodRegistry::Entry{
      "lan", "lan[:wr=N]",
      "Per-sensor mean-filter sub-sampling to wr samples (Sec. III-B [13]); "
      "stateless",
      [](const MethodSpec& spec) -> std::unique_ptr<SignatureMethod> {
        spec.expect_only({"wr"});
        return std::make_unique<LanMethod>(spec.get_size_t("wr", 10));
      },
      [](core::codec::Source& in) -> std::unique_ptr<SignatureMethod> {
        const std::size_t wr = in.size("wr");
        if (wr == 0) {
          throw std::runtime_error("LanMethod: wr must be positive");
        }
        return std::make_unique<LanMethod>(wr);
      },
      [](const std::string& body) -> std::unique_ptr<SignatureMethod> {
        std::istringstream in(body);
        std::string kw;
        std::size_t wr = 0;
        in >> kw >> wr;
        if (!in || kw != "wr" || wr == 0) {
          throw std::runtime_error("LanMethod: malformed serialised body");
        }
        std::string extra;
        if (in >> extra) {
          throw std::runtime_error(
              "LanMethod: trailing data after the serialised body");
        }
        return std::make_unique<LanMethod>(wr);
      }});

  registry.add(MethodRegistry::Entry{
      "pca", "pca[:components=K]",
      "Top-K covariance eigenprojections of window mean + mean derivative "
      "(Sec. I-A); trainable",
      [](const MethodSpec& spec) -> std::unique_ptr<SignatureMethod> {
        spec.expect_only({"components"});
        return std::make_unique<PcaMethod>(spec.get_size_t("components", 8));
      },
      [](core::codec::Source& in) -> std::unique_ptr<SignatureMethod> {
        return PcaMethod::read(in);
      },
      [](const std::string& body) -> std::unique_ptr<SignatureMethod> {
        return PcaMethod::deserialize_body(body);
      }});
}

const core::MethodRegistry& default_registry() {
  static const core::MethodRegistry registry = [] {
    core::MethodRegistry r;
    core::register_cs_method(r);
    register_baseline_methods(r);
    return r;
  }();
  return registry;
}

}  // namespace csm::baselines
