// Registration of the baseline signature methods, and the default registry.
//
// core::MethodRegistry is the mechanism; this header is the policy: it wires
// the paper's full method line-up (CS plus the Tuncer/Bodik/Lan/PCA
// comparators) into one shared registry so the harness, csmcli, the benches
// and the examples can all construct methods from spec strings such as
// "cs:blocks=20,real-only", "tuncer" or "pca:components=8". It lives in the
// baselines layer because core must not depend on the baseline
// implementations.
#pragma once

#include "core/method_registry.hpp"

namespace csm::baselines {

/// Registers tuncer, bodik, lan[:wr=N] and pca[:components=K].
void register_baseline_methods(core::MethodRegistry& registry);

/// The process-wide registry with every built-in method registered (CS and
/// the four baselines). Built once, thread-safe to read concurrently.
const core::MethodRegistry& default_registry();

}  // namespace csm::baselines
