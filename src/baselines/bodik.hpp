// Bodik et al. baseline (Section III-B, [16]).
//
// Characterises the distribution of each sensor's window data with nine
// quantile-style indicators: minimum, maximum and the
// 5th/25th/35th/50th/65th/75th/95th percentiles. Signature length l = n * 9.
#pragma once

#include "core/signature_method.hpp"

namespace csm::baselines {

class BodikMethod final : public core::SignatureMethod {
 public:
  static constexpr std::size_t kFeaturesPerSensor = 9;

  using core::SignatureMethod::compute;
  using core::SignatureMethod::fit;

  std::string name() const override { return "Bodik"; }
  std::size_t signature_length(std::size_t n_sensors) const override {
    return n_sensors * kFeaturesPerSensor;
  }
  std::vector<double> compute(
      const common::MatrixView& window) const override;

  // Stateless lifecycle: fit() is a copy, serialisation carries no fields.
  std::unique_ptr<core::SignatureMethod> fit(
      const common::MatrixView& train) const override;
  std::string codec_key() const override { return "bodik"; }
  void save(core::codec::Sink& sink) const override;
};

}  // namespace csm::baselines
