#include "baselines/pca.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/model_codec.hpp"
#include "stats/descriptive.hpp"
#include "stats/eigen.hpp"
#include "stats/finite_diff.hpp"

namespace csm::baselines {

namespace {

// Sanity cap on deserialised dimensions (see CsModel::deserialize).
constexpr std::size_t kMaxPcaDim = 1u << 24;

void check_all_finite(std::span<const double> values, const char* what) {
  for (double v : values) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument(std::string("PcaModel: non-finite ") + what);
    }
  }
}

}  // namespace

PcaModel::PcaModel(std::vector<double> means, std::vector<double> inv_std,
                   common::Matrix components, std::vector<double> explained) {
  const std::size_t n = means.size();
  const std::size_t k = components.rows();
  if (n == 0 || k == 0 || k > n || inv_std.size() != n ||
      components.cols() != n || explained.size() != k) {
    throw std::invalid_argument("PcaModel: inconsistent part shapes");
  }
  check_all_finite(means, "means");
  check_all_finite(inv_std, "inverse deviations");
  check_all_finite(explained, "explained variances");
  for (std::size_t r = 0; r < k; ++r) {
    check_all_finite(components.row(r), "component coefficients");
  }
  means_ = std::move(means);
  inv_std_ = std::move(inv_std);
  components_ = std::move(components);
  explained_ = std::move(explained);
}

PcaModel PcaModel::fit(const common::MatrixView& s, std::size_t components) {
  if (s.empty()) throw std::invalid_argument("PcaModel::fit: empty matrix");
  if (components == 0) {
    throw std::invalid_argument("PcaModel::fit: zero components");
  }
  const std::size_t n = s.rows();
  const std::size_t t = s.cols();
  const std::size_t k = std::min(components, n);

  PcaModel model;
  model.means_.resize(n);
  model.inv_std_.resize(n);
  // The standardised copy the eigen-decomposition needs is built straight
  // out of the view; mean/stddev walk each row time-ascending (gathered
  // into scratch for ring-segment layouts), matching the materialised path
  // bit for bit.
  common::Matrix standardized(n, t);
  std::vector<double> scratch;
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = s.row(r, scratch);
    model.means_[r] = stats::mean(row);
    const double sd = stats::stddev(row);
    model.inv_std_[r] = sd > 1e-12 ? 1.0 / sd : 0.0;
    auto dst = standardized.row(r);
    for (std::size_t c = 0; c < t; ++c) {
      dst[c] = (row[c] - model.means_[r]) * model.inv_std_[r];
    }
  }

  const stats::EigenDecomposition eig =
      stats::jacobi_eigen(stats::covariance_matrix(standardized));
  model.components_ = eig.vectors.sub_rows(0, k);
  model.explained_.assign(eig.values.begin(),
                          eig.values.begin() + static_cast<std::ptrdiff_t>(k));
  return model;
}

namespace {

std::vector<double> project_impl(const common::Matrix& components,
                                 std::span<const double> x,
                                 std::span<const double> means,
                                 std::span<const double> inv_std,
                                 bool subtract_mean) {
  if (x.size() != means.size()) {
    throw std::invalid_argument("PcaModel::project: wrong vector length");
  }
  std::vector<double> out(components.rows(), 0.0);
  for (std::size_t c = 0; c < components.rows(); ++c) {
    const auto component = components.row(c);
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double centered = subtract_mean ? x[i] - means[i] : x[i];
      acc += component[i] * centered * inv_std[i];
    }
    out[c] = acc;
  }
  return out;
}

}  // namespace

std::vector<double> PcaModel::project(std::span<const double> x) const {
  return project_impl(components_, x, means_, inv_std_, true);
}

std::vector<double> PcaModel::project_centered(
    std::span<const double> x) const {
  return project_impl(components_, x, means_, inv_std_, false);
}

std::string PcaModel::serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "pcamodel v1\n" << n_sensors() << ' ' << n_components() << "\n";
  for (std::size_t i = 0; i < n_sensors(); ++i) {
    out << means_[i] << ' ' << inv_std_[i] << "\n";
  }
  for (std::size_t c = 0; c < n_components(); ++c) {
    out << explained_[c];
    for (double v : components_.row(c)) out << ' ' << v;
    out << "\n";
  }
  return out.str();
}

PcaModel PcaModel::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version;
  in >> magic >> version;
  if (!in || magic != "pcamodel" || version != "v1") {
    throw std::runtime_error("PcaModel::deserialize: bad header");
  }
  std::size_t n = 0, k = 0;
  in >> n >> k;
  if (!in || n == 0 || n > kMaxPcaDim || k == 0 || k > n) {
    throw std::runtime_error("PcaModel::deserialize: bad dimensions");
  }
  std::vector<double> means(n), inv_std(n), explained(k);
  common::Matrix components(k, n);
  for (std::size_t i = 0; i < n; ++i) in >> means[i] >> inv_std[i];
  for (std::size_t c = 0; c < k; ++c) {
    in >> explained[c];
    for (std::size_t i = 0; i < n; ++i) in >> components(c, i);
  }
  if (!in) throw std::runtime_error("PcaModel::deserialize: truncated body");
  std::string extra;
  if (in >> extra) {
    throw std::runtime_error(
        "PcaModel::deserialize: trailing data after the model body");
  }
  try {
    return PcaModel(std::move(means), std::move(inv_std),
                    std::move(components), std::move(explained));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("PcaModel::deserialize: ") +
                             e.what());
  }
}

PcaMethod::PcaMethod(std::size_t components) : components_(components) {
  if (components_ == 0) {
    throw std::invalid_argument("PcaMethod: zero components");
  }
  name_ = "PCA-" + std::to_string(components_);
}

PcaMethod::PcaMethod(PcaModel model, std::string display_name)
    : model_(std::move(model)),
      components_(model_.n_components()),
      name_(std::move(display_name)) {
  if (model_.n_sensors() == 0) {
    throw std::invalid_argument("PcaMethod: untrained model");
  }
  if (name_.empty()) {
    name_ = "PCA-" + std::to_string(model_.n_components());
  }
}

std::size_t PcaMethod::signature_length(std::size_t /*n_sensors*/) const {
  return 2 * (trained() ? model_.n_components() : components_);
}

std::unique_ptr<core::SignatureMethod> PcaMethod::fit(
    const common::MatrixView& train) const {
  return std::make_unique<PcaMethod>(PcaModel::fit(train, components_));
}

void PcaMethod::save(core::codec::Sink& sink) const {
  if (!trained()) {
    throw std::logic_error("PcaMethod: serialize() before fit()");
  }
  const std::size_t n = model_.n_sensors();
  const std::size_t k = model_.n_components();
  sink.size("sensors", n);
  sink.size("components", k);
  sink.f64_array("means", model_.means());
  sink.f64_array("inv-std", model_.inv_std());
  sink.f64_array("explained", model_.explained_variance());
  // The k x n basis matrix is row-major contiguous already.
  sink.f64_array("basis", {model_.components().data(), k * n});
}

std::unique_ptr<PcaMethod> PcaMethod::read(core::codec::Source& in) {
  const std::size_t n = in.size("sensors");
  const std::size_t k = in.size("components");
  std::vector<double> means = in.f64_array("means");
  std::vector<double> inv_std = in.f64_array("inv-std");
  std::vector<double> explained = in.f64_array("explained");
  const std::vector<double> basis = in.f64_array("basis");
  if (n == 0 || k == 0 || n > kMaxPcaDim || k > kMaxPcaDim ||
      means.size() != n || inv_std.size() != n || explained.size() != k ||
      basis.size() != k * n) {
    throw std::runtime_error(
        "PcaMethod: field shapes are inconsistent with sensors/components");
  }
  common::Matrix components(k, n);
  std::copy(basis.begin(), basis.end(), components.data());
  try {
    return std::make_unique<PcaMethod>(
        PcaModel(std::move(means), std::move(inv_std), std::move(components),
                 std::move(explained)));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("PcaMethod: ") + e.what());
  }
}

std::unique_ptr<PcaMethod> PcaMethod::deserialize_body(
    const std::string& body) {
  return std::make_unique<PcaMethod>(PcaModel::deserialize(body));
}

std::vector<double> PcaMethod::compute(
    const common::MatrixView& window) const {
  if (!trained()) {
    throw std::logic_error("PcaMethod: compute() before fit()");
  }
  if (window.rows() != model_.n_sensors()) {
    throw std::invalid_argument("PcaMethod: sensor count mismatch");
  }
  // Window mean vector and mean backward-derivative vector per sensor. The
  // means accumulate column by column when the view is column-segmented
  // (each column a contiguous span) and row by row otherwise; both walk
  // time ascending per sensor, so the result is bit-identical either way.
  const std::size_t n = window.rows();
  const std::size_t wl = window.cols();
  std::vector<double> mean_vec(n, 0.0);
  std::vector<double> diff_vec(n);
  if (window.contiguous_cols() && wl > 0) {
    for (std::size_t c = 0; c < wl; ++c) {
      const std::span<const double> col = window.col(c);
      for (std::size_t r = 0; r < n; ++r) mean_vec[r] += col[r];
    }
    for (std::size_t r = 0; r < n; ++r) {
      mean_vec[r] /= static_cast<double>(wl);
    }
  } else if (wl > 0) {
    for (std::size_t r = 0; r < n; ++r) {
      mean_vec[r] = stats::mean(window.row(r));
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    // Mean of backward differences = (last - first) / wl.
    const double swing = wl > 1 ? window(r, wl - 1) - window(r, 0) : 0.0;
    diff_vec[r] = wl > 1 ? swing / static_cast<double>(wl) : 0.0;
  }
  std::vector<double> out = model_.project(mean_vec);
  // Derivatives are naturally centred at zero, so skip mean subtraction.
  const std::vector<double> diff_proj = model_.project_centered(diff_vec);
  out.insert(out.end(), diff_proj.begin(), diff_proj.end());
  return out;
}

}  // namespace csm::baselines
