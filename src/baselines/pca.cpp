#include "baselines/pca.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "stats/descriptive.hpp"
#include "stats/eigen.hpp"
#include "stats/finite_diff.hpp"

namespace csm::baselines {

PcaModel PcaModel::fit(const common::Matrix& s, std::size_t components) {
  if (s.empty()) throw std::invalid_argument("PcaModel::fit: empty matrix");
  if (components == 0) {
    throw std::invalid_argument("PcaModel::fit: zero components");
  }
  const std::size_t n = s.rows();
  const std::size_t k = std::min(components, n);

  PcaModel model;
  model.means_.resize(n);
  model.inv_std_.resize(n);
  common::Matrix standardized(n, s.cols());
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = s.row(r);
    model.means_[r] = stats::mean(row);
    const double sd = stats::stddev(row);
    model.inv_std_[r] = sd > 1e-12 ? 1.0 / sd : 0.0;
    auto dst = standardized.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      dst[c] = (row[c] - model.means_[r]) * model.inv_std_[r];
    }
  }

  const stats::EigenDecomposition eig =
      stats::jacobi_eigen(stats::covariance_matrix(standardized));
  model.components_ = eig.vectors.sub_rows(0, k);
  model.explained_.assign(eig.values.begin(),
                          eig.values.begin() + static_cast<std::ptrdiff_t>(k));
  return model;
}

namespace {

std::vector<double> project_impl(const common::Matrix& components,
                                 std::span<const double> x,
                                 std::span<const double> means,
                                 std::span<const double> inv_std,
                                 bool subtract_mean) {
  if (x.size() != means.size()) {
    throw std::invalid_argument("PcaModel::project: wrong vector length");
  }
  std::vector<double> out(components.rows(), 0.0);
  for (std::size_t c = 0; c < components.rows(); ++c) {
    const auto component = components.row(c);
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double centered = subtract_mean ? x[i] - means[i] : x[i];
      acc += component[i] * centered * inv_std[i];
    }
    out[c] = acc;
  }
  return out;
}

}  // namespace

std::vector<double> PcaModel::project(std::span<const double> x) const {
  return project_impl(components_, x, means_, inv_std_, true);
}

std::vector<double> PcaModel::project_centered(
    std::span<const double> x) const {
  return project_impl(components_, x, means_, inv_std_, false);
}

PcaMethod::PcaMethod(PcaModel model, std::string display_name)
    : model_(std::move(model)), name_(std::move(display_name)) {
  if (model_.n_sensors() == 0) {
    throw std::invalid_argument("PcaMethod: untrained model");
  }
  if (name_.empty()) {
    name_ = "PCA-" + std::to_string(model_.n_components());
  }
}

std::size_t PcaMethod::signature_length(std::size_t /*n_sensors*/) const {
  return 2 * model_.n_components();
}

std::vector<double> PcaMethod::compute(const common::Matrix& window) const {
  if (window.rows() != model_.n_sensors()) {
    throw std::invalid_argument("PcaMethod: sensor count mismatch");
  }
  // Window mean vector and mean backward-derivative vector per sensor.
  std::vector<double> mean_vec(window.rows());
  std::vector<double> diff_vec(window.rows());
  for (std::size_t r = 0; r < window.rows(); ++r) {
    const auto row = window.row(r);
    mean_vec[r] = stats::mean(row);
    // Mean of backward differences = (last - first) / wl.
    diff_vec[r] =
        row.size() > 1
            ? (row.back() - row.front()) / static_cast<double>(row.size())
            : 0.0;
  }
  std::vector<double> out = model_.project(mean_vec);
  // Derivatives are naturally centred at zero, so skip mean subtraction.
  const std::vector<double> diff_proj = model_.project_centered(diff_vec);
  out.insert(out.end(), diff_proj.begin(), diff_proj.end());
  return out;
}

}  // namespace csm::baselines
