// PCA comparator (Section I-A related work).
//
// Classic dimensionality reduction applied to monitoring data: a model is
// trained on historical data — per-sensor standardisation plus the top-k
// eigenvectors of the sensor covariance matrix — and each window is reduced
// to the projections of its mean vector (and of its mean first-order
// derivative vector) onto those components. The signature length 2k mirrors
// a CS-k signature exactly, making the two directly comparable. The paper
// cites evidence [15] that variance-dominant components miss fault-critical
// indicators; the ablation_pca benchmark tests that with this class.
#pragma once

#include <cstddef>
#include <vector>

#include "core/signature_method.hpp"

namespace csm::baselines {

/// Trained PCA signature model.
class PcaModel {
 public:
  PcaModel() = default;

  /// Builds a model from its parts (e.g. when deserialising). Throws
  /// std::invalid_argument on inconsistent shapes or non-finite values.
  PcaModel(std::vector<double> means, std::vector<double> inv_std,
           common::Matrix components, std::vector<double> explained);

  /// Trains on historical data (rows = sensors): standardises each sensor
  /// row and extracts the top `components` covariance eigenvectors. Accepts
  /// any window view (a common::Matrix converts implicitly); ring-buffer
  /// history is standardised straight out of the view.
  /// Throws std::invalid_argument if `s` is empty or components == 0.
  static PcaModel fit(const common::MatrixView& s, std::size_t components);

  std::size_t n_sensors() const noexcept { return means_.size(); }
  std::size_t n_components() const noexcept { return components_.rows(); }
  const std::vector<double>& means() const noexcept { return means_; }
  const std::vector<double>& inv_std() const noexcept { return inv_std_; }
  const common::Matrix& components() const noexcept { return components_; }
  const std::vector<double>& explained_variance() const noexcept {
    return explained_;
  }

  /// Human-readable text blob ("pcamodel v1 ..."), mirroring CsModel.
  std::string serialize() const;
  /// Throws std::runtime_error on malformed input (bad header, truncated
  /// body, NaN values, shape mismatches).
  static PcaModel deserialize(const std::string& text);

  /// Projects an n-vector (standardised internally) onto the components.
  std::vector<double> project(std::span<const double> x) const;

  /// Projects without mean subtraction (per-sensor scaling only) — for
  /// quantities such as derivatives that are already centred at zero.
  std::vector<double> project_centered(std::span<const double> x) const;

 private:
  std::vector<double> means_;
  std::vector<double> inv_std_;
  common::Matrix components_;  ///< k x n, row = unit eigenvector.
  std::vector<double> explained_;
};

/// SignatureMethod adapter: signature = [projected window mean,
/// projected window mean-derivative], length 2k. Exists untrained (requested
/// component count only — the registry's "pca:components=8" form) or trained
/// (holding a fitted PcaModel).
class PcaMethod final : public core::SignatureMethod {
 public:
  /// Untrained prototype; compute()/serialize() throw until fit().
  /// Throws std::invalid_argument if components == 0.
  explicit PcaMethod(std::size_t components);

  /// Trained method. Throws std::invalid_argument on an untrained model.
  PcaMethod(PcaModel model, std::string display_name = {});

  using core::SignatureMethod::compute;
  using core::SignatureMethod::fit;

  std::string name() const override { return name_; }
  std::size_t signature_length(std::size_t n_sensors) const override;
  std::vector<double> compute(
      const common::MatrixView& window) const override;

  bool trained() const override { return model_.n_sensors() > 0; }
  std::size_t n_sensors() const override { return model_.n_sensors(); }
  /// Fits the standardisation + eigenbasis on `train`.
  std::unique_ptr<core::SignatureMethod> fit(
      const common::MatrixView& train) const override;
  std::string codec_key() const override { return "pca"; }
  /// Fields: sensors, components, means, inv-std, explained, basis
  /// (k x n row-major).
  void save(core::codec::Sink& sink) const override;

  const PcaModel& model() const noexcept { return model_; }

  /// Reads the save() fields back from either codec back-end. Throws
  /// std::runtime_error on malformed input.
  static std::unique_ptr<PcaMethod> read(core::codec::Source& in);

  /// Parses the body of the legacy "csmethod v1 pca" format.
  static std::unique_ptr<PcaMethod> deserialize_body(const std::string& body);

 private:
  PcaModel model_;            ///< Default-constructed = untrained.
  std::size_t components_;    ///< Requested k (model may clamp to n).
  std::string name_;
};

}  // namespace csm::baselines
