// PCA comparator (Section I-A related work).
//
// Classic dimensionality reduction applied to monitoring data: a model is
// trained on historical data — per-sensor standardisation plus the top-k
// eigenvectors of the sensor covariance matrix — and each window is reduced
// to the projections of its mean vector (and of its mean first-order
// derivative vector) onto those components. The signature length 2k mirrors
// a CS-k signature exactly, making the two directly comparable. The paper
// cites evidence [15] that variance-dominant components miss fault-critical
// indicators; the ablation_pca benchmark tests that with this class.
#pragma once

#include <cstddef>
#include <vector>

#include "core/signature_method.hpp"

namespace csm::baselines {

/// Trained PCA signature model.
class PcaModel {
 public:
  PcaModel() = default;

  /// Trains on historical data (rows = sensors): standardises each sensor
  /// row and extracts the top `components` covariance eigenvectors.
  /// Throws std::invalid_argument if `s` is empty or components == 0.
  static PcaModel fit(const common::Matrix& s, std::size_t components);

  std::size_t n_sensors() const noexcept { return means_.size(); }
  std::size_t n_components() const noexcept { return components_.rows(); }
  const std::vector<double>& explained_variance() const noexcept {
    return explained_;
  }

  /// Projects an n-vector (standardised internally) onto the components.
  std::vector<double> project(std::span<const double> x) const;

  /// Projects without mean subtraction (per-sensor scaling only) — for
  /// quantities such as derivatives that are already centred at zero.
  std::vector<double> project_centered(std::span<const double> x) const;

 private:
  std::vector<double> means_;
  std::vector<double> inv_std_;
  common::Matrix components_;  ///< k x n, row = unit eigenvector.
  std::vector<double> explained_;
};

/// SignatureMethod adapter: signature = [projected window mean,
/// projected window mean-derivative], length 2k.
class PcaMethod final : public core::SignatureMethod {
 public:
  PcaMethod(PcaModel model, std::string display_name = {});

  std::string name() const override { return name_; }
  std::size_t signature_length(std::size_t n_sensors) const override;
  std::vector<double> compute(const common::Matrix& window) const override;

 private:
  PcaModel model_;
  std::string name_;
};

}  // namespace csm::baselines
