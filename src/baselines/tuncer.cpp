#include "baselines/tuncer.hpp"

#include <array>
#include <stdexcept>

#include "core/model_codec.hpp"
#include "stats/descriptive.hpp"

namespace csm::baselines {

std::vector<double> TuncerMethod::compute(
    const common::MatrixView& window) const {
  if (window.empty()) throw std::invalid_argument("Tuncer: empty window");
  static constexpr std::array<double, 5> kQs = {5.0, 25.0, 50.0, 75.0, 95.0};
  std::vector<double> out;
  out.reserve(signature_length(window.rows()));
  // A ring-segment view gathers each row into the reused scratch buffer
  // (the percentile indicators need a sortable copy anyway); a row-major
  // view hands out the backing row directly.
  std::vector<double> scratch;
  for (std::size_t r = 0; r < window.rows(); ++r) {
    const auto row = window.row(r, scratch);
    out.push_back(stats::mean(row));
    out.push_back(stats::stddev(row));
    out.push_back(stats::min(row));
    out.push_back(stats::max(row));
    const std::vector<double> ps = stats::percentiles(row, kQs);
    out.insert(out.end(), ps.begin(), ps.end());
    out.push_back(stats::sum_of_changes(row));
    out.push_back(stats::abs_sum_of_changes(row));
  }
  return out;
}

std::unique_ptr<core::SignatureMethod> TuncerMethod::fit(
    const common::MatrixView& /*train*/) const {
  return std::make_unique<TuncerMethod>(*this);
}

void TuncerMethod::save(core::codec::Sink& /*sink*/) const {
  // Stateless: the codec key alone reconstructs the method.
}

}  // namespace csm::baselines
