#include "baselines/bodik.hpp"

#include <array>
#include <stdexcept>

#include "core/model_codec.hpp"
#include "stats/descriptive.hpp"

namespace csm::baselines {

std::vector<double> BodikMethod::compute(
    const common::MatrixView& window) const {
  if (window.empty()) throw std::invalid_argument("Bodik: empty window");
  static constexpr std::array<double, 7> kQs = {5.0,  25.0, 35.0, 50.0,
                                                65.0, 75.0, 95.0};
  std::vector<double> out;
  out.reserve(signature_length(window.rows()));
  std::vector<double> scratch;  // Row gather buffer for ring-segment views.
  for (std::size_t r = 0; r < window.rows(); ++r) {
    const auto row = window.row(r, scratch);
    out.push_back(stats::min(row));
    out.push_back(stats::max(row));
    const std::vector<double> ps = stats::percentiles(row, kQs);
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

std::unique_ptr<core::SignatureMethod> BodikMethod::fit(
    const common::MatrixView& /*train*/) const {
  return std::make_unique<BodikMethod>(*this);
}

void BodikMethod::save(core::codec::Sink& /*sink*/) const {
  // Stateless: the codec key alone reconstructs the method.
}

}  // namespace csm::baselines
