#include "net/message.hpp"

#include <bit>
#include <limits>
#include <utility>

#include "core/model_codec.hpp"

namespace csm::net {

namespace {

using core::codec::append_u16;
using core::codec::append_u32;
using core::codec::append_u64;

void append_f64(std::vector<std::uint8_t>& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

// Shared histogram wire form: f64 lo | f64 hi | u64 underflow |
// u64 overflow | u32 bins | u64 x bins (stats-response ingest + retrain
// histograms and every node-stats row use it).
void append_histogram(std::vector<std::uint8_t>& out,
                      const stats::Histogram& h) {
  if (h.bins() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument(
        "encode_stats_response: histogram bin count exceeds u32");
  }
  append_f64(out, h.lo());
  append_f64(out, h.hi());
  append_u64(out, h.underflow());
  append_u64(out, h.overflow());
  append_u32(out, static_cast<std::uint32_t>(h.bins()));
  for (std::size_t i = 0; i < h.bins(); ++i) append_u64(out, h.count(i));
}

stats::Histogram read_histogram(PayloadReader& in, const char* what) {
  const double lo = in.f64("hist_lo");
  const double hi = in.f64("hist_hi");
  const std::uint64_t underflow = in.u64("hist_underflow");
  const std::uint64_t overflow = in.u64("hist_overflow");
  const std::uint64_t bins = in.u32("hist_bins");
  std::vector<std::uint64_t> counts = in.u64_array("hist_counts", bins);
  if (counts.empty() || hi < lo) {
    throw MessageError("CSMF payload: bad histogram shape in " +
                       std::string(what) + " (bins=" + std::to_string(bins) +
                       ", lo=" + std::to_string(lo) +
                       ", hi=" + std::to_string(hi) + ")");
  }
  return stats::Histogram(lo, hi, std::move(counts), underflow, overflow);
}

}  // namespace

// ---------------------------------------------------------------------------
// PayloadReader
// ---------------------------------------------------------------------------

void PayloadReader::fail(const char* field, const std::string& detail) const {
  throw MessageError("CSMF payload: bad " + std::string(field) +
                     " at payload offset " + std::to_string(cursor_) + ": " +
                     detail);
}

void PayloadReader::need(const char* field, std::uint64_t n) const {
  if (n > remaining()) {
    fail(field, "needs " + std::to_string(n) + " bytes, " +
                    std::to_string(remaining()) + " remain");
  }
}

std::uint8_t PayloadReader::u8(const char* field) {
  need(field, 1);
  return payload_[cursor_++];
}

std::uint16_t PayloadReader::u16(const char* field) {
  need(field, 2);
  const std::uint16_t v = core::codec::load_u16(payload_.data() + cursor_);
  cursor_ += 2;
  return v;
}

std::uint32_t PayloadReader::u32(const char* field) {
  need(field, 4);
  const std::uint32_t v = core::codec::load_u32(payload_.data() + cursor_);
  cursor_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64(const char* field) {
  need(field, 8);
  const std::uint64_t v = core::codec::load_u64(payload_.data() + cursor_);
  cursor_ += 8;
  return v;
}

double PayloadReader::f64(const char* field) {
  return std::bit_cast<double>(u64(field));
}

std::vector<std::uint8_t> PayloadReader::bytes(const char* field,
                                               std::uint64_t count) {
  need(field, count);
  std::vector<std::uint8_t> out(payload_.begin() +
                                    static_cast<std::ptrdiff_t>(cursor_),
                                payload_.begin() +
                                    static_cast<std::ptrdiff_t>(cursor_ +
                                                                count));
  cursor_ += static_cast<std::size_t>(count);
  return out;
}

std::string PayloadReader::text(const char* field, std::uint64_t count) {
  need(field, count);
  std::string out(reinterpret_cast<const char*>(payload_.data() + cursor_),
                  static_cast<std::size_t>(count));
  cursor_ += static_cast<std::size_t>(count);
  return out;
}

std::vector<double> PayloadReader::f64_array(const char* field,
                                             std::uint64_t count) {
  // The count is bounded by the bytes actually present before the vector
  // is sized — the no-allocation-from-unvalidated-length rule.
  if (count > remaining() / sizeof(double)) {
    fail(field, std::to_string(count) + " doubles need " +
                    std::to_string(count * sizeof(double)) + " bytes, " +
                    std::to_string(remaining()) + " remain");
  }
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(f64(field));
  return out;
}

std::vector<std::uint64_t> PayloadReader::u64_array(const char* field,
                                                    std::uint64_t count) {
  if (count > remaining() / sizeof(std::uint64_t)) {
    fail(field, std::to_string(count) + " u64s need " +
                    std::to_string(count * sizeof(std::uint64_t)) +
                    " bytes, " + std::to_string(remaining()) + " remain");
  }
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out.push_back(u64(field));
  return out;
}

std::span<const std::uint8_t> PayloadReader::rest() noexcept {
  std::span<const std::uint8_t> tail = payload_.subspan(cursor_);
  cursor_ = payload_.size();
  return tail;
}

void PayloadReader::finish(const char* what) const {
  if (remaining() != 0) {
    throw MessageError("CSMF payload: " + std::string(what) + " has " +
                       std::to_string(remaining()) +
                       " trailing bytes after the last field");
  }
}

// ---------------------------------------------------------------------------
// kSampleBatch
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_sample_batch(const common::Matrix& columns) {
  constexpr std::size_t kU32Max = std::numeric_limits<std::uint32_t>::max();
  if (columns.rows() > kU32Max || columns.cols() > kU32Max) {
    throw std::invalid_argument(
        "encode_sample_batch: matrix dimensions exceed u32");
  }
  std::vector<std::uint8_t> out;
  out.reserve(8 + columns.size() * sizeof(double));
  append_u32(out, static_cast<std::uint32_t>(columns.rows()));
  append_u32(out, static_cast<std::uint32_t>(columns.cols()));
  for (std::size_t c = 0; c < columns.cols(); ++c) {
    for (std::size_t r = 0; r < columns.rows(); ++r) {
      append_f64(out, columns(r, c));
    }
  }
  return out;
}

common::Matrix decode_sample_batch(std::span<const std::uint8_t> payload) {
  PayloadReader in(payload);
  const std::uint64_t n_sensors = in.u32("n_sensors");
  const std::uint64_t n_cols = in.u32("n_cols");
  // 64-bit product of two u32s cannot wrap; f64_array bounds it against the
  // payload before allocating.
  const std::vector<double> data =
      in.f64_array("samples", n_sensors * n_cols);
  in.finish("sample-batch");
  common::Matrix m(static_cast<std::size_t>(n_sensors),
                   static_cast<std::size_t>(n_cols));
  for (std::size_t c = 0; c < m.cols(); ++c) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      m(r, c) = data[c * m.rows() + r];
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// kNodeAdd
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_node_add(const NodeAdd& msg) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(msg.source));
  append_u32(out, msg.n_sensors);
  if (msg.source == NodeAddSource::kInlineRecord) {
    out.insert(out.end(), msg.record.begin(), msg.record.end());
  } else {
    out.insert(out.end(), msg.pack_id.begin(), msg.pack_id.end());
  }
  return out;
}

NodeAdd decode_node_add(std::span<const std::uint8_t> payload) {
  PayloadReader in(payload);
  NodeAdd msg;
  const std::uint8_t source = in.u8("source");
  if (source > static_cast<std::uint8_t>(NodeAddSource::kPackId)) {
    throw MessageError("CSMF payload: bad source at payload offset 0: " +
                       std::to_string(static_cast<unsigned>(source)) +
                       " is not a NodeAddSource");
  }
  msg.source = static_cast<NodeAddSource>(source);
  msg.n_sensors = in.u32("n_sensors");
  const std::span<const std::uint8_t> body = in.rest();
  if (msg.source == NodeAddSource::kInlineRecord) {
    msg.record.assign(body.begin(), body.end());
  } else {
    msg.pack_id.assign(reinterpret_cast<const char*>(body.data()),
                       body.size());
  }
  return msg;
}

// ---------------------------------------------------------------------------
// kDrainResponse
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_drain_response(const DrainResponse& msg) {
  constexpr std::size_t kU32Max = std::numeric_limits<std::uint32_t>::max();
  if (msg.signatures.size() > kU32Max) {
    throw std::invalid_argument(
        "encode_drain_response: too many signatures for one frame");
  }
  std::vector<std::uint8_t> out;
  append_u64(out, msg.dropped);
  append_u32(out, static_cast<std::uint32_t>(msg.signatures.size()));
  for (const std::vector<double>& sig : msg.signatures) {
    if (sig.size() > kU32Max) {
      throw std::invalid_argument(
          "encode_drain_response: signature too long for one frame");
    }
    append_u32(out, static_cast<std::uint32_t>(sig.size()));
    for (double v : sig) append_f64(out, v);
  }
  return out;
}

DrainResponse decode_drain_response(std::span<const std::uint8_t> payload) {
  PayloadReader in(payload);
  DrainResponse msg;
  msg.dropped = in.u64("dropped");
  const std::uint64_t count = in.u32("count");
  // Each signature costs at least its 4-byte length prefix, so `count` is
  // bounded by the payload before the outer vector is sized.
  if (count > in.remaining() / 4) {
    throw MessageError(
        "CSMF payload: bad count: " + std::to_string(count) +
        " signatures cannot fit in " + std::to_string(in.remaining()) +
        " remaining bytes");
  }
  msg.signatures.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = in.u32("signature_len");
    msg.signatures.push_back(in.f64_array("signature", len));
  }
  in.finish("drain-response");
  return msg;
}

// ---------------------------------------------------------------------------
// kStatsResponse
// ---------------------------------------------------------------------------

StatsResponse make_stats_response(const core::EngineStats& stats,
                                  std::string server_version) {
  StatsResponse msg;
  msg.samples = stats.samples;
  msg.signatures = stats.signatures;
  msg.retrains = stats.retrains;
  msg.dropped = stats.dropped;
  msg.nodes = stats.nodes;
  msg.ingest_seconds = stats.ingest_seconds;
  msg.server_version = std::move(server_version);
  msg.ingest_latency_us = stats.ingest_latency_us;
  msg.retrain_aborts = stats.retrain_aborts;
  msg.retrain_latency_us = stats.retrain_latency_us;
  msg.drift_windows = stats.drift_windows;
  msg.drift_flags = stats.drift_flags;
  msg.drift_retrains = stats.drift_retrains;
  return msg;
}

std::vector<std::uint8_t> encode_stats_response(const StatsResponse& msg) {
  constexpr std::size_t kU16Max = std::numeric_limits<std::uint16_t>::max();
  if (msg.server_version.size() > kU16Max) {
    throw std::invalid_argument(
        "encode_stats_response: server version string too long");
  }
  std::vector<std::uint8_t> out;
  append_u64(out, msg.samples);
  append_u64(out, msg.signatures);
  append_u64(out, msg.retrains);
  append_u64(out, msg.dropped);
  append_u64(out, msg.nodes);
  append_f64(out, msg.ingest_seconds);
  append_u16(out, static_cast<std::uint16_t>(msg.server_version.size()));
  out.insert(out.end(), msg.server_version.begin(),
             msg.server_version.end());
  append_histogram(out, msg.ingest_latency_us);
  // Retrain-pressure fields, appended (never renumbered): a pre-retrain
  // decoder stops at the ingest histogram and ignores these bytes' absence.
  append_u64(out, msg.retrain_aborts);
  append_histogram(out, msg.retrain_latency_us);
  // Drift-detector fields, appended after the retrain block under the same
  // rule: a pre-drift decoder stops at the retrain histogram.
  append_u64(out, msg.drift_windows);
  append_u64(out, msg.drift_flags);
  append_u64(out, msg.drift_retrains);
  return out;
}

StatsResponse decode_stats_response(std::span<const std::uint8_t> payload) {
  PayloadReader in(payload);
  StatsResponse msg;
  msg.samples = in.u64("samples");
  msg.signatures = in.u64("signatures");
  msg.retrains = in.u64("retrains");
  msg.dropped = in.u64("dropped");
  msg.nodes = in.u64("nodes");
  msg.ingest_seconds = in.f64("ingest_seconds");
  const std::uint64_t version_len = in.u16("version_len");
  msg.server_version = in.text("server_version", version_len);
  msg.ingest_latency_us = read_histogram(in, "stats-response");
  // A payload ending here came from a peer that predates the appended
  // retrain fields: keep their zero-valued defaults.
  if (in.remaining() == 0) return msg;
  msg.retrain_aborts = in.u64("retrain_aborts");
  msg.retrain_latency_us = read_histogram(in, "stats-response retrain");
  // A payload ending here came from a peer that predates the appended
  // drift-detector fields: keep their zero-valued defaults.
  if (in.remaining() == 0) return msg;
  msg.drift_windows = in.u64("drift_windows");
  msg.drift_flags = in.u64("drift_flags");
  msg.drift_retrains = in.u64("drift_retrains");
  in.finish("stats-response");
  return msg;
}

// ---------------------------------------------------------------------------
// kNodeStatsResponse
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_node_stats_response(
    const NodeStatsResponse& msg) {
  constexpr std::size_t kU16Max = std::numeric_limits<std::uint16_t>::max();
  if (msg.nodes.size() > kMaxNodeStatsRows) {
    throw std::invalid_argument(
        "encode_node_stats_response: too many node rows for one frame "
        "(shard the engine)");
  }
  std::vector<std::uint8_t> out;
  append_u32(out, static_cast<std::uint32_t>(msg.nodes.size()));
  for (const core::NodeStats& row : msg.nodes) {
    if (row.name.size() > kU16Max) {
      throw std::invalid_argument(
          "encode_node_stats_response: node name too long");
    }
    append_u16(out, static_cast<std::uint16_t>(row.name.size()));
    out.insert(out.end(), row.name.begin(), row.name.end());
    append_u64(out, row.samples);
    append_u64(out, row.signatures);
    append_u64(out, row.retrains);
    append_u64(out, row.retrain_aborts);
    append_u64(out, row.dropped);
    append_histogram(out, row.ingest_latency_us);
    append_histogram(out, row.retrain_latency_us);
  }
  return out;
}

NodeStatsResponse decode_node_stats_response(
    std::span<const std::uint8_t> payload) {
  PayloadReader in(payload);
  NodeStatsResponse msg;
  const std::uint64_t count = in.u32("node_count");
  if (count > kMaxNodeStatsRows) {
    throw MessageError("CSMF payload: bad node_count: " +
                       std::to_string(count) + " rows exceed the cap of " +
                       std::to_string(kMaxNodeStatsRows));
  }
  // Each row costs at least its 2-byte name length, so the count is bounded
  // by the bytes present before the vector is sized.
  if (count > in.remaining() / 2) {
    throw MessageError("CSMF payload: bad node_count: " +
                       std::to_string(count) + " rows cannot fit in " +
                       std::to_string(in.remaining()) + " remaining bytes");
  }
  msg.nodes.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    core::NodeStats row;
    const std::uint64_t name_len = in.u16("node_name_len");
    row.name = in.text("node_name", name_len);
    row.samples = in.u64("node_samples");
    row.signatures = in.u64("node_signatures");
    row.retrains = in.u64("node_retrains");
    row.retrain_aborts = in.u64("node_retrain_aborts");
    row.dropped = in.u64("node_dropped");
    row.ingest_latency_us = read_histogram(in, "node-stats ingest");
    row.retrain_latency_us = read_histogram(in, "node-stats retrain");
    msg.nodes.push_back(std::move(row));
  }
  in.finish("node-stats-response");
  return msg;
}

// ---------------------------------------------------------------------------
// kOk / kError
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_ok(std::optional<std::uint64_t> value) {
  std::vector<std::uint8_t> out;
  out.push_back(value.has_value() ? 1 : 0);
  append_u64(out, value.value_or(0));
  return out;
}

std::optional<std::uint64_t> decode_ok(
    std::span<const std::uint8_t> payload) {
  PayloadReader in(payload);
  const std::uint8_t has_value = in.u8("has_value");
  if (has_value > 1) {
    throw MessageError(
        "CSMF payload: bad has_value at payload offset 0: expected 0 or 1, "
        "got " +
        std::to_string(static_cast<unsigned>(has_value)));
  }
  const std::uint64_t value = in.u64("value");
  in.finish("ok");
  if (has_value == 0) return std::nullopt;
  return value;
}

std::vector<std::uint8_t> encode_error_text(std::string_view text) {
  if (text.size() > kMaxErrorTextBytes) {
    text = text.substr(0, kMaxErrorTextBytes);
  }
  return {text.begin(), text.end()};
}

std::string decode_error_text(std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxErrorTextBytes) {
    throw MessageError("CSMF payload: error text of " +
                       std::to_string(payload.size()) +
                       " bytes exceeds the cap of " +
                       std::to_string(kMaxErrorTextBytes));
  }
  return {reinterpret_cast<const char*>(payload.data()), payload.size()};
}

}  // namespace csm::net
