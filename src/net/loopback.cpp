#include "net/loopback.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace csm::net {

namespace {

/// One direction of a loopback pair: an unbounded byte buffer plus the cv
/// a blocked reader sleeps on. Lock ordering: a thread holding the hub
/// mutex may take a channel mutex (Listener::wait readiness probe); a
/// writer never holds a channel mutex while taking the hub mutex.
struct Channel {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::uint8_t> buf;
  std::size_t head = 0;  ///< Consumed prefix of buf.
  bool closed = false;   ///< Either endpoint hung up.

  std::size_t available() {
    std::lock_guard lock(mutex);
    return buf.size() - head;
  }

  bool drained_eof() {
    std::lock_guard lock(mutex);
    return closed && buf.size() == head;
  }
};

}  // namespace

struct LoopbackHub::State {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::unique_ptr<Connection>> pending;
  bool listener_closed = false;
  std::uint64_t next_id = 0;

  void notify() {
    {
      std::lock_guard lock(mutex);
    }
    cv.notify_all();
  }
};

namespace {

class LoopbackConnection final : public Connection {
 public:
  LoopbackConnection(std::shared_ptr<Channel> in, std::shared_ptr<Channel> out,
                     std::shared_ptr<LoopbackHub::State> hub,
                     bool notify_hub, std::uint64_t id)
      : in_(std::move(in)),
        out_(std::move(out)),
        hub_(std::move(hub)),
        notify_hub_(notify_hub),
        id_(id) {}

  ~LoopbackConnection() override { close(); }

  std::size_t read_some(std::span<std::uint8_t> out) override {
    if (self_closed_) return 0;
    std::lock_guard lock(in_->mutex);
    const std::size_t avail = in_->buf.size() - in_->head;
    const std::size_t n = avail < out.size() ? avail : out.size();
    std::copy_n(in_->buf.begin() + static_cast<std::ptrdiff_t>(in_->head), n,
                out.begin());
    in_->head += n;
    if (in_->head == in_->buf.size()) {
      in_->buf.clear();
      in_->head = 0;
    }
    return n;
  }

  std::size_t write_some(std::span<const std::uint8_t> data) override {
    if (self_closed_) return 0;
    {
      std::lock_guard lock(out_->mutex);
      if (out_->closed) {
        // Peer hung up: the disconnect shows as a closed connection, not
        // an exception (matching the socket transport's EPIPE handling).
        self_closed_ = true;
        return 0;
      }
      out_->buf.insert(out_->buf.end(), data.begin(), data.end());
    }
    out_->cv.notify_all();
    if (notify_hub_) hub_->notify();
    return data.size();
  }

  bool is_open() const noexcept override {
    if (self_closed_) return false;
    return !in_->drained_eof();
  }

  void close() noexcept override {
    if (self_closed_) return;
    self_closed_ = true;
    for (Channel* ch : {in_.get(), out_.get()}) {
      {
        std::lock_guard lock(ch->mutex);
        ch->closed = true;
      }
      ch->cv.notify_all();
    }
    hub_->notify();
  }

  bool wait_readable(int timeout_ms) override {
    std::unique_lock lock(in_->mutex);
    auto ready = [&] {
      return self_closed_ || in_->closed || in_->buf.size() > in_->head;
    };
    if (timeout_ms < 0) {
      in_->cv.wait(lock, ready);
      return true;
    }
    return in_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            ready);
  }

  bool wait_writable(int /*timeout_ms*/) override {
    return true;  // Unbounded buffers: writes always make progress.
  }

  std::string peer_name() const override {
    return "loopback#" + std::to_string(id_);
  }

  /// Readiness probe for Listener::wait (hub mutex held by the caller).
  bool readable_or_eof() {
    return self_closed_ || in_->available() > 0 || in_->drained_eof();
  }

 private:
  std::shared_ptr<Channel> in_;
  std::shared_ptr<Channel> out_;
  std::shared_ptr<LoopbackHub::State> hub_;
  bool notify_hub_;
  std::uint64_t id_;
  bool self_closed_ = false;
};

class LoopbackListener final : public Listener {
 public:
  explicit LoopbackListener(std::shared_ptr<LoopbackHub::State> state)
      : state_(std::move(state)) {}

  ~LoopbackListener() override { close(); }

  std::unique_ptr<Connection> accept() override {
    std::lock_guard lock(state_->mutex);
    if (state_->pending.empty()) return nullptr;
    std::unique_ptr<Connection> conn = std::move(state_->pending.front());
    state_->pending.pop_front();
    return conn;
  }

  bool wait(std::span<Connection* const> conns, int timeout_ms) override {
    std::unique_lock lock(state_->mutex);
    auto ready = [&] {
      if (!state_->pending.empty() || state_->listener_closed) return true;
      for (Connection* c : conns) {
        if (static_cast<LoopbackConnection*>(c)->readable_or_eof()) {
          return true;
        }
      }
      return false;
    };
    if (timeout_ms < 0) {
      state_->cv.wait(lock, ready);
      return true;
    }
    return state_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               ready);
  }

  void close() noexcept override {
    {
      std::lock_guard lock(state_->mutex);
      state_->listener_closed = true;
    }
    state_->cv.notify_all();
  }

  std::string address() const override { return "loopback"; }

 private:
  std::shared_ptr<LoopbackHub::State> state_;
};

}  // namespace

LoopbackHub::LoopbackHub() : state_(std::make_shared<State>()) {}

std::unique_ptr<Listener> LoopbackHub::listen() {
  return std::make_unique<LoopbackListener>(state_);
}

std::unique_ptr<Connection> LoopbackHub::connect() {
  auto client_to_server = std::make_shared<Channel>();
  auto server_to_client = std::make_shared<Channel>();
  std::unique_ptr<Connection> client;
  {
    std::lock_guard lock(state_->mutex);
    if (state_->listener_closed) {
      throw TransportError("loopback hub: listener has closed");
    }
    const std::uint64_t id = state_->next_id++;
    // Client writes wake the server's Listener::wait via the hub; server
    // writes wake only the client's per-channel cv.
    client = std::make_unique<LoopbackConnection>(
        server_to_client, client_to_server, state_, /*notify_hub=*/true, id);
    state_->pending.push_back(std::make_unique<LoopbackConnection>(
        client_to_server, server_to_client, state_, /*notify_hub=*/true,
        id));
  }
  state_->cv.notify_all();
  return client;
}

}  // namespace csm::net
