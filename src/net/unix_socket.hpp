// Unix-domain socket transport: csmd's production face. The listener owns
// a SOCK_STREAM socket bound to a filesystem path (a stale socket file
// left by a crashed daemon is unlinked first); accepted connections are
// non-blocking and multiplexed with poll(2). Client connections made with
// connect_unix() carry the same non-blocking contract — the blocking
// helpers in net/transport.hpp supply the waiting.
#pragma once

#include <memory>
#include <string>

#include "net/transport.hpp"

namespace csm::net {

/// Binds and listens on `path`. Throws TransportError when the path is too
/// long for sockaddr_un or the bind/listen fails (e.g. the path's
/// directory does not exist, or a LIVE daemon already owns the socket).
/// The destructor unlinks the socket file.
std::unique_ptr<Listener> listen_unix(const std::string& path);

/// Connects to the daemon listening on `path`. Throws TransportError when
/// nothing is listening.
std::unique_ptr<Connection> connect_unix(const std::string& path);

}  // namespace csm::net
