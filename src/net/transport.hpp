// Byte transports under the CSMF frame protocol.
//
// A Connection moves raw bytes; framing lives entirely in net/frame.hpp, so
// the server and the clients are transport-agnostic. Two implementations
// ship today: a unix-domain socket (net/unix_socket.hpp — csmd's production
// face) and an in-process loopback (net/loopback.hpp — deterministic tests
// and benches without touching the filesystem). A TCP transport can drop in
// behind the same two interfaces later.
//
// Connections are non-blocking at the interface: read_some/write_some
// return 0 instead of blocking, and wait_readable/wait_writable provide the
// blocking edge for clients that want simple request/response calls. A
// Listener multiplexes one server thread over many connections: wait()
// blocks until a new connection can be accepted or any of the given
// connections has bytes (or EOF) to deliver.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>

#include "net/frame.hpp"

namespace csm::net {

/// Transport-layer failure (socket error, connect to a dead daemon, EOF in
/// the middle of a frame exchange).
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One bidirectional byte stream. Not thread-safe; one owner at a time.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Reads up to out.size() bytes; returns the count actually read. 0
  /// means "nothing available right now" — check open() to distinguish a
  /// drained peer close (EOF) from would-block. Throws TransportError on a
  /// transport fault.
  virtual std::size_t read_some(std::span<std::uint8_t> out) = 0;

  /// Writes up to data.size() bytes; returns the count accepted (0 =
  /// would-block). A peer that vanished mid-write closes the connection
  /// (open() turns false) instead of throwing — disconnects are routine.
  virtual std::size_t write_some(std::span<const std::uint8_t> data) = 0;

  /// True until close() is called or the peer's bytes are exhausted (peer
  /// closed AND everything it sent has been read).
  virtual bool is_open() const noexcept = 0;

  virtual void close() noexcept = 0;

  /// Blocks up to timeout_ms (-1 = indefinitely) until read_some would
  /// make progress (data or EOF). Returns false on timeout.
  virtual bool wait_readable(int timeout_ms) = 0;

  /// Blocks up to timeout_ms (-1 = indefinitely) until write_some would
  /// make progress. Returns false on timeout.
  virtual bool wait_writable(int timeout_ms) = 0;

  /// OS handle for poll()-based multiplexing; -1 for in-process
  /// transports.
  virtual int native_handle() const noexcept { return -1; }

  /// Short peer label for logs ("unix:fd=7", "loopback#3").
  virtual std::string peer_name() const = 0;
};

/// Accepts connections and multiplexes readiness for a single-threaded
/// server loop.
class Listener {
 public:
  virtual ~Listener() = default;

  /// The next pending connection, or nullptr when none is waiting.
  virtual std::unique_ptr<Connection> accept() = 0;

  /// Blocks up to timeout_ms (-1 = indefinitely) until a connection is
  /// waiting to be accepted or any connection in `conns` has readable
  /// bytes/EOF. Returns false on timeout. `conns` must be connections of
  /// this listener's transport.
  virtual bool wait(std::span<Connection* const> conns, int timeout_ms) = 0;

  virtual void close() noexcept = 0;

  /// Where this listener listens ("unix:/run/csmd.sock", "loopback").
  virtual std::string address() const = 0;
};

// ---------------------------------------------------------------------------
// Blocking frame helpers — the client-side edge (csmcli push/fleet-stats,
// tests). The server loop never blocks per-connection and uses
// FrameReader/FrameWriter directly instead.
// ---------------------------------------------------------------------------

/// Writes all of `bytes`, waiting for writability as needed. Throws
/// TransportError if the connection closes first.
void write_all(Connection& conn, std::span<const std::uint8_t> bytes);

/// Encodes and writes one frame (see write_all).
void write_frame(Connection& conn, const Frame& frame);

/// Reads until `reader` yields one complete frame. Returns std::nullopt on
/// a clean EOF at a frame boundary. Throws TransportError on timeout
/// (timeout_ms >= 0 bounds each wait) or EOF mid-frame; FrameError on
/// corrupt bytes.
std::optional<Frame> read_frame(Connection& conn, FrameReader& reader,
                                int timeout_ms = -1);

/// Request/response round trip: writes `request`, then reads one frame.
/// Throws TransportError if the daemon hangs up instead of answering. If
/// the response is kError, throws TransportError with the daemon's text.
Frame call(Connection& conn, FrameReader& reader, const Frame& request,
           int timeout_ms = -1);

}  // namespace csm::net
