// CSMF payload schemas: the typed messages carried inside net/frame.hpp
// frames (docs/PROTOCOL.md lists the byte-level layouts). Every decoder
// reads through PayloadReader, which checks each length against the bytes
// actually present BEFORE any allocation — an untrusted count can name an
// error, never size a buffer.
//
// Error taxonomy: a malformed payload throws MessageError (a semantic
// error — the frame itself was well-formed, so the connection survives and
// the daemon answers with a kError frame). Framing corruption is
// FrameError (net/frame.hpp) and kills the connection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"
#include "core/stream_engine.hpp"
#include "stats/histogram.hpp"

namespace csm::net {

/// Malformed payload inside a well-formed frame. The message names the
/// field and its offset within the payload.
class MessageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cap on kError frame text: error strings are diagnostics, not bulk data.
inline constexpr std::size_t kMaxErrorTextBytes = 4096;

/// Checked little-endian cursor over one frame payload. Every read names
/// its field; running past the end, or asking for an array whose count
/// exceeds the bytes present, throws MessageError before allocating.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> payload)
      : payload_(payload) {}

  std::uint8_t u8(const char* field);
  std::uint16_t u16(const char* field);
  std::uint32_t u32(const char* field);
  std::uint64_t u64(const char* field);
  double f64(const char* field);
  /// `count` raw bytes. Checked against remaining() first.
  std::vector<std::uint8_t> bytes(const char* field, std::uint64_t count);
  /// `count` bytes as a string (UTF-8 by convention, not validated).
  std::string text(const char* field, std::uint64_t count);
  /// `count` doubles. The count is validated against remaining()/8 before
  /// the vector is sized.
  std::vector<double> f64_array(const char* field, std::uint64_t count);
  std::vector<std::uint64_t> u64_array(const char* field,
                                       std::uint64_t count);

  std::size_t remaining() const noexcept {
    return payload_.size() - cursor_;
  }
  /// The unread tail, consumed (for nested formats like CSMB records).
  std::span<const std::uint8_t> rest() noexcept;
  /// Throws MessageError when unread bytes remain (`what` names the
  /// message being decoded).
  void finish(const char* what) const;

 private:
  void need(const char* field, std::uint64_t n) const;
  [[noreturn]] void fail(const char* field, const std::string& detail) const;

  std::span<const std::uint8_t> payload_;
  std::size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// kSampleBatch: u32 n_sensors | u32 n_cols | f64 x (n_sensors*n_cols),
// column-major (one monitoring time-stamp after another, matching the
// ingestion order).
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_sample_batch(const common::Matrix& columns);
common::Matrix decode_sample_batch(std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// kNodeAdd: u8 source | u32 n_sensors | body. source 0 carries an inline
// CSMB model record as the body; source 1 carries a pack id to resolve in
// the daemon's mapped ModelPack. n_sensors is for sensor-count-agnostic
// methods (0 = take it from the model), as in StreamEngine::add_node.
// ---------------------------------------------------------------------------

enum class NodeAddSource : std::uint8_t {
  kInlineRecord = 0,
  kPackId = 1,
};

struct NodeAdd {
  NodeAddSource source = NodeAddSource::kInlineRecord;
  std::uint32_t n_sensors = 0;
  std::vector<std::uint8_t> record;  ///< CSMB record (kInlineRecord).
  std::string pack_id;               ///< Pack id (kPackId).
};

std::vector<std::uint8_t> encode_node_add(const NodeAdd& msg);
NodeAdd decode_node_add(std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// kDrainResponse: u64 dropped | u32 count | count x (u32 len | f64 x len).
// The drained signature queue of one node plus its cumulative drop counter.
// ---------------------------------------------------------------------------

struct DrainResponse {
  std::uint64_t dropped = 0;
  std::vector<std::vector<double>> signatures;

  bool operator==(const DrainResponse&) const = default;
};

std::vector<std::uint8_t> encode_drain_response(const DrainResponse& msg);
DrainResponse decode_drain_response(std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// kStatsResponse: u64 samples | u64 signatures | u64 retrains | u64 dropped
// | u64 nodes | f64 ingest_seconds | u16 version_len | version bytes |
// f64 hist_lo | f64 hist_hi | u64 underflow | u64 overflow | u32 bins |
// u64 x bins — then the fields APPENDED for retrain pressure (old peers
// simply stop before them, and the decoder fills zero-valued defaults):
// u64 retrain_aborts | f64 rt_lo | f64 rt_hi | u64 rt_underflow |
// u64 rt_overflow | u32 rt_bins | u64 x rt_bins — and then the fields
// APPENDED for the kOnDrift drift detector (same rule: old peers stop
// before them): u64 drift_windows | u64 drift_flags | u64 drift_retrains.
// Histograms restore losslessly through the stats::Histogram restore
// constructor.
// ---------------------------------------------------------------------------

struct StatsResponse {
  std::uint64_t samples = 0;
  std::uint64_t signatures = 0;
  std::uint64_t retrains = 0;
  std::uint64_t dropped = 0;
  std::uint64_t nodes = 0;
  double ingest_seconds = 0.0;
  /// The daemon's build identity (git sha), so a scrape tells you what is
  /// actually running.
  std::string server_version;
  stats::Histogram ingest_latency_us = core::make_latency_histogram();
  /// Appended fields (PROTOCOL.md: appended, never renumbered). Zero-valued
  /// defaults when decoding a pre-retrain-pressure peer's payload.
  std::uint64_t retrain_aborts = 0;
  stats::Histogram retrain_latency_us = core::make_retrain_latency_histogram();
  /// Second appended block: kOnDrift drift-detector totals. Zero-valued
  /// defaults when the peer predates the drift detector.
  std::uint64_t drift_windows = 0;
  std::uint64_t drift_flags = 0;
  std::uint64_t drift_retrains = 0;
};

/// Builds the wire message from an engine snapshot + build identity.
StatsResponse make_stats_response(const core::EngineStats& stats,
                                  std::string server_version);
std::vector<std::uint8_t> encode_stats_response(const StatsResponse& msg);
StatsResponse decode_stats_response(std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// kNodeStatsResponse: u32 count | count x node row, each row
// u16 name_len | name bytes | u64 samples | u64 signatures | u64 retrains |
// u64 retrain_aborts | u64 dropped | ingest histogram | retrain histogram
// (histograms as f64 lo | f64 hi | u64 underflow | u64 overflow | u32 bins |
// u64 x bins). One row per LIVE engine node, in node-index order — the
// un-merged per-node view that kStatsResponse's fleet-wide rollup loses.
// The request (kNodeStatsRequest) is empty with an empty frame id.
// ---------------------------------------------------------------------------

struct NodeStatsResponse {
  std::vector<core::NodeStats> nodes;
};

/// Caps a node-stats response at what one frame can carry; encode throws
/// std::invalid_argument beyond it. 64 MiB / ~2.2 KiB per row leaves head
/// room; a fleet bigger than this should shard engines (ROADMAP item 1).
inline constexpr std::size_t kMaxNodeStatsRows = 16384;

std::vector<std::uint8_t> encode_node_stats_response(
    const NodeStatsResponse& msg);
NodeStatsResponse decode_node_stats_response(
    std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// kOk: u8 has_value | u64 value. NodeAdd acks carry the new node index;
// NodeRemove acks carry none.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_ok(std::optional<std::uint64_t> value);
std::optional<std::uint64_t> decode_ok(std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// kError: UTF-8 diagnostic text, truncated to kMaxErrorTextBytes on encode.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_error_text(std::string_view text);
std::string decode_error_text(std::span<const std::uint8_t> payload);

}  // namespace csm::net
