#include "net/server.hpp"

#include <utility>

#include "core/method_registry.hpp"
#include "core/model_pack.hpp"
#include "net/message.hpp"

namespace csm::net {

FleetServer::FleetServer(std::unique_ptr<Listener> listener,
                         core::StreamEngine& engine,
                         FleetServerOptions options)
    : listener_(std::move(listener)),
      engine_(engine),
      options_(std::move(options)) {
  if (!listener_) {
    throw std::invalid_argument("FleetServer: listener is null");
  }
}

FleetServer::~FleetServer() { listener_->close(); }

void FleetServer::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    poll_once(options_.poll_timeout_ms);
  }
}

std::size_t FleetServer::node_index(const std::string& name) const {
  return lookup(name);
}

std::size_t FleetServer::lookup(const std::string& node) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    throw std::invalid_argument("unknown node \"" + node + "\"");
  }
  return it->second;
}

void FleetServer::accept_pending() {
  while (std::unique_ptr<Connection> conn = listener_->accept()) {
    clients_.push_back(
        std::make_unique<Client>(std::move(conn),
                                 options_.max_frame_payload));
  }
}

bool FleetServer::poll_once(int timeout_ms) {
  std::vector<Connection*> conns;
  conns.reserve(clients_.size());
  for (const auto& c : clients_) conns.push_back(c->conn.get());
  listener_->wait(conns, timeout_ms);

  const std::size_t before = clients_.size();
  const std::uint64_t frames_before = frames_;
  accept_pending();

  bool closed_any = false;
  for (auto& client : clients_) {
    if (!service(*client)) closed_any = true;
  }
  if (closed_any) {
    std::erase_if(clients_, [](const std::unique_ptr<Client>& c) {
      return !c->conn->is_open();
    });
  }
  return clients_.size() != before || frames_ != frames_before || closed_any;
}

bool FleetServer::service(Client& client) {
  std::uint8_t chunk[16 * 1024];
  bool eof = false;
  while (client.conn->is_open() && !client.closing) {
    const std::size_t n = client.conn->read_some(chunk);
    if (n == 0) {
      eof = !client.conn->is_open();
      break;
    }
    client.reader.feed({chunk, n});
    try {
      while (std::optional<Frame> frame = client.reader.next()) {
        handle_frame(client, *std::move(frame));
      }
    } catch (const FrameError& e) {
      // The byte stream is desynchronised: one parting diagnostic, then
      // hang up.
      reply(client, FrameType::kError, "", encode_error_text(e.what()));
      client.closing = true;
    }
  }
  if (eof && !client.reader.at_frame_boundary()) {
    // Disconnect mid-frame: nothing to answer (the peer is gone), but the
    // truncated tail must not be mistaken for a clean close.
    client.closing = true;
  }
  flush(client);
  if (client.closing && client.out_head == client.out.size()) {
    client.conn->close();
  }
  if (eof && client.out_head == client.out.size()) {
    client.conn->close();
  }
  return client.conn->is_open();
}

void FleetServer::reply(Client& client, FrameType type,
                        const std::string& node,
                        std::vector<std::uint8_t> payload) {
  Frame frame;
  frame.type = type;
  frame.node = node;
  frame.payload = std::move(payload);
  const std::vector<std::uint8_t> encoded = encode_frame(frame);
  client.out.insert(client.out.end(), encoded.begin(), encoded.end());
}

void FleetServer::flush(Client& client) {
  while (client.out_head < client.out.size() && client.conn->is_open()) {
    const std::size_t n = client.conn->write_some(
        std::span(client.out).subspan(client.out_head));
    if (n == 0) break;  // Would-block: retry on the next iteration.
    client.out_head += n;
  }
  if (client.out_head == client.out.size() && !client.out.empty()) {
    client.out.clear();
    client.out_head = 0;
  }
}

void FleetServer::handle_frame(Client& client, Frame&& frame) {
  ++frames_;
  try {
    switch (frame.type) {
      case FrameType::kSampleBatch: {
        const common::Matrix columns = decode_sample_batch(frame.payload);
        engine_.ingest(lookup(frame.node), columns);
        break;  // One-way: no ack on success.
      }
      case FrameType::kNodeAdd:
        handle_node_add(client, frame);
        break;
      case FrameType::kNodeRemove: {
        const std::size_t index = lookup(frame.node);
        engine_.remove_node(index);
        nodes_.erase(frame.node);
        reply(client, FrameType::kOk, frame.node, encode_ok(index));
        break;
      }
      case FrameType::kDrainRequest: {
        const std::size_t index = lookup(frame.node);
        DrainResponse response;
        response.signatures = engine_.drain(index);
        response.dropped = engine_.dropped(index);
        reply(client, FrameType::kDrainResponse, frame.node,
              encode_drain_response(response));
        break;
      }
      case FrameType::kStatsRequest: {
        reply(client, FrameType::kStatsResponse, "",
              encode_stats_response(make_stats_response(
                  engine_.stats(), options_.server_version)));
        break;
      }
      case FrameType::kNodeStatsRequest: {
        NodeStatsResponse response;
        response.nodes = engine_.node_stats();
        reply(client, FrameType::kNodeStatsResponse, "",
              encode_node_stats_response(response));
        break;
      }
      default:
        throw std::invalid_argument(
            std::string("unexpected ") + frame_type_name(frame.type) +
            " frame: clients send requests, not responses");
    }
  } catch (const std::exception& e) {
    // Semantic failure in a well-formed frame: answer and keep serving.
    reply(client, FrameType::kError, frame.node, encode_error_text(e.what()));
  }
}

void FleetServer::handle_node_add(Client& client, const Frame& frame) {
  if (frame.node.empty()) {
    throw std::invalid_argument("node-add: empty node name");
  }
  if (const auto it = nodes_.find(frame.node); it != nodes_.end()) {
    throw std::invalid_argument("node-add: node \"" + frame.node +
                                "\" already exists (index " +
                                std::to_string(it->second) + ")");
  }
  const NodeAdd msg = decode_node_add(frame.payload);
  if (options_.registry == nullptr) {
    throw std::invalid_argument(
        "node-add: this server has no method registry");
  }
  std::shared_ptr<const core::SignatureMethod> method;
  if (msg.source == NodeAddSource::kInlineRecord) {
    method = options_.registry->decode(msg.record);
  } else {
    if (options_.pack == nullptr) {
      throw std::invalid_argument(
          "node-add: no model pack is loaded, pack id \"" + msg.pack_id +
          "\" cannot be resolved");
    }
    method = options_.pack->load(msg.pack_id, *options_.registry);
  }
  const std::size_t index =
      engine_.add_node(frame.node, std::move(method), msg.n_sensors);
  nodes_.emplace(frame.node, index);
  if (options_.on_node_add) {
    options_.on_node_add(index, frame.node, msg.n_sensors);
  }
  reply(client, FrameType::kOk, frame.node, encode_ok(index));
}

}  // namespace csm::net
