// In-process loopback transport: the same Connection/Listener contract as
// the unix-domain socket, with std::mutex/condition_variable instead of
// file descriptors. Daemon lifecycle tests and benches run a real
// FleetServer against real client threads — byte streams, arbitrary read
// boundaries and all — without touching the filesystem, and the whole
// exchange runs under ThreadSanitizer in the soak preset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "net/transport.hpp"

namespace csm::net {

/// Rendezvous point between loopback clients and the one loopback
/// listener. Thread-safe: connect() may be called from any thread while a
/// server thread sits in Listener::wait(). The hub must outlive its
/// listener and every endpoint's *calls* (endpoints keep the shared state
/// alive, so destruction order of the objects themselves is free).
class LoopbackHub {
 public:
  LoopbackHub();

  /// The server side. One listener per hub.
  std::unique_ptr<Listener> listen();

  /// Opens a client connection; the matching server endpoint becomes
  /// accept()able. Throws TransportError once the listener has closed.
  std::unique_ptr<Connection> connect();

  struct State;  ///< Implementation detail (public for the .cpp's use).

 private:
  std::shared_ptr<State> state_;
};

}  // namespace csm::net
