// Daemon lifecycle around a FleetServer: build the engine, bind the unix
// socket, serve until SIGINT/SIGTERM, report totals on the way out. Both
// daemon faces — the standalone csmd binary and `csmcli serve` — are thin
// argument parsers over run_daemon(), so they cannot drift apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "core/streaming.hpp"

namespace csm::core {
class MethodRegistry;
class StreamEngine;
}  // namespace csm::core

namespace csm::net {

struct DaemonOptions {
  std::string socket_path;     ///< Unix-domain socket to listen on.
  core::StreamOptions stream;  ///< Engine config (incl. max_pending).
  std::string pack_path;       ///< Optional ModelPack for by-id node adds.
  std::string version;         ///< Build identity reported in stats.
  /// Decodes inline model records in node-add frames (required).
  const core::MethodRegistry* registry = nullptr;
  /// Called with the engine right after construction, before the socket
  /// binds — the seam csmd --record uses to install an ingest tap without
  /// the net layer depending on the replay layer.
  std::function<void(core::StreamEngine&)> engine_hook;
  /// Forwarded to FleetServerOptions::on_node_add (fires on every
  /// successful kNodeAdd with the engine index, name and sensor count).
  std::function<void(std::size_t index, const std::string& name,
                     std::uint32_t n_sensors)>
      on_node_add;
};

/// Runs the daemon loop on the calling thread until SIGINT or SIGTERM.
/// Binds the socket (throwing TransportError if a live daemon already owns
/// it), serves, then shuts down cleanly: the listener is closed, the
/// socket file unlinked and the engine totals printed. Returns the process
/// exit code.
int run_daemon(const DaemonOptions& options);

}  // namespace csm::net
