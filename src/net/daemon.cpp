#include "net/daemon.hpp"

#include <csignal>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "core/model_pack.hpp"
#include "core/stream_engine.hpp"
#include "net/server.hpp"
#include "net/unix_socket.hpp"

namespace csm::net {

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int /*signum*/) { g_stop = 1; }

}  // namespace

int run_daemon(const DaemonOptions& options) {
  if (options.registry == nullptr) {
    throw std::invalid_argument("run_daemon: a method registry is required");
  }
  core::StreamEngine engine(options.stream);
  if (options.engine_hook) options.engine_hook(engine);
  std::optional<core::ModelPack> pack;
  if (!options.pack_path.empty()) {
    pack = core::ModelPack::open(options.pack_path);
  }

  FleetServerOptions server_options;
  server_options.server_version = options.version;
  server_options.registry = options.registry;
  server_options.pack = pack.has_value() ? &*pack : nullptr;
  server_options.on_node_add = options.on_node_add;
  FleetServer server(listen_unix(options.socket_path), engine,
                     std::move(server_options));

  g_stop = 0;
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_int {}, old_term {};
  ::sigaction(SIGINT, &action, &old_int);
  ::sigaction(SIGTERM, &action, &old_term);

  std::printf("csmd %s: listening on unix:%s (wl=%zu, ws=%zu, history=%zu, "
              "max_pending=%zu%s%s)\n",
              options.version.c_str(), options.socket_path.c_str(),
              options.stream.window_length, options.stream.window_step,
              options.stream.history_length, options.stream.max_pending,
              pack.has_value() ? ", pack=" : "", options.pack_path.c_str());
  std::fflush(stdout);

  // A signal interrupts the poll with EINTR, so shutdown latency is the
  // poll granularity at worst.
  while (g_stop == 0) {
    server.poll_once(200);
  }

  ::sigaction(SIGINT, &old_int, nullptr);
  ::sigaction(SIGTERM, &old_term, nullptr);

  const core::EngineStats stats = engine.stats();
  std::printf("csmd: shutting down — %llu frames handled, %llu samples "
              "ingested, %llu signatures emitted, %llu dropped across %llu "
              "live nodes\n",
              static_cast<unsigned long long>(server.frames_handled()),
              static_cast<unsigned long long>(stats.samples),
              static_cast<unsigned long long>(stats.signatures),
              static_cast<unsigned long long>(stats.dropped),
              static_cast<unsigned long long>(stats.nodes));
  return 0;
}

}  // namespace csm::net
