#include "net/unix_socket.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>
#include <vector>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // macOS: SO_NOSIGPIPE is set per socket instead.
#endif

namespace csm::net {

namespace {

std::string errno_text(int err) {
  return std::error_code(err, std::generic_category()).message();
}

[[noreturn]] void throw_errno(const std::string& what, int err) {
  throw TransportError(what + ": " + errno_text(err));
}

void set_common_flags(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  ::fcntl(fd, F_SETFD, ::fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
#ifdef SO_NOSIGPIPE
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#endif
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw TransportError("unix socket path \"" + path +
                         "\" is empty or longer than sockaddr_un allows (" +
                         std::to_string(sizeof(addr.sun_path) - 1) +
                         " bytes)");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

class UnixConnection final : public Connection {
 public:
  explicit UnixConnection(int fd) : fd_(fd) { set_common_flags(fd_); }

  ~UnixConnection() override { close(); }

  std::size_t read_some(std::span<std::uint8_t> out) override {
    if (fd_ < 0 || out.empty()) return 0;
    const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) {  // Orderly peer shutdown.
      open_ = false;
      return 0;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    if (errno == ECONNRESET) {
      open_ = false;
      return 0;
    }
    throw_errno("recv on " + peer_name() + " failed", errno);
  }

  std::size_t write_some(std::span<const std::uint8_t> data) override {
    if (fd_ < 0 || !open_ || data.empty()) return 0;
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    if (errno == EPIPE || errno == ECONNRESET) {
      // Routine disconnect: surface as a closed connection, not a throw.
      open_ = false;
      return 0;
    }
    throw_errno("send on " + peer_name() + " failed", errno);
  }

  bool is_open() const noexcept override { return fd_ >= 0 && open_; }

  void close() noexcept override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    open_ = false;
  }

  bool wait_readable(int timeout_ms) override {
    return wait_for(POLLIN, timeout_ms);
  }

  bool wait_writable(int timeout_ms) override {
    return wait_for(POLLOUT, timeout_ms);
  }

  int native_handle() const noexcept override { return fd_; }

  std::string peer_name() const override {
    return "unix:fd=" + std::to_string(fd_);
  }

 private:
  bool wait_for(short events, int timeout_ms) {
    if (fd_ < 0) return true;  // A closed fd "progresses" immediately.
    pollfd p{fd_, events, 0};
    const int n = ::poll(&p, 1, timeout_ms);
    if (n < 0 && errno != EINTR) {
      throw_errno("poll on " + peer_name() + " failed", errno);
    }
    return n > 0;
  }

  int fd_;
  bool open_ = true;
};

class UnixListener final : public Listener {
 public:
  explicit UnixListener(std::string path) : path_(std::move(path)) {
    const sockaddr_un addr = make_address(path_);
    remove_stale_socket(addr);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket(AF_UNIX) failed", errno);
    set_common_flags(fd_);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw_errno("bind to " + path_ + " failed", err);
    }
    if (::listen(fd_, 64) != 0) {
      const int err = errno;
      close();
      throw_errno("listen on " + path_ + " failed", err);
    }
  }

  ~UnixListener() override { close(); }

  std::unique_ptr<Connection> accept() override {
    if (fd_ < 0) return nullptr;
    const int conn_fd = ::accept(fd_, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        return nullptr;
      }
      throw_errno("accept on " + path_ + " failed", errno);
    }
    return std::make_unique<UnixConnection>(conn_fd);
  }

  bool wait(std::span<Connection* const> conns, int timeout_ms) override {
    std::vector<pollfd> fds;
    fds.reserve(conns.size() + 1);
    if (fd_ >= 0) fds.push_back({fd_, POLLIN, 0});
    for (Connection* c : conns) {
      const int fd = c->native_handle();
      if (fd >= 0) fds.push_back({fd, POLLIN, 0});
    }
    if (fds.empty()) return false;
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) {
      throw_errno("poll on " + path_ + " failed", errno);
    }
    return n > 0;
  }

  void close() noexcept override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
      ::unlink(path_.c_str());
    }
  }

  std::string address() const override { return "unix:" + path_; }

 private:
  /// A socket file with nothing listening behind it (a crashed daemon's
  /// leftover) is unlinked; a live one is an error, not a takeover.
  void remove_stale_socket(const sockaddr_un& addr) {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe < 0) throw_errno("socket(AF_UNIX) failed", errno);
    const int rc = ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr));
    ::close(probe);
    if (rc == 0) {
      throw TransportError("a daemon is already listening on " + path_);
    }
    ::unlink(path_.c_str());  // ENOENT (no stale file) is fine.
  }

  std::string path_;
  int fd_ = -1;
};

}  // namespace

std::unique_ptr<Listener> listen_unix(const std::string& path) {
  return std::make_unique<UnixListener>(path);
}

std::unique_ptr<Connection> connect_unix(const std::string& path) {
  const sockaddr_un addr = make_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX) failed", errno);
  // Connect while still blocking (a unix-socket connect either succeeds or
  // fails immediately); UnixConnection flips the fd non-blocking.
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw_errno("connect to " + path + " failed", err);
  }
  return std::make_unique<UnixConnection>(fd);
}

}  // namespace csm::net
