#include "net/frame.hpp"

#include <cstring>
#include <utility>

#include "core/model_codec.hpp"

namespace csm::net {

namespace {

using core::codec::append_u16;
using core::codec::append_u32;
using core::codec::crc32;
using core::codec::load_u16;
using core::codec::load_u32;

}  // namespace

bool is_known_frame_type(std::uint8_t type) noexcept {
  // The type space is contiguous from kSampleBatch through the most
  // recently appended type — keep this bound on the LAST enumerator.
  return type >= static_cast<std::uint8_t>(FrameType::kSampleBatch) &&
         type <= static_cast<std::uint8_t>(FrameType::kNodeStatsResponse);
}

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::kSampleBatch:
      return "sample-batch";
    case FrameType::kNodeAdd:
      return "node-add";
    case FrameType::kNodeRemove:
      return "node-remove";
    case FrameType::kDrainRequest:
      return "drain-request";
    case FrameType::kDrainResponse:
      return "drain-response";
    case FrameType::kStatsRequest:
      return "stats-request";
    case FrameType::kStatsResponse:
      return "stats-response";
    case FrameType::kOk:
      return "ok";
    case FrameType::kError:
      return "error";
    case FrameType::kNodeStatsRequest:
      return "node-stats-request";
    case FrameType::kNodeStatsResponse:
      return "node-stats-response";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (!is_known_frame_type(static_cast<std::uint8_t>(frame.type))) {
    throw std::invalid_argument("encode_frame: unknown frame type " +
                                std::to_string(static_cast<unsigned>(
                                    frame.type)));
  }
  if (frame.node.size() > kMaxNodeIdBytes) {
    throw std::invalid_argument(
        "encode_frame: node id of " + std::to_string(frame.node.size()) +
        " bytes exceeds the cap of " + std::to_string(kMaxNodeIdBytes));
  }
  if (frame.payload.size() > kMaxFramePayload) {
    throw std::invalid_argument(
        "encode_frame: payload of " + std::to_string(frame.payload.size()) +
        " bytes exceeds the cap of " + std::to_string(kMaxFramePayload));
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + frame.node.size() + frame.payload.size() +
              kFrameTrailerSize);
  // Element-wise instead of a range insert: GCC 12 misdiagnoses inserting
  // a constexpr array as a stringop-overflow under -Werror.
  for (std::uint8_t b : kFrameMagic) out.push_back(b);
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  append_u16(out, static_cast<std::uint16_t>(frame.node.size()));
  append_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.node.begin(), frame.node.end());
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  append_u32(out, crc32(out));
  return out;
}

void FrameWriter::write(const Frame& frame) {
  const std::vector<std::uint8_t> encoded = encode_frame(frame);
  buf_.insert(buf_.end(), encoded.begin(), encoded.end());
}

std::vector<std::uint8_t> FrameWriter::take() noexcept {
  return std::exchange(buf_, {});
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  // Compact the consumed prefix before growing: the buffer then never
  // holds more than one partial frame plus the new chunk.
  if (head_ > 0 && head_ == buf_.size()) {
    buf_.clear();
    head_ = 0;
  } else if (head_ > kFrameHeaderSize + kMaxNodeIdBytes) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void FrameReader::fail(const std::string& field, std::uint64_t rel_offset,
                       const std::string& detail) const {
  throw FrameError("CSMF frame: bad " + field + " at stream offset " +
                   std::to_string(stream_offset_ + rel_offset) + ": " +
                   detail);
}

std::optional<Frame> FrameReader::next() {
  const std::uint8_t* p = buf_.data() + head_;
  const std::uint64_t have = buffered();

  // Validate each header field as soon as its bytes are present: a corrupt
  // magic or a hostile length fails now, not after the peer streams the
  // rest of a frame that will never be accepted.
  const std::uint64_t magic_have =
      have < sizeof(kFrameMagic) ? have : sizeof(kFrameMagic);
  for (std::uint64_t i = 0; i < magic_have; ++i) {
    if (p[i] != kFrameMagic[i]) {
      fail("magic", i,
           "expected \"CSMF\", got byte 0x" +
               std::to_string(static_cast<unsigned>(p[i])));
    }
  }
  if (have > 4 && p[4] != kFrameVersion) {
    fail("version", 4,
         "expected " + std::to_string(static_cast<unsigned>(kFrameVersion)) +
             ", got " + std::to_string(static_cast<unsigned>(p[4])));
  }
  if (have > 5 && !is_known_frame_type(p[5])) {
    fail("type", 5,
         "unknown frame type " + std::to_string(static_cast<unsigned>(p[5])));
  }
  std::uint64_t id_len = 0;
  if (have >= 8) {
    id_len = load_u16(p + 6);
    if (id_len > kMaxNodeIdBytes) {
      fail("id_len", 6,
           std::to_string(id_len) + " exceeds the cap of " +
               std::to_string(kMaxNodeIdBytes));
    }
  }
  std::uint64_t payload_len = 0;
  if (have >= kFrameHeaderSize) {
    payload_len = load_u32(p + 8);
    if (payload_len > max_payload_) {
      fail("payload_len", 8,
           std::to_string(payload_len) + " exceeds the cap of " +
               std::to_string(max_payload_));
    }
  }
  if (have < kFrameHeaderSize) return std::nullopt;

  // Both lengths are cap-checked, so total fits comfortably in 64 bits.
  const std::uint64_t total =
      kFrameHeaderSize + id_len + payload_len + kFrameTrailerSize;
  if (have < total) return std::nullopt;

  const std::uint64_t crc_offset = total - kFrameTrailerSize;
  const std::uint32_t stored = load_u32(p + crc_offset);
  const std::uint32_t computed =
      core::codec::crc32({p, static_cast<std::size_t>(crc_offset)});
  if (stored != computed) {
    fail("crc", crc_offset,
         "stored 0x" + std::to_string(stored) + " != computed 0x" +
             std::to_string(computed));
  }

  Frame frame;
  frame.type = static_cast<FrameType>(p[5]);
  frame.node.assign(reinterpret_cast<const char*>(p + kFrameHeaderSize),
                    static_cast<std::size_t>(id_len));
  const std::uint8_t* payload = p + kFrameHeaderSize + id_len;
  frame.payload.assign(payload, payload + payload_len);
  head_ += static_cast<std::size_t>(total);
  stream_offset_ += total;
  return frame;
}

}  // namespace csm::net
