// FleetServer: a core::StreamEngine behind a connection loop.
//
// This is the heart of csmd — the in-band ODA deployment of Fig. 1 turned
// into a long-running service. Collector clients connect over any
// net/transport.hpp Listener (unix socket in production, loopback in tests
// and benches), push CSMF frames at it, and the server drives one shared
// StreamEngine: sample batches are ingested into the addressed node, nodes
// are added and removed live, drain requests hand back a node's queued
// signature vectors, and stats requests scrape the fleet-wide counters
// (including the per-node ingest-latency histogram, merged).
//
// Threading: the server itself is single-threaded — one run() loop owns
// every connection, with per-connection read buffers reassembling frames
// across arbitrary read boundaries. Clients are concurrent with each other
// only through the transport; the engine additionally tolerates external
// threads (the loopback soak test drains from one while the server
// ingests). stop() is safe from a signal handler or another thread.
//
// Per-node backpressure is the engine's StreamOptions::max_pending policy:
// a slow draining client costs the node its OLDEST queued signatures (and
// bumps its drop counter), never unbounded daemon memory.
//
// Error taxonomy per connection: a malformed frame (FrameError — the byte
// stream is desynchronised) gets one final kError frame and the connection
// is closed; a semantic error in a well-formed frame (unknown node, bad
// payload, codec failure) gets a kError answer and the connection lives
// on. Sample batches are NOT acked on success — pushes stay one-way for
// throughput — so a pusher that wants a sync point sends a drain or stats
// request.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stream_engine.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"

namespace csm::core {
class MethodRegistry;
class ModelPack;
}  // namespace csm::core

namespace csm::net {

struct FleetServerOptions {
  /// Build identity reported in kStatsResponse (e.g. the git sha csmd was
  /// built from).
  std::string server_version;
  /// Decodes inline CSMB records in kNodeAdd frames. Required for node
  /// adds; a server without one rejects them.
  const core::MethodRegistry* registry = nullptr;
  /// Resolves kNodeAdd-by-pack-id requests. Optional.
  const core::ModelPack* pack = nullptr;
  /// run()'s wait granularity: how stale a stop() flag can go unnoticed.
  int poll_timeout_ms = 100;
  /// Per-frame payload cap handed to each connection's FrameReader.
  std::size_t max_frame_payload = kMaxFramePayload;
  /// Called after every successful kNodeAdd with the new node's engine
  /// index, name and sensor count — how a capture sink (replay::
  /// EngineRecorder) learns the node table without the net layer depending
  /// on it. Runs on the server thread; must not call back into the server.
  std::function<void(std::size_t index, const std::string& name,
                     std::uint32_t n_sensors)>
      on_node_add;
};

class FleetServer {
 public:
  /// The engine is borrowed, not owned: the caller configures it (and its
  /// max_pending backpressure) and may keep draining it after the server
  /// stops.
  FleetServer(std::unique_ptr<Listener> listener, core::StreamEngine& engine,
              FleetServerOptions options);
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Serves until stop(). Connections and frames are processed inline on
  /// the calling thread.
  void run();

  /// Requests run() to return after the current iteration. Safe from
  /// another thread and from a signal handler (only an atomic store).
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// One service iteration: waits up to timeout_ms for activity, accepts
  /// pending connections, reads/handles/answers frames, drops dead
  /// connections. Returns true if any frame was handled or connection
  /// accepted/closed — the test-facing pump.
  bool poll_once(int timeout_ms);

  /// Live connections currently held by the loop.
  std::size_t n_connections() const noexcept { return clients_.size(); }

  /// Frames handled over the server's lifetime (any type, any client).
  std::uint64_t frames_handled() const noexcept { return frames_; }

  /// Engine index for a node name registered through this server (nodes
  /// added via kNodeAdd). Throws std::invalid_argument for unknown names.
  std::size_t node_index(const std::string& name) const;

 private:
  struct Client {
    std::unique_ptr<Connection> conn;
    FrameReader reader;
    std::vector<std::uint8_t> out;  ///< Unflushed response bytes.
    std::size_t out_head = 0;       ///< Flushed prefix of out.
    bool closing = false;           ///< Close once out is flushed.

    Client(std::unique_ptr<Connection> c, std::size_t max_payload)
        : conn(std::move(c)), reader(max_payload) {}
  };

  void accept_pending();
  /// Reads everything a client has, handles complete frames, flushes.
  bool service(Client& client);
  void handle_frame(Client& client, Frame&& frame);
  void handle_node_add(Client& client, const Frame& frame);
  void reply(Client& client, FrameType type, const std::string& node,
             std::vector<std::uint8_t> payload);
  void flush(Client& client);
  /// Engine index for `node`, throwing std::invalid_argument (a semantic,
  /// connection-preserving error) when the name is unknown or removed.
  std::size_t lookup(const std::string& node) const;

  std::unique_ptr<Listener> listener_;
  core::StreamEngine& engine_;
  FleetServerOptions options_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unordered_map<std::string, std::size_t> nodes_;
  std::atomic<bool> stop_{false};
  std::uint64_t frames_ = 0;
};

}  // namespace csm::net
