#include "net/transport.hpp"

#include <vector>

#include "net/message.hpp"

namespace csm::net {

void write_all(Connection& conn, std::span<const std::uint8_t> bytes) {
  while (!bytes.empty()) {
    if (!conn.is_open()) {
      throw TransportError("connection to " + conn.peer_name() +
                           " closed with " + std::to_string(bytes.size()) +
                           " bytes unsent");
    }
    const std::size_t n = conn.write_some(bytes);
    if (n == 0) {
      conn.wait_writable(-1);
      continue;
    }
    bytes = bytes.subspan(n);
  }
}

void write_frame(Connection& conn, const Frame& frame) {
  write_all(conn, encode_frame(frame));
}

std::optional<Frame> read_frame(Connection& conn, FrameReader& reader,
                                int timeout_ms) {
  std::uint8_t chunk[4096];
  for (;;) {
    if (std::optional<Frame> frame = reader.next()) return frame;
    const std::size_t n = conn.read_some(chunk);
    if (n > 0) {
      reader.feed({chunk, n});
      continue;
    }
    if (!conn.is_open()) {
      if (reader.at_frame_boundary()) return std::nullopt;
      throw TransportError(
          "connection to " + conn.peer_name() + " closed mid-frame (" +
          std::to_string(reader.buffered()) + " bytes of a partial frame)");
    }
    if (!conn.wait_readable(timeout_ms)) {
      throw TransportError("timed out waiting for a frame from " +
                           conn.peer_name());
    }
  }
}

Frame call(Connection& conn, FrameReader& reader, const Frame& request,
           int timeout_ms) {
  write_frame(conn, request);
  std::optional<Frame> response = read_frame(conn, reader, timeout_ms);
  if (!response.has_value()) {
    throw TransportError("daemon at " + conn.peer_name() +
                         " hung up instead of answering a " +
                         frame_type_name(request.type) + " request");
  }
  if (response->type == FrameType::kError) {
    throw TransportError("daemon error: " +
                         decode_error_text(response->payload));
  }
  return *std::move(response);
}

}  // namespace csm::net
