// CSMF: the length-prefixed, CRC-checksummed binary frame protocol that
// carries fleet-monitoring traffic between csmcli/collector clients and the
// csmd daemon (docs/PROTOCOL.md is the field-by-field specification).
//
// One frame is one self-delimiting message:
//
//   offset  size        field
//        0     4        magic "CSMF"
//        4     1        protocol version (kFrameVersion)
//        5     1        frame type (FrameType)
//        6     2        u16 node-id length            (little-endian)
//        8     4        u32 payload length            (little-endian)
//       12    id_len    node id (UTF-8, no NUL)
//   12+id    pay_len    payload (see net/message.hpp for the schemas)
//     ...     4        u32 CRC32 over every preceding byte of the frame
//
// FrameWriter renders frames into a byte buffer; FrameReader incrementally
// reassembles them from arbitrary read boundaries — a transport may deliver
// half a header, three frames at once, or one byte at a time, and the
// reader produces the identical frame sequence regardless. Corrupt input
// (bad magic/version/type, an id or payload length beyond its cap, a CRC
// mismatch) throws FrameError naming the offending field and the absolute
// stream offset; after a FrameError the byte stream is desynchronised and
// the connection must be dropped. All length arithmetic is 64-bit, so an
// untrusted 32-bit length cannot wrap a size computation (the PR 7 house
// rule), and nothing is allocated from a length that has not been checked
// against its cap first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace csm::net {

/// Frame framing constants.
inline constexpr std::uint8_t kFrameMagic[4] = {'C', 'S', 'M', 'F'};
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 12;
inline constexpr std::size_t kFrameTrailerSize = 4;  ///< Trailing CRC32.
/// Cap on the node-id field: ids are pack-id-sized names, never bulk data.
inline constexpr std::size_t kMaxNodeIdBytes = 1024;
/// Default cap on one frame's payload (FrameReader can lower it). A sample
/// batch of 64 MiB is ~8M doubles — far beyond any sane collection round —
/// so anything larger is treated as corruption, not load.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;

/// Wire message kinds. Values are part of the protocol; add new ones at
/// the end and never renumber.
enum class FrameType : std::uint8_t {
  kSampleBatch = 1,    ///< Client -> daemon: columns for one node.
  kNodeAdd = 2,        ///< Client -> daemon: register a node (model inline
                       ///  as a CSMB record, or by pack id).
  kNodeRemove = 3,     ///< Client -> daemon: retire a node.
  kDrainRequest = 4,   ///< Client -> daemon: take a node's queued vectors.
  kDrainResponse = 5,  ///< Daemon -> client: the drained vectors.
  kStatsRequest = 6,   ///< Client -> daemon: scrape EngineStats.
  kStatsResponse = 7,  ///< Daemon -> client: the stats snapshot.
  kOk = 8,             ///< Daemon -> client: request succeeded (+ index).
  kError = 9,          ///< Daemon -> client: request failed (UTF-8 text).
  kNodeStatsRequest = 10,   ///< Client -> daemon: scrape per-node stats.
  kNodeStatsResponse = 11,  ///< Daemon -> client: one row per live node.
};

/// True for a byte value that is a defined FrameType.
bool is_known_frame_type(std::uint8_t type) noexcept;

/// Human-readable FrameType name (for logs and error text).
const char* frame_type_name(FrameType type) noexcept;

/// One decoded frame. `node` addresses a fleet node by name where the type
/// needs one (sample batches, node management, drains) and is empty
/// otherwise.
struct Frame {
  FrameType type = FrameType::kOk;
  std::string node;
  std::vector<std::uint8_t> payload;

  bool operator==(const Frame&) const = default;
};

/// Framing/corruption error: the message names the offending field and the
/// absolute stream offset of the defect.
class FrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Encodes one frame (header, id, payload, trailing CRC). Throws
/// std::invalid_argument when the node id or payload exceeds its cap —
/// writers validate at the edge so a reader never sees our own oversized
/// frames.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Accumulates encoded frames into one contiguous buffer, so a transport
/// write can flush several messages per syscall.
class FrameWriter {
 public:
  /// Appends `frame` to the buffer. Same validation as encode_frame.
  void write(const Frame& frame);

  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }
  bool empty() const noexcept { return buf_.empty(); }
  void clear() noexcept { buf_.clear(); }
  /// Moves the accumulated bytes out, leaving the writer empty.
  std::vector<std::uint8_t> take() noexcept;

 private:
  std::vector<std::uint8_t> buf_;
};

/// Incremental frame reassembler. feed() raw transport bytes in whatever
/// chunks arrive; next() yields completed frames in order. Header fields
/// are validated as soon as their bytes are present, so a poisoned length
/// fails fast instead of waiting for gigabytes that never come.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes from the transport.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete frame, or std::nullopt when more bytes are
  /// needed. Throws FrameError on corrupt input; the reader (and the
  /// stream it was fed from) is unusable afterwards.
  std::optional<Frame> next();

  /// Bytes fed but not yet consumed as complete frames.
  std::size_t buffered() const noexcept { return buf_.size() - head_; }

  /// True when no partial frame is pending — a transport EOF here is a
  /// clean close, anywhere else a truncated frame.
  bool at_frame_boundary() const noexcept { return buffered() == 0; }

  /// Absolute offset of the next unconsumed byte since the first feed()
  /// (i.e. total bytes consumed as complete frames).
  std::uint64_t stream_offset() const noexcept { return stream_offset_; }

 private:
  [[noreturn]] void fail(const std::string& field, std::uint64_t rel_offset,
                         const std::string& detail) const;

  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  ///< Consumed prefix of buf_ (compacted lazily).
  std::uint64_t stream_offset_ = 0;
};

}  // namespace csm::net
