#include "replay/engine_recorder.hpp"

#include <string>
#include <utility>

namespace csm::replay {

EngineRecorder::EngineRecorder(std::filesystem::path file)
    : recorder_(std::move(file)) {}

void EngineRecorder::on_node_add(std::size_t engine_index,
                                 std::string_view id,
                                 std::uint32_t n_sensors) {
  // Declare the node first: add_node validates the id and sensor count and
  // may throw, in which case the map must stay untouched.
  const std::uint32_t table_index = recorder_.add_node(id, n_sensors);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (map_.size() <= engine_index) map_.resize(engine_index + 1, kUnmapped);
  if (map_[engine_index] != kUnmapped) {
    throw RecordingError("Recording: engine index " +
                         std::to_string(engine_index) +
                         " registered twice (\"" + std::string(id) + "\")");
  }
  map_[engine_index] = table_index;
}

void EngineRecorder::tap(std::size_t engine_index,
                         const common::Matrix& columns) {
  std::uint32_t table_index = kUnmapped;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (engine_index < map_.size()) table_index = map_[engine_index];
  }
  if (table_index == kUnmapped) {
    throw RecordingError("Recording: batch for unregistered engine index " +
                         std::to_string(engine_index) +
                         " (node added without on_node_add?)");
  }
  recorder_.record(table_index, columns);
}

void EngineRecorder::finish() { recorder_.finish(); }

}  // namespace csm::replay
