#include "replay/recording.hpp"

#include <bit>
#include <cstring>
#include <limits>
#include <utility>

#include "core/model_codec.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <iterator>
#endif

namespace csm::replay {
namespace {

using core::codec::append_u16;
using core::codec::append_u32;
using core::codec::append_u64;
using core::codec::crc32;
using core::codec::load_u16;
using core::codec::load_u32;
using core::codec::load_u64;

constexpr std::size_t kHeaderCrcOffset = 32;

[[noreturn]] void fail(const std::string& what) {
  throw RecordingError("Recording: " + what);
}

std::vector<std::uint8_t> header_bytes(std::uint64_t node_count,
                                       std::uint64_t batch_count,
                                       std::uint64_t table_offset) {
  std::vector<std::uint8_t> h;
  h.reserve(kRecordingHeaderSize);
  h.insert(h.end(), std::begin(kRecordingMagic), std::end(kRecordingMagic));
  h.push_back(kRecordingVersion);
  h.insert(h.end(), 3, 0);  // Reserved.
  append_u64(h, node_count);
  append_u64(h, batch_count);
  append_u64(h, table_offset);
  append_u32(h, crc32({h.data(), kHeaderCrcOffset}));
  append_u32(h, 0);  // Reserved.
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

Recorder::Recorder(std::filesystem::path file)
    : file_(std::move(file)),
      out_(file_, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    fail("cannot open " + file_.string() + " for writing");
  }
  // Placeholder header; finish() rewrites it with the real geometry.
  const std::vector<std::uint8_t> header = header_bytes(0, 0, 0);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
}

Recorder::Recorder() {
  const std::vector<std::uint8_t> header = header_bytes(0, 0, 0);
  buffer_.write(reinterpret_cast<const char*>(header.data()),
                static_cast<std::streamsize>(header.size()));
}

void Recorder::write(std::span<const std::uint8_t> data) {
  if (!file_.empty()) {
    out_.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(data.size()));
    if (!out_) fail("write failed for " + file_.string());
  } else {
    buffer_.write(reinterpret_cast<const char*>(data.data()),
                  static_cast<std::streamsize>(data.size()));
  }
}

std::uint32_t Recorder::add_node(std::string_view id,
                                 std::uint32_t n_sensors) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) fail("add_node() after finish()");
  if (id.empty() || id.size() > kMaxNodeIdBytes) {
    fail("node id must be 1.." + std::to_string(kMaxNodeIdBytes) +
         " bytes (got " + std::to_string(id.size()) + ")");
  }
  if (n_sensors == 0) fail("node \"" + std::string(id) + "\" has 0 sensors");
  if (nodes_.size() >= std::numeric_limits<std::uint32_t>::max()) {
    fail("node table is full");
  }
  nodes_.push_back(RecordedNode{std::string(id), n_sensors});
  next_timestamp_.push_back(0);
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Recorder::record(std::uint32_t node, const common::Matrix& columns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (node >= nodes_.size()) {
    fail("batch names unknown node index " + std::to_string(node));
  }
  record_locked(node, columns, next_timestamp_[node]);
}

void Recorder::record(std::uint32_t node, const common::Matrix& columns,
                      std::uint64_t timestamp) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (node >= nodes_.size()) {
    fail("batch names unknown node index " + std::to_string(node));
  }
  record_locked(node, columns, timestamp);
}

void Recorder::record_locked(std::uint32_t node, const common::Matrix& columns,
                             std::uint64_t timestamp) {
  if (finished_) fail("record() after finish()");
  if (columns.cols() == 0) return;  // Tombstone slots record nothing.
  if (columns.rows() != nodes_[node].n_sensors) {
    fail("batch for node \"" + nodes_[node].id + "\" has " +
         std::to_string(columns.rows()) + " sensors, expected " +
         std::to_string(nodes_[node].n_sensors));
  }
  if (columns.cols() > std::numeric_limits<std::uint32_t>::max()) {
    fail("batch column count exceeds u32");
  }
  std::vector<std::uint8_t> bytes;
  const std::uint64_t body_len =
      kBatchBodyPrefix + 8ull * columns.rows() * columns.cols();
  bytes.reserve(8 + static_cast<std::size_t>(body_len));
  append_u64(bytes, body_len);
  append_u32(bytes, node);
  append_u64(bytes, timestamp);
  append_u32(bytes, static_cast<std::uint32_t>(columns.cols()));
  // Column-major: one monitoring time-stamp after another, matching both
  // the ingestion order and the kSampleBatch wire layout.
  for (std::size_t c = 0; c < columns.cols(); ++c) {
    for (std::size_t r = 0; r < columns.rows(); ++r) {
      append_u64(bytes, std::bit_cast<std::uint64_t>(columns(r, c)));
    }
  }
  write(bytes);
  payload_crc_ = crc32(bytes, payload_crc_);
  payload_size_ += bytes.size();
  next_timestamp_[node] = timestamp + columns.cols();
  ++batch_count_;
}

void Recorder::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) fail("finish() called twice");
  finished_ = true;

  std::vector<std::uint8_t> table;
  for (const RecordedNode& n : nodes_) {
    append_u16(table, static_cast<std::uint16_t>(n.id.size()));
    table.insert(table.end(), n.id.begin(), n.id.end());
    append_u32(table, n.n_sensors);
  }
  write(table);
  payload_crc_ = crc32(table, payload_crc_);
  std::vector<std::uint8_t> trailer;
  append_u32(trailer, payload_crc_);
  write(trailer);

  const std::uint64_t table_offset = kRecordingHeaderSize + payload_size_;
  const std::vector<std::uint8_t> header =
      header_bytes(nodes_.size(), batch_count_, table_offset);
  if (!file_.empty()) {
    out_.seekp(0);
    out_.write(reinterpret_cast<const char*>(header.data()),
               static_cast<std::streamsize>(header.size()));
    out_.flush();
    if (!out_) fail("write failed for " + file_.string());
    out_.close();
  } else {
    buffer_.seekp(0);
    buffer_.write(reinterpret_cast<const char*>(header.data()),
                  static_cast<std::streamsize>(header.size()));
  }
}

std::size_t Recorder::n_nodes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return nodes_.size();
}

std::size_t Recorder::batch_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::size_t>(batch_count_);
}

std::vector<std::uint8_t> Recorder::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!file_.empty()) {
    throw std::logic_error("Recorder::bytes: recorder is file-backed");
  }
  if (!finished_) {
    throw std::logic_error("Recorder::bytes: finish() the recording first");
  }
  const std::string s = buffer_.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// ---------------------------------------------------------------------------
// ReplayReader
// ---------------------------------------------------------------------------

/// Mapped (or owned) file bytes plus the decoded header geometry and node
/// table. Mirrors core::ModelPack's Mapping.
struct ReplayReader::Mapping {
  std::filesystem::path file;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;

  std::uint64_t batch_count = 0;
  std::uint64_t table_offset = 0;
  std::uint32_t trailing_crc = 0;
  std::vector<RecordedNode> nodes;

  /// Backing storage for open_bytes() (and, on platforms without mmap, the
  /// whole-file read fallback). Empty when the recording is mmap-ed.
  std::vector<std::uint8_t> bytes;

#if !defined(_WIN32)
  void* map_base = nullptr;
  std::size_t map_size = 0;

  ~Mapping() {
    if (map_base != nullptr) {
      ::munmap(map_base, map_size);
    }
  }
#endif

  /// Header + node-table validation shared by open() and open_bytes():
  /// data, size and file must already be set.
  void validate();
};

void ReplayReader::Mapping::validate() {
  if (size < kRecordingHeaderSize + 4 ||
      std::memcmp(data, kRecordingMagic, sizeof(kRecordingMagic)) != 0) {
    fail(file.string() + " is not a CSMR recording (bad magic)");
  }
  const std::uint8_t version = data[4];
  if (version != kRecordingVersion) {
    fail("unsupported recording version " + std::to_string(version) +
         " (expected " + std::to_string(kRecordingVersion) + ")");
  }
  // Reserved bytes must be zero: the strict form keeps every accepted file
  // canonical (the fuzz harness pins re-encode identity on it).
  if (data[5] != 0 || data[6] != 0 || data[7] != 0 ||
      load_u32(data + kHeaderCrcOffset + 4) != 0) {
    fail("nonzero reserved header bytes in " + file.string());
  }
  const std::uint32_t stored_crc = load_u32(data + kHeaderCrcOffset);
  const std::uint32_t computed_crc = crc32({data, kHeaderCrcOffset});
  if (stored_crc != computed_crc) {
    fail("header CRC mismatch in " + file.string());
  }
  const std::uint64_t node_count = load_u64(data + 8);
  batch_count = load_u64(data + 16);
  table_offset = load_u64(data + 24);
  if (table_offset < kRecordingHeaderSize || table_offset > size - 4) {
    fail("node table range is outside the recording");
  }
  if (batch_count == 0 && table_offset != kRecordingHeaderSize) {
    fail("empty batch stream leaves slack before the node table");
  }
  // Each table entry costs at least 2 (id_len) + 1 (id byte) + 4
  // (n_sensors) = 7 bytes, so the count is bounded by the bytes present
  // before anything is allocated.
  const std::uint64_t table_len = (size - 4) - table_offset;
  if (node_count > table_len / 7) {
    fail("node count " + std::to_string(node_count) +
         " is impossible for a " + std::to_string(table_len) +
         "-byte node table");
  }
  std::uint64_t cursor = table_offset;
  nodes.reserve(static_cast<std::size_t>(node_count));
  for (std::uint64_t i = 0; i < node_count; ++i) {
    if (cursor + 2 > size - 4) {
      fail("truncated node table entry " + std::to_string(i));
    }
    const std::uint16_t id_len = load_u16(data + cursor);
    cursor += 2;
    if (id_len == 0 || id_len > kMaxNodeIdBytes) {
      fail("node " + std::to_string(i) + " has a bad id length " +
           std::to_string(id_len));
    }
    if (cursor + id_len + 4 > size - 4) {
      fail("truncated node table entry " + std::to_string(i));
    }
    RecordedNode node;
    node.id.assign(reinterpret_cast<const char*>(data + cursor), id_len);
    cursor += id_len;
    node.n_sensors = load_u32(data + cursor);
    cursor += 4;
    if (node.n_sensors == 0) {
      fail("node \"" + node.id + "\" declares 0 sensors");
    }
    nodes.push_back(std::move(node));
  }
  if (cursor != size - 4) {
    fail("trailing bytes after the node table");
  }
  trailing_crc = load_u32(data + size - 4);
  if (batch_count == 0) {
    // No batch iteration will ever reach the "last batch" CRC check, so an
    // empty recording's payload (just the table) is verified here — still
    // O(table), not O(file).
    const std::uint32_t payload = crc32(
        {data + kRecordingHeaderSize, (size - 4) - kRecordingHeaderSize});
    if (payload != trailing_crc) {
      fail("payload CRC mismatch in " + file.string());
    }
  }
}

ReplayReader ReplayReader::open(const std::filesystem::path& file) {
  auto mapping = std::make_shared<Mapping>();
  mapping->file = file;

#if !defined(_WIN32)
  const int fd = ::open(file.c_str(), O_RDONLY);
  if (fd < 0) {
    fail("cannot open " + file.string());
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("cannot stat " + file.string());
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* base =
      size == 0 ? nullptr : ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (size != 0 && base == MAP_FAILED) {
    fail("mmap failed for " + file.string());
  }
  mapping->map_base = base;
  mapping->map_size = size;
  mapping->data = static_cast<const std::uint8_t*>(base);
  mapping->size = size;
#else
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    fail("cannot open " + file.string());
  }
  mapping->bytes.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  mapping->data = mapping->bytes.data();
  mapping->size = mapping->bytes.size();
#endif

  mapping->validate();
  return ReplayReader(std::move(mapping));
}

ReplayReader ReplayReader::open_bytes(std::vector<std::uint8_t> bytes,
                                      std::filesystem::path name) {
  auto mapping = std::make_shared<Mapping>();
  mapping->file = std::move(name);
  mapping->bytes = std::move(bytes);
  mapping->data = mapping->bytes.data();
  mapping->size = mapping->bytes.size();
  mapping->validate();
  return ReplayReader(std::move(mapping));
}

ReplayReader::ReplayReader(std::shared_ptr<Mapping> mapping)
    : mapping_(std::move(mapping)), cursor_(kRecordingHeaderSize) {}

std::size_t ReplayReader::n_nodes() const noexcept {
  return mapping_->nodes.size();
}

const RecordedNode& ReplayReader::node(std::size_t i) const {
  if (i >= mapping_->nodes.size()) {
    throw std::out_of_range("ReplayReader: node index " + std::to_string(i) +
                            " out of range");
  }
  return mapping_->nodes[i];
}

std::uint64_t ReplayReader::batch_count() const noexcept {
  return mapping_->batch_count;
}

const std::filesystem::path& ReplayReader::path() const noexcept {
  return mapping_->file;
}

void ReplayReader::rewind() noexcept {
  cursor_ = kRecordingHeaderSize;
  batches_read_ = 0;
  running_crc_ = 0;
}

std::optional<RecordedBatch> ReplayReader::next() {
  const Mapping& m = *mapping_;
  if (batches_read_ >= m.batch_count) return std::nullopt;
  const std::string where = " (batch " + std::to_string(batches_read_) +
                            " at offset " + std::to_string(cursor_) + ")";
  if (cursor_ + 8 > m.table_offset) {
    fail("truncated batch stream" + where);
  }
  const std::uint64_t body_len = load_u64(m.data + cursor_);
  if (body_len < kBatchBodyPrefix ||
      body_len > m.table_offset - cursor_ - 8) {
    fail("bad batch body length " + std::to_string(body_len) + where);
  }
  const std::uint8_t* body = m.data + cursor_ + 8;
  const std::uint32_t node = load_u32(body);
  const std::uint64_t timestamp = load_u64(body + 4);
  const std::uint32_t n_cols = load_u32(body + 12);
  if (node >= m.nodes.size()) {
    fail("batch names unknown node index " + std::to_string(node) + where);
  }
  if (n_cols == 0) {
    fail("empty batch" + where);  // The Recorder never writes one.
  }
  const std::uint64_t data_len = body_len - kBatchBodyPrefix;
  const std::uint64_t n_values = data_len / 8;
  // Division-form geometry check: immune to n_sensors * n_cols overflowing
  // u64 on a hostile header.
  if (data_len % 8 != 0 || n_values % n_cols != 0 ||
      n_values / n_cols != m.nodes[node].n_sensors) {
    fail("batch geometry does not match node \"" + m.nodes[node].id +
         "\" (" + std::to_string(m.nodes[node].n_sensors) + " sensors)" +
         where);
  }
  RecordedBatch batch;
  batch.node = node;
  batch.timestamp = timestamp;
  const std::size_t rows = m.nodes[node].n_sensors;
  batch.columns = common::Matrix(rows, n_cols);
  const std::uint8_t* values = body + kBatchBodyPrefix;
  for (std::size_t c = 0; c < n_cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      batch.columns(r, c) =
          std::bit_cast<double>(load_u64(values + (c * rows + r) * 8));
    }
  }
  running_crc_ = crc32({m.data + cursor_, 8 + static_cast<std::size_t>(
                                                  body_len)},
                       running_crc_);
  cursor_ += 8 + body_len;
  ++batches_read_;
  if (batches_read_ == m.batch_count) {
    if (cursor_ != m.table_offset) {
      fail("batch stream leaves slack before the node table");
    }
    // Fold the node table in and verify the trailing CRC — the whole
    // payload has now been checksummed exactly once, incrementally.
    running_crc_ = crc32({m.data + m.table_offset,
                          (m.size - 4) - static_cast<std::size_t>(
                                             m.table_offset)},
                         running_crc_);
    if (running_crc_ != m.trailing_crc) {
      fail("payload CRC mismatch in " + m.file.string());
    }
  }
  return batch;
}

void ReplayReader::verify() {
  rewind();
  while (next()) {
  }
  rewind();
}

}  // namespace csm::replay
