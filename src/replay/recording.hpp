// CSMR sensor recordings: capture a live ingest run, replay it bit-exactly.
//
// A recording is the ingest-side twin of core::ModelPack's model store: one
// file holding every sample batch a StreamEngine (or any other sample
// source) consumed, in per-node order, so the run can be re-driven through
// `csmcli replay` and produce byte-identical signatures. The layout follows
// the house conventions (LE integers, 64-bit length math, header CRC for
// O(1) open, trailing CRC over the payload):
//
//   offset  field
//   0       "CSMR" magic (4 bytes)
//   4       u8 version (= 1), then 3 reserved zero bytes
//   8       u64 node_count
//   16      u64 batch_count
//   24      u64 table_offset            (batches start at 40)
//   32      u32 header CRC32 over bytes [0, 32)
//   36      u32 reserved (zero)
//   40      batch stream: batch_count x
//             { u64 body_len | u32 node_index | u64 timestamp | u32 n_cols
//               | f64 x (n_sensors * n_cols), column-major }
//             with body_len == 16 + 8 * n_sensors * n_cols
//   table_offset
//           node table: node_count x { u16 id_len | id bytes | u32 n_sensors }
//   EOF-4   u32 trailing CRC32 over bytes [40, EOF-4)
//
// The node table sits at the END so the Recorder can admit nodes while the
// stream is live (csmd --record) and still write batches straight through;
// finish() patches the header and appends the table + trailing CRC. The
// ReplayReader mmaps the file, validates the header and node table in O(1)
// (+ O(nodes)), and iterates batches incrementally — the trailing CRC is
// folded in batch by batch and verified when the last batch is consumed,
// so a multi-gigabyte recording never needs a separate verification pass.
// Timestamps are per-node cumulative sample offsets by default, which is
// what makes replays deterministic without a wall clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"

namespace csm::replay {

/// Malformed or corrupt CSMR input. Everything the ReplayReader rejects
/// throws this (the fuzz harness pins decode-or-RecordingError).
class RecordingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint8_t kRecordingMagic[4] = {'C', 'S', 'M', 'R'};
inline constexpr std::uint8_t kRecordingVersion = 1;
inline constexpr std::size_t kRecordingHeaderSize = 40;
/// Per-batch fixed prefix after the u64 body length: u32 node_index |
/// u64 timestamp | u32 n_cols.
inline constexpr std::size_t kBatchBodyPrefix = 16;
/// Node ids share the CSMF frame-id cap: ids are labels, not bulk data.
inline constexpr std::size_t kMaxNodeIdBytes = 1024;

/// One node declared in a recording.
struct RecordedNode {
  std::string id;
  std::uint32_t n_sensors = 0;
};

/// One replayed sample batch: `columns` is n_sensors x n_cols, exactly the
/// matrix the original ingest call carried.
struct RecordedBatch {
  std::uint32_t node = 0;       ///< Index into the node table.
  std::uint64_t timestamp = 0;  ///< Node-cumulative sample offset (default).
  common::Matrix columns;
};

/// Streaming CSMR writer. File-backed (the normal capture path) or
/// in-memory (fuzz round-trips, tests). Thread-safe: record() may be called
/// concurrently for different nodes — StreamEngine's ingest tap does exactly
/// that under parallel ingest — and batches are serialised through an
/// internal mutex in arrival order (per-node order is what replay needs, and
/// the tap guarantees it by calling under the node mutex).
class Recorder {
 public:
  /// File-backed recorder; truncates `file`. Throws RecordingError when the
  /// file cannot be opened.
  explicit Recorder(std::filesystem::path file);

  /// In-memory recorder: bytes() returns the finished recording.
  Recorder();

  /// Declares a node and returns its table index. Nodes may be added at any
  /// point before finish() — also between batches, matching live fleets.
  /// Throws RecordingError on an empty/oversized id.
  std::uint32_t add_node(std::string_view id, std::uint32_t n_sensors);

  /// Appends one batch for `node` with the node's cumulative sample offset
  /// as the timestamp. Empty batches (0 columns) are dropped — a tombstone
  /// slot in ingest_batch contributes nothing to a recording. Throws
  /// RecordingError on an unknown node or a sensor-count mismatch.
  void record(std::uint32_t node, const common::Matrix& columns);

  /// Same, with an explicit timestamp (the cumulative offset still
  /// advances, so later default-timestamp batches stay consistent).
  void record(std::uint32_t node, const common::Matrix& columns,
              std::uint64_t timestamp);

  /// Writes the node table and trailing CRC and patches the header. No
  /// further record()/add_node() calls are allowed. Throws RecordingError
  /// on write failure or a second call.
  void finish();

  std::size_t n_nodes() const;
  std::size_t batch_count() const;

  /// The finished recording (in-memory mode only, after finish()).
  std::vector<std::uint8_t> bytes() const;

 private:
  void write(std::span<const std::uint8_t> data);
  /// Caller holds mutex_ and has validated the node index.
  void record_locked(std::uint32_t node, const common::Matrix& columns,
                     std::uint64_t timestamp);

  mutable std::mutex mutex_;
  std::filesystem::path file_;        ///< Empty in in-memory mode.
  std::ofstream out_;                 ///< File-backed sink.
  std::ostringstream buffer_;         ///< In-memory sink.
  std::vector<RecordedNode> nodes_;
  std::vector<std::uint64_t> next_timestamp_;  ///< Per-node sample cursor.
  std::uint64_t batch_count_ = 0;
  std::uint64_t payload_size_ = 0;    ///< Bytes written after the header.
  std::uint32_t payload_crc_ = 0;     ///< Running CRC over bytes [40, ...).
  bool finished_ = false;
};

/// mmap-backed CSMR reader with O(1) open and incremental iteration.
class ReplayReader {
 public:
  /// Maps `file`, validates the header CRC and the node table. Batch
  /// geometry and the trailing payload CRC are validated lazily as next()
  /// walks the batch stream. Throws RecordingError on any defect.
  static ReplayReader open(const std::filesystem::path& file);

  /// In-memory variant over an owned byte buffer (fuzzing, tests); same
  /// validation. `name` labels error messages.
  static ReplayReader open_bytes(std::vector<std::uint8_t> bytes,
                                 std::filesystem::path name = "<bytes>");

  std::size_t n_nodes() const noexcept;
  const RecordedNode& node(std::size_t i) const;
  std::uint64_t batch_count() const noexcept;
  const std::filesystem::path& path() const noexcept;

  /// Next batch in file order, or std::nullopt after the last one. The
  /// trailing CRC is verified when the final batch is consumed; a geometry
  /// defect or CRC mismatch throws RecordingError. Not thread-safe (the
  /// cursor advances).
  std::optional<RecordedBatch> next();

  /// Resets the iteration cursor to the first batch.
  void rewind() noexcept;

  /// Convenience full-file check: rewinds, consumes every batch (which
  /// verifies geometry and the trailing CRC), rewinds again.
  void verify();

 private:
  struct Mapping;
  explicit ReplayReader(std::shared_ptr<Mapping> mapping);

  std::shared_ptr<Mapping> mapping_;
  std::uint64_t cursor_ = 0;        ///< Byte offset of the next batch.
  std::uint64_t batches_read_ = 0;
  std::uint32_t running_crc_ = 0;   ///< CRC over consumed payload bytes.
};

}  // namespace csm::replay
