#include "replay/scenario.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "core/method_registry.hpp"

#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
#include <charconv>
#define CSM_SCENARIO_FP_CHARCONV 1
#else
#include <cstdio>
#include <cstdlib>
#define CSM_SCENARIO_FP_CHARCONV 0
#endif

namespace csm::replay {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("Scenario: " + what);
}

// Counter-based hash: every random decision is a pure function of the seed
// and its coordinates, so the mutated stream is independent of batching.
// splitmix64 finalizer per fold — the same mixer common::Rng seeds with.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h += 0x9e3779b97f4a7c15ULL + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

// Uniform double in [0, 1) from a hashed coordinate tuple.
double chance(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Spec doubles are a transport format: parse and print locale-blind
// (<charconv> where available, the C-locale fallbacks elsewhere — the same
// split the model codec uses).
double parse_param(std::string_view injector, std::string_view key,
                   const std::string& text) {
  if (text.empty()) {
    fail(std::string(injector) + ": parameter \"" + std::string(key) +
         "\" needs a value");
  }
  double v = 0.0;
#if CSM_SCENARIO_FP_CHARCONV
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  const bool ok = ec == std::errc() && ptr == end;
#else
  char* end = nullptr;
  v = std::strtod(text.c_str(), &end);
  const bool ok = end == text.c_str() + text.size();
#endif
  if (!ok || !std::isfinite(v)) {
    fail(std::string(injector) + ": parameter \"" + std::string(key) +
         "\" is not a finite number (got \"" + text + "\")");
  }
  return v;
}

std::string format_param(double v) {
  std::string out(40, '\0');
#if CSM_SCENARIO_FP_CHARCONV
  const auto [ptr, ec] = std::to_chars(out.data(), out.data() + out.size(), v);
  out.resize(static_cast<std::size_t>(ptr - out.data()));
#else
  const int n = std::snprintf(out.data(), out.size(), "%.17g", v);
  out.resize(static_cast<std::size_t>(n));
#endif
  return out;
}

double probability(std::string_view injector, const core::MethodSpec& spec,
                   std::string_view key, double fallback) {
  if (!spec.has(key)) return fallback;
  const double v = parse_param(injector, key, spec.get(key));
  if (v < 0.0 || v > 1.0) {
    fail(std::string(injector) + ": parameter \"" + std::string(key) +
         "\" must be in [0, 1]");
  }
  return v;
}

}  // namespace

Scenario Scenario::parse(std::string_view spec, std::uint64_t seed) {
  if (spec.empty()) {
    fail("empty spec (omit the scenario instead)");
  }
  Scenario out;
  out.seed_ = seed;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find('+', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view chunk = spec.substr(begin, end - begin);
    begin = end + 1;
    // MethodSpec supplies the house `name:key=value,...` grammar (lowering,
    // duplicate-key rejection); the injector table interprets the values.
    const core::MethodSpec parsed = core::MethodSpec::parse(chunk);
    Injector inj;
    if (parsed.name == "dropout" || parsed.name == "nan") {
      parsed.expect_only({"p", "len"});
      inj.kind = parsed.name == "dropout" ? Injector::Kind::kDropout
                                          : Injector::Kind::kNan;
      inj.p = probability(parsed.name, parsed, "p", 0.01);
      inj.len = parsed.get_size_t("len", 25);
      if (inj.len == 0) fail(parsed.name + ": len must be >= 1");
    } else if (parsed.name == "skew") {
      parsed.expect_only({"every"});
      inj.kind = Injector::Kind::kSkew;
      inj.every = parsed.get_size_t("every", 250);
      if (inj.every < 2) fail("skew: every must be >= 2");
    } else if (parsed.name == "drift") {
      parsed.expect_only({"at", "mix", "gain"});
      inj.kind = Injector::Kind::kDrift;
      inj.at = parsed.get_size_t("at", 0);
      inj.mix = probability(parsed.name, parsed, "mix", 0.5);
      inj.gain =
          parsed.has("gain") ? parse_param("drift", "gain", parsed.get("gain"))
                             : 1.25;
      if (inj.gain <= 0.0) fail("drift: gain must be positive");
    } else if (parsed.name == "cascade") {
      parsed.expect_only({"p", "len", "span", "mag"});
      inj.kind = Injector::Kind::kCascade;
      inj.p = probability(parsed.name, parsed, "p", 0.05);
      inj.len = parsed.get_size_t("len", 50);
      inj.span = parsed.get_size_t("span", 8);
      inj.mag = parsed.has("mag")
                    ? parse_param("cascade", "mag", parsed.get("mag"))
                    : 2.0;
      if (inj.len == 0) fail("cascade: len must be >= 1");
      if (inj.span == 0) fail("cascade: span must be >= 1");
      if (inj.mag < 0.0) fail("cascade: mag must be >= 0");
    } else {
      fail("unknown injector \"" + parsed.name +
           "\" (known: dropout, nan, skew, drift, cascade)");
    }
    out.injectors_.push_back(inj);
  }
  out.state_.resize(out.injectors_.size());
  return out;
}

std::string Scenario::to_string() const {
  std::string out;
  for (const Injector& inj : injectors_) {
    if (!out.empty()) out += '+';
    switch (inj.kind) {
      case Injector::Kind::kDropout:
      case Injector::Kind::kNan:
        out += inj.kind == Injector::Kind::kDropout ? "dropout" : "nan";
        out += ":p=" + format_param(inj.p);
        out += ",len=" + std::to_string(inj.len);
        break;
      case Injector::Kind::kSkew:
        out += "skew:every=" + std::to_string(inj.every);
        break;
      case Injector::Kind::kDrift:
        out += "drift:at=" + std::to_string(inj.at);
        out += ",mix=" + format_param(inj.mix);
        out += ",gain=" + format_param(inj.gain);
        break;
      case Injector::Kind::kCascade:
        out += "cascade:p=" + format_param(inj.p);
        out += ",len=" + std::to_string(inj.len);
        out += ",span=" + std::to_string(inj.span);
        out += ",mag=" + format_param(inj.mag);
        break;
    }
  }
  return out;
}

std::string Scenario::grammar() {
  return "dropout:p=P,len=N   sensors rail at their held value for N-sample\n"
         "                    epochs, each epoch/sensor dropped with prob P\n"
         "nan:p=P,len=N       like dropout, but the sensor reports NaN\n"
         "skew:every=N        clock slip: every Nth column re-delivers the\n"
         "                    previous one\n"
         "drift:at=T,mix=M,gain=G\n"
         "                    from sample T on, each sensor is blended with a\n"
         "                    seeded partner (weight M) and scaled by G —\n"
         "                    a mid-stream regime change\n"
         "cascade:p=P,len=N,span=S,mag=X\n"
         "                    with prob P per N-sample epoch, S contiguous\n"
         "                    sensors spike together by factor (1 + X),\n"
         "                    decaying over the epoch\n"
         "Injectors compose with '+', e.g. \"dropout:p=0.02+drift:at=2000\".";
}

Scenario::State& Scenario::state(std::size_t k, std::size_t node) {
  if (state_[k].size() <= node) state_[k].resize(node + 1);
  return state_[k][node];
}

void Scenario::reset() {
  for (auto& per_injector : state_) per_injector.clear();
  next_start_.clear();
}

void Scenario::apply(std::size_t node, std::uint64_t start,
                     common::Matrix& columns) {
  if (injectors_.empty() || columns.cols() == 0) return;
  if (next_start_.size() <= node) next_start_.resize(node + 1, 0);
  if (start != next_start_[node]) {
    // Non-contiguous feed: this node's stream restarted — drop its memory.
    for (std::size_t k = 0; k < injectors_.size(); ++k) {
      if (state_[k].size() > node) state_[k][node] = State{};
    }
  }
  next_start_[node] = start + columns.cols();

  const std::size_t n = columns.rows();
  std::vector<double> col(n);
  std::vector<double> scratch(n);
  for (std::size_t c = 0; c < columns.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = columns(r, c);
    const std::uint64_t t = start + c;
    for (std::size_t k = 0; k < injectors_.size(); ++k) {
      apply_one(k, node, t, col, scratch);
    }
    for (std::size_t r = 0; r < n; ++r) columns(r, c) = col[r];
  }
}

void Scenario::apply_one(std::size_t k, std::size_t node, std::uint64_t t,
                         std::vector<double>& col,
                         std::vector<double>& scratch) {
  const Injector& inj = injectors_[k];
  const std::size_t n = col.size();
  const std::uint64_t base = mix(mix(seed_, k), node);
  switch (inj.kind) {
    case Injector::Kind::kDropout: {
      State& st = state(k, node);
      if (st.hold.size() < n) {
        st.hold.resize(n, 0.0);
        st.hold_epoch.resize(n, 0);
      }
      const std::uint64_t epoch = t / inj.len;
      for (std::size_t s = 0; s < n; ++s) {
        if (chance(mix(mix(base, epoch), s)) >= inj.p) continue;
        if (st.hold_epoch[s] != epoch + 1) {
          // First dropped column of this epoch we have seen: the sensor
          // rails at the value it was about to report.
          st.hold[s] = col[s];
          st.hold_epoch[s] = epoch + 1;
        }
        col[s] = st.hold[s];
      }
      break;
    }
    case Injector::Kind::kNan: {
      const std::uint64_t epoch = t / inj.len;
      for (std::size_t s = 0; s < n; ++s) {
        if (chance(mix(mix(base, epoch), s)) < inj.p) {
          col[s] = std::numeric_limits<double>::quiet_NaN();
        }
      }
      break;
    }
    case Injector::Kind::kSkew: {
      State& st = state(k, node);
      if (t > 0 && t % inj.every == 0 && st.has_prev &&
          st.prev.size() == n) {
        col = st.prev;
      }
      st.prev = col;
      st.has_prev = true;
      break;
    }
    case Injector::Kind::kDrift: {
      if (t < inj.at) break;
      State& st = state(k, node);
      if (st.perm.size() != n) {
        // Seeded partner permutation, fixed per node for the whole run.
        common::Rng rng(mix(base, 0x64726966 /* 'drif' */));
        st.perm = rng.permutation(n);
      }
      scratch = col;
      for (std::size_t s = 0; s < n; ++s) {
        col[s] = inj.gain *
                 ((1.0 - inj.mix) * scratch[s] + inj.mix * scratch[st.perm[s]]);
      }
      break;
    }
    case Injector::Kind::kCascade: {
      const std::uint64_t epoch = t / inj.len;
      const std::uint64_t h = mix(base, epoch);
      if (chance(h) >= inj.p) break;
      const std::size_t offset =
          static_cast<std::size_t>(mix(h, 1) % static_cast<std::uint64_t>(n));
      const std::size_t pos = static_cast<std::size_t>(t % inj.len);
      const double decay =
          std::exp(-3.0 * static_cast<double>(pos) /
                   static_cast<double>(inj.len));
      const double factor = 1.0 + inj.mag * decay;
      for (std::size_t i = 0; i < inj.span && i < n; ++i) {
        col[(offset + i) % n] *= factor;
      }
      break;
    }
  }
}

}  // namespace csm::replay
