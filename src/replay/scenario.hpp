// Adversarial streaming scenarios: deterministic seeded fault injection.
//
// A production fleet never feeds the engine the clean correlated segments
// hpcoda generates: sensors die, samplers hiccup, workloads change regime
// mid-stream and faults cascade across neighbouring sensors. A Scenario is
// a composition of such fault injectors, applied as a transform over any
// sample source (generator output or a CSMR recording) BEFORE ingestion —
// the engine under test sees only the mutated stream.
//
// Scenarios are configured by spec string, one injector per '+'-separated
// chunk in MethodSpec grammar (`name[:key=value,...]`), e.g.
//
//   "dropout:p=0.02,len=25+drift:at=2000,mix=0.5"
//
// Injectors (see Scenario::grammar() for the full parameter list):
//
//   dropout   sensors rail at their last value for whole epochs
//   nan       sensors report NaN for whole epochs (sampler gaps)
//   skew      the node's clock slips: every Nth column re-delivers the
//             previous one (a duplicated/dropped sample)
//   drift     mid-stream regime change: from sample `at` on, each sensor is
//             re-mixed with a seeded partner sensor and re-scaled, which
//             shifts both levels and the correlation structure
//   cascade   correlated fault bursts: a contiguous seeded sensor block
//             spikes together and decays over the epoch
//
// Every random decision derives from (seed, injector index, node, epoch,
// sensor) through a counter-based hash, so a scenario is a deterministic
// function of the seed and each node's sample index: the same seed produces
// the same mutated stream regardless of how the feed is chunked into
// batches (the determinism tests pin exactly this). Injectors that need
// memory (dropout holds, skew's previous column) keep per-node state inside
// the Scenario, so apply() is stateful and NOT thread-safe — drive each
// Scenario from one thread (the CLI feeds nodes sequentially).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"

namespace csm::replay {

/// One parsed fault injector (see the header comment for semantics).
struct Injector {
  enum class Kind { kDropout, kNan, kSkew, kDrift, kCascade };

  Kind kind = Kind::kDropout;
  double p = 0.0;         ///< dropout/nan: per-epoch per-sensor probability;
                          ///< cascade: per-epoch per-node burst probability.
  std::size_t len = 0;    ///< dropout/nan/cascade: epoch length in samples.
  std::size_t every = 0;  ///< skew: slip period in samples.
  std::size_t at = 0;     ///< drift: first drifted sample index.
  double mix = 0.0;       ///< drift: partner blend weight in [0, 1].
  double gain = 1.0;      ///< drift: post-mix scale factor.
  std::size_t span = 0;   ///< cascade: sensors per burst.
  double mag = 0.0;       ///< cascade: relative spike magnitude.
};

/// A seeded composition of fault injectors over per-node sample streams.
class Scenario {
 public:
  /// Empty scenario: apply() is the identity, to_string() is "".
  Scenario() = default;

  /// Parses a '+'-separated injector spec. Throws std::invalid_argument on
  /// unknown injector names, unknown or out-of-range parameters, or an
  /// empty spec. `seed` drives every random decision.
  static Scenario parse(std::string_view spec, std::uint64_t seed = 0);

  /// Canonical round-trippable form: every parameter printed explicitly, in
  /// fixed order (parse(to_string()) is a fixpoint).
  std::string to_string() const;

  /// Human-readable injector grammar for CLI listings and docs.
  static std::string grammar();

  bool empty() const noexcept { return injectors_.empty(); }
  std::uint64_t seed() const noexcept { return seed_; }
  const std::vector<Injector>& injectors() const noexcept {
    return injectors_;
  }

  /// Mutates `columns` (n_sensors x n_cols) in place as the samples
  /// [start, start + n_cols) of `node`'s stream. Feeding a node
  /// non-contiguously (start != previous start + previous n_cols) resets
  /// that node's injector memory, as if its stream restarted.
  void apply(std::size_t node, std::uint64_t start, common::Matrix& columns);

  /// Drops all per-node injector memory (every stream restarts at its next
  /// apply()).
  void reset();

 private:
  /// Per-injector, per-node memory.
  struct State {
    std::vector<double> hold;               ///< dropout: railed values.
    std::vector<std::uint64_t> hold_epoch;  ///< epoch+1 a hold belongs to.
    std::vector<double> prev;               ///< skew: previous column.
    bool has_prev = false;
    std::vector<std::size_t> perm;          ///< drift: partner permutation.
  };

  void apply_one(std::size_t k, std::size_t node, std::uint64_t t,
                 std::vector<double>& col, std::vector<double>& scratch);
  State& state(std::size_t k, std::size_t node);

  std::uint64_t seed_ = 0;
  std::vector<Injector> injectors_;
  std::vector<std::vector<State>> state_;      ///< [injector][node].
  std::vector<std::uint64_t> next_start_;      ///< Per-node stream cursor.
};

}  // namespace csm::replay
