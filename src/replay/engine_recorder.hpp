// EngineRecorder: glue between a StreamEngine ingest tap and a Recorder.
//
// The engine's tap hands over (engine node index, batch); a CSMR recording
// wants (recorder table index, batch) with every node declared by id. This
// class owns that translation: register each engine node as it is added
// (directly after StreamEngine::add_node, or from FleetServerOptions::
// on_node_add when the adds arrive over the wire), then install tap() as
// the engine's ingest tap. Batches for engine indices that were never
// registered throw RecordingError — a capture that silently dropped nodes
// would replay as a different run.
//
// Thread-safe: tap() may fire concurrently from parallel ingest (the index
// map has its own mutex; the Recorder serialises batches internally).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"
#include "replay/recording.hpp"

namespace csm::replay {

class EngineRecorder {
 public:
  /// File-backed capture; truncates `file`. Throws RecordingError when the
  /// file cannot be opened.
  explicit EngineRecorder(std::filesystem::path file);

  /// Declares the node behind `engine_index`. Call once per add_node, in
  /// any index order; re-registering a live index throws RecordingError.
  void on_node_add(std::size_t engine_index, std::string_view id,
                   std::uint32_t n_sensors);

  /// The ingest tap body: records `columns` against the node registered
  /// for `engine_index`. Matches core::StreamEngine::IngestTap.
  void tap(std::size_t engine_index, const common::Matrix& columns);

  /// Seals the recording (node table + trailing CRC). The engine's tap
  /// must be cleared (or the engine quiesced) first.
  void finish();

  std::size_t n_nodes() const { return recorder_.n_nodes(); }
  std::size_t batch_count() const { return recorder_.batch_count(); }

 private:
  static constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;

  Recorder recorder_;
  mutable std::mutex mutex_;              ///< Guards map_.
  std::vector<std::uint32_t> map_;        ///< Engine index -> table index.
};

}  // namespace csm::replay
