// Backward finite differences.
//
// The imaginary channel of a CS signature (Eq. 3) averages the row-wise
// first-order derivative of the sensor matrix, computed with backward
// differences: d[k] = x[k] - x[k-1], d[0] = 0. The same transform is the
// paper's recommended pre-processing for monotonic series such as energy
// counters.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace csm::stats {

/// Backward finite difference of one series; the first element is 0 so the
/// output length equals the input length.
std::vector<double> backward_diff(std::span<const double> x);

/// Row-wise backward differences of the whole matrix.
common::Matrix backward_diff_rows(const common::Matrix& s);

/// Row-wise backward differences where the first column's derivative is taken
/// against `prev_col` (the last column of the preceding window). This lets a
/// streaming pipeline avoid a zero spike at every window boundary.
common::Matrix backward_diff_rows_seeded(const common::Matrix& s,
                                         std::span<const double> prev_col);

}  // namespace csm::stats
