// Interpolation and resizing helpers.
//
// CS signatures are "image-like" (Section III-C): they can be rescaled with
// standard image resampling so that models trained at one resolution accept
// signatures produced at another, and so that signatures from systems with
// different sensor counts become comparable (Section IV-F). The JS-divergence
// evaluation also nearest-neighbour-interpolates signatures back to the
// original dimension count (Section IV-A2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace csm::stats {

/// Nearest-neighbour resampling of a 1-D signal to `new_size` samples.
/// Throws std::invalid_argument for empty input or zero target size.
std::vector<double> resize_nearest(std::span<const double> x,
                                   std::size_t new_size);

/// Linear resampling of a 1-D signal to `new_size` samples (endpoints
/// aligned). A single-sample input is replicated.
std::vector<double> resize_linear(std::span<const double> x,
                                  std::size_t new_size);

/// Resizes a matrix along the row (dimension) axis with nearest-neighbour
/// sampling; columns are untouched.
common::Matrix resize_rows_nearest(const common::Matrix& s,
                                   std::size_t new_rows);

/// Full bilinear image resize of a matrix to new_rows x new_cols.
common::Matrix resize_bilinear(const common::Matrix& s, std::size_t new_rows,
                               std::size_t new_cols);

/// Piecewise-linear interpolation of irregularly sampled data: returns the
/// value of the series (xs, ys) at position x, clamping outside the domain.
/// xs must be strictly increasing and non-empty.
double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x);

}  // namespace csm::stats
