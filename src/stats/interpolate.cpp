#include "stats/interpolate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace csm::stats {

namespace {

// Index of the nearest source sample for target index i (pixel-centre
// convention, matching common image libraries).
std::size_t nearest_index(std::size_t i, std::size_t n_out, std::size_t n_in) {
  const double pos =
      (static_cast<double>(i) + 0.5) * static_cast<double>(n_in) /
          static_cast<double>(n_out) -
      0.5;
  const auto idx = static_cast<std::ptrdiff_t>(std::lround(pos));
  if (idx < 0) return 0;
  if (idx >= static_cast<std::ptrdiff_t>(n_in)) return n_in - 1;
  return static_cast<std::size_t>(idx);
}

}  // namespace

std::vector<double> resize_nearest(std::span<const double> x,
                                   std::size_t new_size) {
  if (x.empty() || new_size == 0) {
    throw std::invalid_argument("resize_nearest: empty input or target");
  }
  std::vector<double> out(new_size);
  for (std::size_t i = 0; i < new_size; ++i) {
    out[i] = x[nearest_index(i, new_size, x.size())];
  }
  return out;
}

std::vector<double> resize_linear(std::span<const double> x,
                                  std::size_t new_size) {
  if (x.empty() || new_size == 0) {
    throw std::invalid_argument("resize_linear: empty input or target");
  }
  std::vector<double> out(new_size);
  if (x.size() == 1 || new_size == 1) {
    // Degenerate axes: endpoint-aligned sampling starts at the first sample.
    std::fill(out.begin(), out.end(), x[0]);
    return out;
  }
  const double scale = static_cast<double>(x.size() - 1) /
                       static_cast<double>(new_size - 1);
  for (std::size_t i = 0; i < new_size; ++i) {
    const double pos = static_cast<double>(i) * scale;
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, x.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = x[lo] + frac * (x[hi] - x[lo]);
  }
  return out;
}

common::Matrix resize_rows_nearest(const common::Matrix& s,
                                   std::size_t new_rows) {
  if (s.empty() || new_rows == 0) {
    throw std::invalid_argument("resize_rows_nearest: empty input or target");
  }
  common::Matrix out(new_rows, s.cols());
  for (std::size_t i = 0; i < new_rows; ++i) {
    const std::size_t src = nearest_index(i, new_rows, s.rows());
    out.set_row(i, s.row(src));
  }
  return out;
}

common::Matrix resize_bilinear(const common::Matrix& s, std::size_t new_rows,
                               std::size_t new_cols) {
  if (s.empty() || new_rows == 0 || new_cols == 0) {
    throw std::invalid_argument("resize_bilinear: empty input or target");
  }
  common::Matrix out(new_rows, new_cols);
  const double r_scale =
      new_rows == 1 ? 0.0
                    : static_cast<double>(s.rows() - 1) /
                          static_cast<double>(new_rows - 1);
  const double c_scale =
      new_cols == 1 ? 0.0
                    : static_cast<double>(s.cols() - 1) /
                          static_cast<double>(new_cols - 1);
  for (std::size_t i = 0; i < new_rows; ++i) {
    const double rp = static_cast<double>(i) * r_scale;
    const auto r0 = static_cast<std::size_t>(rp);
    const std::size_t r1 = std::min(r0 + 1, s.rows() - 1);
    const double rf = rp - static_cast<double>(r0);
    for (std::size_t j = 0; j < new_cols; ++j) {
      const double cp = static_cast<double>(j) * c_scale;
      const auto c0 = static_cast<std::size_t>(cp);
      const std::size_t c1 = std::min(c0 + 1, s.cols() - 1);
      const double cf = cp - static_cast<double>(c0);
      const double top = s(r0, c0) + cf * (s(r0, c1) - s(r0, c0));
      const double bot = s(r1, c0) + cf * (s(r1, c1) - s(r1, c0));
      out(i, j) = top + rf * (bot - top);
    }
  }
  return out;
}

double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x) {
  if (xs.empty() || xs.size() != ys.size()) {
    throw std::invalid_argument("interp_linear: bad input lengths");
  }
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  // First element strictly greater than x; xs is strictly increasing.
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const auto hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double span = xs[hi] - xs[lo];
  const double frac = span == 0.0 ? 0.0 : (x - xs[lo]) / span;
  return ys[lo] + frac * (ys[hi] - ys[lo]);
}

}  // namespace csm::stats
