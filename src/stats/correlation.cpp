#include "stats/correlation.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "stats/descriptive.hpp"

namespace csm::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("pearson: length mismatch");
  }
  const double sx = stddev(x);
  const double sy = stddev(y);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return covariance(x, y) / (sx * sy);
}

namespace {

// Tile edge for the pairwise pass: a 32x32 pair tile touches 64 centered
// rows, which at the longest streaming history (1024 cols = 8 KiB/row)
// stays within a typical 512 KiB L2 slice.
constexpr std::size_t kPairTile = 32;

}  // namespace

common::Matrix shifted_correlation_matrix(const common::MatrixView& s,
                                          CorrelationWorkspace& ws,
                                          const common::CancelToken* cancel) {
  const std::size_t n = s.rows();
  const std::size_t t = s.cols();
  common::Matrix out(n, n);
  ws.reserve(n, t);

  // Hoist the mean-subtracted rows once (O(n t)): the O(n^2 t) pairwise pass
  // below then reads contiguous centered rows regardless of the view layout
  // (ring-segment views are gathered here, per-row order preserved). The
  // subtraction is the same op the reference kernel performs inside its
  // inner loop, so hoisting it keeps every coefficient bit-identical.
  std::vector<double> scratch;
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = s.row(i, scratch);
    const double m = mean(src);
    ws.means[i] = m;
    ws.sds[i] = stddev(src);
    double* y = ws.centered.data() + i * t;
    for (std::size_t k = 0; k < t; ++k) y[k] = src[k] - m;
  }
  if (cancel != nullptr) cancel->throw_if_cancelled();

  for (std::size_t i = 0; i < n; ++i) {
    out(i, i) = 2.0;  // pearson(x, x) = 1, shifted by +1.
  }
  if (n < 2) return out;

  const bool degenerate = t < 2;
  // rho for a finished pair, with the identical guard/clamp sequence the
  // reference applies. cov is only *used* under the guard, so computing it
  // unconditionally above changes nothing.
  const auto finish_pair = [&](std::size_t i, std::size_t j, double cov) {
    double rho = 0.0;
    if (!degenerate && ws.sds[i] != 0.0 && ws.sds[j] != 0.0) {
      cov /= static_cast<double>(t);
      rho = cov / (ws.sds[i] * ws.sds[j]);
      // Clamp numerical overshoot so callers can rely on [-1, 1].
      rho = std::min(1.0, std::max(-1.0, rho));
    }
    out(i, j) = rho + 1.0;
    out(j, i) = rho + 1.0;
  };

  // Upper-triangular tile pairs, flattened so dynamic scheduling can balance
  // the skewed diagonal tiles. Each tile pair owns a disjoint block of `out`
  // (plus its mirrored block), so the parallel bodies never race.
  const std::size_t n_tiles = (n + kPairTile - 1) / kPairTile;
  std::vector<std::pair<std::size_t, std::size_t>> tiles;
  tiles.reserve(n_tiles * (n_tiles + 1) / 2);
  for (std::size_t bi = 0; bi < n_tiles; ++bi) {
    for (std::size_t bj = bi; bj < n_tiles; ++bj) tiles.emplace_back(bi, bj);
  }

  // Parallel bodies must not throw: a fired token makes remaining tiles
  // no-ops, and the checkpoint after the loop unwinds.
  const std::atomic<bool>* cancel_flag =
      cancel != nullptr ? cancel->flag() : nullptr;
  const double* centered = ws.centered.data();

  common::parallel_for_dynamic(tiles.size(), [&](std::size_t p) {
    if (cancel_flag != nullptr &&
        cancel_flag->load(std::memory_order_relaxed)) {
      return;
    }
    const auto [bi, bj] = tiles[p];
    const std::size_t i1 = std::min(n, (bi + 1) * kPairTile);
    const std::size_t j0 = bj * kPairTile;
    const std::size_t j1 = std::min(n, (bj + 1) * kPairTile);
    for (std::size_t i = bi * kPairTile; i < i1; ++i) {
      const double* yi = centered + i * t;
      std::size_t j = std::max(j0, i + 1);
      // Register-block four pairs per sweep: four independent accumulation
      // chains keep the FMA ports busy, while each chain remains one
      // accumulator summed in time-ascending order — the bit-exactness pin.
      for (; j + 4 <= j1; j += 4) {
        const double* y0 = centered + j * t;
        const double* y1 = y0 + t;
        const double* y2 = y1 + t;
        const double* y3 = y2 + t;
        double c0 = 0.0;
        double c1 = 0.0;
        double c2 = 0.0;
        double c3 = 0.0;
        for (std::size_t k = 0; k < t; ++k) {
          const double v = yi[k];
          c0 += v * y0[k];
          c1 += v * y1[k];
          c2 += v * y2[k];
          c3 += v * y3[k];
        }
        finish_pair(i, j, c0);
        finish_pair(i, j + 1, c1);
        finish_pair(i, j + 2, c2);
        finish_pair(i, j + 3, c3);
      }
      for (; j < j1; ++j) {
        const double* yj = centered + j * t;
        double cov = 0.0;
        for (std::size_t k = 0; k < t; ++k) cov += yi[k] * yj[k];
        finish_pair(i, j, cov);
      }
    }
  });
  if (cancel != nullptr) cancel->throw_if_cancelled();
  return out;
}

common::Matrix shifted_correlation_matrix(const common::MatrixView& s) {
  CorrelationWorkspace ws;
  return shifted_correlation_matrix(s, ws, nullptr);
}

common::Matrix shifted_correlation_matrix_reference(
    const common::MatrixView& s) {
  const std::size_t n = s.rows();
  const std::size_t t = s.cols();
  common::Matrix out(n, n);

  // The pre-tiling kernel, unchanged: the oracle the property tests hold the
  // tiled path bit-identical to. Rows of a ring-segment view are gathered
  // once (per-row order preserved), exactly as before.
  const bool direct = s.contiguous_rows();
  const common::Matrix gathered = direct ? common::Matrix() : s.materialize();
  const auto row_of = [&](std::size_t i) {
    return direct ? s.row(i) : gathered.row(i);
  };

  std::vector<double> means(n), sds(n);
  for (std::size_t i = 0; i < n; ++i) {
    means[i] = mean(row_of(i));
    sds[i] = stddev(row_of(i));
  }

  common::parallel_for_dynamic(n, [&](std::size_t i) {
    out(i, i) = 2.0;  // pearson(x, x) = 1, shifted by +1.
    const auto xi = row_of(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      double rho = 0.0;
      if (sds[i] != 0.0 && sds[j] != 0.0 && t >= 2) {
        const auto xj = row_of(j);
        double cov = 0.0;
        for (std::size_t k = 0; k < t; ++k) {
          cov += (xi[k] - means[i]) * (xj[k] - means[j]);
        }
        cov /= static_cast<double>(t);
        rho = cov / (sds[i] * sds[j]);
        // Clamp numerical overshoot so callers can rely on [-1, 1].
        rho = std::min(1.0, std::max(-1.0, rho));
      }
      out(i, j) = rho + 1.0;
      out(j, i) = rho + 1.0;
    }
  });
  return out;
}

std::vector<double> global_coefficients(const common::Matrix& shifted) {
  const std::size_t n = shifted.rows();
  if (shifted.cols() != n) {
    throw std::invalid_argument(
        "global_coefficients: matrix must be square (pairwise coefficients)");
  }
  std::vector<double> out(n, 0.0);
  if (n < 2) return out;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) acc += shifted(i, j);
    }
    out[i] = acc / static_cast<double>(n - 1);
  }
  return out;
}

}  // namespace csm::stats
