#include "stats/correlation.hpp"

#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"
#include "stats/descriptive.hpp"

namespace csm::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("pearson: length mismatch");
  }
  const double sx = stddev(x);
  const double sy = stddev(y);
  if (sx == 0.0 || sy == 0.0) return 0.0;
  return covariance(x, y) / (sx * sy);
}

common::Matrix shifted_correlation_matrix(const common::MatrixView& s) {
  const std::size_t n = s.rows();
  const std::size_t t = s.cols();
  common::Matrix out(n, n);

  // The O(n^2 t) pairwise pass below rereads every row ~n times, so keep
  // its inner loops on contiguous spans: a row-major view hands its rows
  // out zero-copy, a ring-segment view is gathered once (O(n t), per-row
  // order preserved, so results stay bit-identical to the materialised
  // path — the same copy the pre-view code made with to_matrix(), now
  // confined to this kernel).
  const bool direct = s.contiguous_rows();
  const common::Matrix gathered = direct ? common::Matrix() : s.materialize();
  const auto row_of = [&](std::size_t i) {
    return direct ? s.row(i) : gathered.row(i);
  };

  // Pre-compute per-row means and standard deviations once: the pairwise
  // loop then only needs the cross terms.
  std::vector<double> means(n), sds(n);
  for (std::size_t i = 0; i < n; ++i) {
    means[i] = mean(row_of(i));
    sds[i] = stddev(row_of(i));
  }

  common::parallel_for_dynamic(n, [&](std::size_t i) {
    out(i, i) = 2.0;  // pearson(x, x) = 1, shifted by +1.
    const auto xi = row_of(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      double rho = 0.0;
      if (sds[i] != 0.0 && sds[j] != 0.0 && t >= 2) {
        const auto xj = row_of(j);
        double cov = 0.0;
        for (std::size_t k = 0; k < t; ++k) {
          cov += (xi[k] - means[i]) * (xj[k] - means[j]);
        }
        cov /= static_cast<double>(t);
        rho = cov / (sds[i] * sds[j]);
        // Clamp numerical overshoot so callers can rely on [-1, 1].
        rho = std::min(1.0, std::max(-1.0, rho));
      }
      out(i, j) = rho + 1.0;
      out(j, i) = rho + 1.0;
    }
  });
  return out;
}

std::vector<double> global_coefficients(const common::Matrix& shifted) {
  const std::size_t n = shifted.rows();
  if (shifted.cols() != n) {
    throw std::invalid_argument(
        "global_coefficients: matrix must be square (pairwise coefficients)");
  }
  std::vector<double> out(n, 0.0);
  if (n < 2) return out;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) acc += shifted(i, j);
    }
    out[i] = acc / static_cast<double>(n - 1);
  }
  return out;
}

}  // namespace csm::stats
