#include "stats/divergence.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "stats/histogram.hpp"

namespace csm::stats {

double shannon_entropy(std::span<const double> pmf) {
  double h = 0.0;
  for (double p : pmf) {
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

double kl_divergence(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("kl_divergence: length mismatch");
  }
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] > 0.0) {
      if (q[i] <= 0.0) return std::numeric_limits<double>::infinity();
      d += p[i] * std::log2(p[i] / q[i]);
    }
  }
  return d;
}

double js_divergence(std::span<const double> p, std::span<const double> q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("js_divergence: length mismatch");
  }
  std::vector<double> m(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) m[i] = 0.5 * (p[i] + q[i]);
  return shannon_entropy(m) -
         0.5 * (shannon_entropy(p) + shannon_entropy(q));
}

common::Matrix dimension_value_distribution(const common::Matrix& s,
                                            std::size_t bins, double lo,
                                            double hi) {
  if (s.empty()) {
    throw std::invalid_argument("dimension_value_distribution: empty matrix");
  }
  common::Matrix out(s.rows(), bins);
  const double inv_rows = 1.0 / static_cast<double>(s.rows());
  for (std::size_t r = 0; r < s.rows(); ++r) {
    Histogram h(bins, lo, hi);
    h.add(s.row(r));
    const std::vector<double> pmf = h.pmf();
    for (std::size_t b = 0; b < bins; ++b) out(r, b) = pmf[b] * inv_rows;
  }
  return out;
}

double js_divergence_2d(const common::Matrix& a, const common::Matrix& b,
                        std::size_t bins) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("js_divergence_2d: empty matrix");
  }
  if (a.rows() != b.rows()) {
    throw std::invalid_argument(
        "js_divergence_2d: dimension counts differ (interpolate first)");
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto* m : {&a, &b}) {
    const double* p = m->data();
    for (std::size_t i = 0; i < m->size(); ++i) {
      lo = std::min(lo, p[i]);
      hi = std::max(hi, p[i]);
    }
  }
  const common::Matrix pa = dimension_value_distribution(a, bins, lo, hi);
  const common::Matrix pb = dimension_value_distribution(b, bins, lo, hi);
  return js_divergence(std::span(pa.data(), pa.size()),
                       std::span(pb.data(), pb.size()));
}

}  // namespace csm::stats
