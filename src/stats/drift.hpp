// Cheap per-window correlation-drift statistic for adaptive retraining.
//
// Section III-C2 of the paper observes that component correlations drift
// over time and prescribes "repeat training whenever required"; the open
// question is *when* it is required. A full refit-and-compare is O(n^2 t) —
// far too heavy to run per emitted window — so this header provides a
// two-part surrogate that costs O(n t + p t) per window for p sampled
// sensor pairs:
//
//   * per-sensor standardized mean shift against the reference window
//     (catches level changes and dead/railed sensors), and
//   * mean absolute Pearson shift over a seeded sample of sensor pairs
//     (catches re-mixed correlation structure even when levels are stable).
//
// A stationary stream scores around sampling noise (~1/sqrt(wl)); a regime
// change scores well above it. core::MethodStream's RetrainPolicy::kOnDrift
// compares the score against StreamOptions::drift_threshold. Both halves
// skip non-finite samples so the adversarial scenarios (NaN gaps, dropouts)
// degrade the estimate instead of poisoning it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/matrix_view.hpp"

namespace csm::stats {

/// Default cap on sampled sensor pairs in a DriftReference.
inline constexpr std::size_t kDefaultDriftPairs = 64;

/// Frozen summary of an in-regime window: per-sensor moments plus the
/// reference correlation of a seeded pair sample. Rebuilt after every
/// drift-triggered retrain so the stream tracks the new regime.
struct DriftReference {
  /// One sampled sensor pair and its reference Pearson coefficient.
  struct Pair {
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    double r = 0.0;
  };

  std::vector<double> mean;  ///< Per-sensor mean over the reference window.
  std::vector<double> sd;    ///< Per-sensor population stddev (same window).
  std::vector<Pair> pairs;   ///< Seeded pair sample with reference Pearson.

  bool empty() const noexcept { return mean.empty(); }
  std::size_t n_sensors() const noexcept { return mean.size(); }
};

/// Summarises `window` (n_sensors x wl, any MatrixView layout) into a
/// DriftReference. At most `max_pairs` distinct sensor pairs are sampled
/// with an Rng seeded by `seed` (all n*(n-1)/2 pairs when they fit the
/// cap), so the same seed always watches the same pairs. Non-finite
/// samples are skipped; a sensor with no finite samples gets mean 0 / sd 0.
/// Throws std::invalid_argument on an empty window or max_pairs == 0.
DriftReference make_drift_reference(const common::MatrixView& window,
                                    std::size_t max_pairs = kDefaultDriftPairs,
                                    std::uint64_t seed = 0);

/// Drift score of `window` against `ref`: the average of
///   (1/n) sum_s |mean_s(window) - ref.mean[s]| / max(ref.sd[s], eps)  and
///   (1/p) sum_(i,j) |pearson_ij(window) - ref.pairs[k].r|.
/// Dimensionless and >= 0. The window's sensor count must match the
/// reference's (std::invalid_argument otherwise); ref must not be empty.
double drift_score(const common::MatrixView& window, const DriftReference& ref);

}  // namespace csm::stats
