// Descriptive statistics over contiguous samples.
//
// These are the building blocks of the Tuncer and Bodik baseline signature
// methods (Section III-B of the paper): per-sensor mean, standard deviation,
// extrema, percentiles, and the "sum of changes" indicators Tuncer et al. use
// in place of skewness/kurtosis.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace csm::stats {

/// Arithmetic mean. Returns 0 for empty input.
double mean(std::span<const double> x);

/// Population variance (divides by N). Returns 0 for fewer than 2 samples.
double variance(std::span<const double> x);

/// Population standard deviation.
double stddev(std::span<const double> x);

/// Sample covariance between two equally sized spans (divides by N).
/// Throws std::invalid_argument on length mismatch.
double covariance(std::span<const double> x, std::span<const double> y);

double min(std::span<const double> x);
double max(std::span<const double> x);

/// Percentile with linear interpolation between closest ranks (numpy's
/// default "linear" method), q in [0, 100]. Copies and partially sorts the
/// input. Throws std::invalid_argument for empty input or q outside [0,100].
double percentile(std::span<const double> x, double q);

/// Computes several percentiles in one sort pass; `qs` values in [0, 100].
std::vector<double> percentiles(std::span<const double> x,
                                std::span<const double> qs);

/// Sum of successive differences: sum_i (x[i+1] - x[i]) == x.back()-x.front().
double sum_of_changes(std::span<const double> x);

/// Sum of absolute successive differences: sum_i |x[i+1] - x[i]|.
double abs_sum_of_changes(std::span<const double> x);

}  // namespace csm::stats
