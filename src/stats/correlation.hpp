// Pearson correlation machinery for the CS training stage (Eq. 1).
//
// The paper shifts each Pearson coefficient by +1 so that coefficients live in
// [0, 2] and the greedy ordering of Algorithm 1 can multiply them without sign
// juggling. The "global correlation coefficient" rho_Si of a row is the mean
// shifted coefficient against every other row and measures how descriptive a
// sensor is of overall system state.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/cancel.hpp"
#include "common/matrix.hpp"
#include "common/matrix_view.hpp"

namespace csm::stats {

/// Plain Pearson correlation coefficient in [-1, 1]. Rows with zero variance
/// correlate as 0 with everything (the sensor carries no linear information).
double pearson(std::span<const double> x, std::span<const double> y);

/// Reusable scratch for shifted_correlation_matrix: the mean-subtracted rows
/// (n x t, row-major) plus per-row means and standard deviations. A stream
/// that retrains every N samples keeps one of these alive so the O(n t)
/// staging buffers are allocated once, not per retrain. reserve() only grows,
/// never shrinks, so steady-state retrains are allocation-free.
struct CorrelationWorkspace {
  std::vector<double> centered;  ///< n*t mean-subtracted rows, row-major.
  std::vector<double> means;     ///< per-row mean.
  std::vector<double> sds;       ///< per-row population stddev.

  void reserve(std::size_t n, std::size_t t) {
    if (centered.size() < n * t) centered.resize(n * t);
    if (means.size() < n) means.resize(n);
    if (sds.size() < n) sds.resize(n);
  }
};

/// Full pairwise *shifted* correlation matrix of the rows of `s`:
/// out(i,j) = pearson(row i, row j) + 1, in [0, 2]; diagonal = 2.
///
/// Complexity O(n^2 t); cache-tiled over (i, j) row pairs with the
/// mean-subtracted rows hoisted into `ws` once, and register-blocked across
/// neighbouring pairs for FMA-friendly independent accumulation chains. Each
/// coefficient is still one accumulator summed in time-ascending order —
/// exactly the op sequence of shifted_correlation_matrix_reference — so the
/// result is bit-identical to the scalar path across every layout (the same
/// pin PR 5 made for the fused smooth_window). Accepts any window view (a
/// common::Matrix converts implicitly), so streaming retrains can feed
/// ring-buffer history without materialising it.
///
/// `cancel`, when given, is polled per tile: a fired token makes the pass
/// throw common::OperationCancelled (used by superseded async retrains).
common::Matrix shifted_correlation_matrix(
    const common::MatrixView& s, CorrelationWorkspace& ws,
    const common::CancelToken* cancel = nullptr);

/// Convenience overload with a throwaway workspace.
common::Matrix shifted_correlation_matrix(const common::MatrixView& s);

/// The pre-tiling scalar kernel, kept verbatim as the bit-exactness oracle
/// for the tiled path (property tests pin tiled == reference across
/// ring-wrap-straddling views). Not for production use: rereads every row
/// ~n times with no cache blocking.
common::Matrix shifted_correlation_matrix_reference(const common::MatrixView& s);

/// Global correlation coefficients per row (Eq. 1, right):
/// rho_Si = (1 / (n-1)) * sum_{j != i} shifted(i, j).
/// For a 1-row matrix returns {0}.
std::vector<double> global_coefficients(const common::Matrix& shifted);

}  // namespace csm::stats
