// Pearson correlation machinery for the CS training stage (Eq. 1).
//
// The paper shifts each Pearson coefficient by +1 so that coefficients live in
// [0, 2] and the greedy ordering of Algorithm 1 can multiply them without sign
// juggling. The "global correlation coefficient" rho_Si of a row is the mean
// shifted coefficient against every other row and measures how descriptive a
// sensor is of overall system state.
#pragma once

#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/matrix_view.hpp"

namespace csm::stats {

/// Plain Pearson correlation coefficient in [-1, 1]. Rows with zero variance
/// correlate as 0 with everything (the sensor carries no linear information).
double pearson(std::span<const double> x, std::span<const double> y);

/// Full pairwise *shifted* correlation matrix of the rows of `s`:
/// out(i,j) = pearson(row i, row j) + 1, in [0, 2]; diagonal = 2.
/// Complexity O(n^2 t); parallelised across row pairs. Accepts any window
/// view (a common::Matrix converts implicitly), so streaming retrains can
/// feed ring-buffer history without materialising it; the accumulation
/// order is fixed (time-ascending per coefficient), making results
/// bit-identical across layouts.
common::Matrix shifted_correlation_matrix(const common::MatrixView& s);

/// Global correlation coefficients per row (Eq. 1, right):
/// rho_Si = (1 / (n-1)) * sum_{j != i} shifted(i, j).
/// For a 1-row matrix returns {0}.
std::vector<double> global_coefficients(const common::Matrix& shifted);

}  // namespace csm::stats
