#include "stats/drift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"

namespace csm::stats {
namespace {

// Floor on the reference stddev when standardizing mean shifts: a sensor
// that was perfectly flat in the reference window would otherwise turn any
// noise into an infinite score.
constexpr double kSdFloor = 1e-9;

struct Moments {
  double mean = 0.0;
  double sd = 0.0;
  std::size_t finite = 0;
};

// Mean / population stddev of one sensor row, over finite samples only.
Moments row_moments(const common::MatrixView& m, std::size_t r) {
  Moments out;
  double sum = 0.0;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const double v = m(r, c);
    if (!std::isfinite(v)) continue;
    sum += v;
    ++out.finite;
  }
  if (out.finite == 0) return out;
  out.mean = sum / static_cast<double>(out.finite);
  double ss = 0.0;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const double v = m(r, c);
    if (!std::isfinite(v)) continue;
    const double d = v - out.mean;
    ss += d * d;
  }
  out.sd = std::sqrt(ss / static_cast<double>(out.finite));
  return out;
}

// Pearson over the columns where BOTH sensors are finite; 0 when fewer than
// three such columns survive or either masked row is flat (the same "no
// linear information" convention as stats::pearson).
double masked_pearson(const common::MatrixView& m, std::size_t i,
                      std::size_t j) {
  double sx = 0.0, sy = 0.0;
  std::size_t n = 0;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const double x = m(i, c);
    const double y = m(j, c);
    if (!std::isfinite(x) || !std::isfinite(y)) continue;
    sx += x;
    sy += y;
    ++n;
  }
  if (n < 3) return 0.0;
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    const double x = m(i, c);
    const double y = m(j, c);
    if (!std::isfinite(x) || !std::isfinite(y)) continue;
    const double dx = x - mx;
    const double dy = y - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  const double denom = std::sqrt(sxx) * std::sqrt(syy);
  if (denom == 0.0 || !std::isfinite(denom)) return 0.0;
  return std::clamp(sxy / denom, -1.0, 1.0);
}

}  // namespace

DriftReference make_drift_reference(const common::MatrixView& window,
                                    std::size_t max_pairs,
                                    std::uint64_t seed) {
  if (window.empty()) {
    throw std::invalid_argument("make_drift_reference: empty window");
  }
  if (max_pairs == 0) {
    throw std::invalid_argument("make_drift_reference: max_pairs must be > 0");
  }
  const std::size_t n = window.rows();
  DriftReference ref;
  ref.mean.resize(n);
  ref.sd.resize(n);
  for (std::size_t r = 0; r < n; ++r) {
    const Moments m = row_moments(window, r);
    ref.mean[r] = m.mean;
    ref.sd[r] = m.sd;
  }

  if (n < 2) return ref;  // No pairs to watch; mean shifts still score.
  const std::size_t all_pairs = n * (n - 1) / 2;
  if (all_pairs <= max_pairs) {
    ref.pairs.reserve(all_pairs);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        ref.pairs.push_back({static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(j), 0.0});
      }
    }
  } else {
    // Seeded rejection sample of distinct pairs: the same seed watches the
    // same pairs run-to-run, which the determinism tests pin.
    common::Rng rng(seed);
    std::vector<std::uint64_t> taken;
    taken.reserve(max_pairs);
    while (ref.pairs.size() < max_pairs) {
      std::size_t i = static_cast<std::size_t>(rng.uniform_int(n));
      std::size_t j = static_cast<std::size_t>(rng.uniform_int(n));
      if (i == j) continue;
      if (i > j) std::swap(i, j);
      const std::uint64_t key = static_cast<std::uint64_t>(i) << 32 | j;
      if (std::find(taken.begin(), taken.end(), key) != taken.end()) continue;
      taken.push_back(key);
      ref.pairs.push_back({static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(j), 0.0});
    }
  }
  for (DriftReference::Pair& p : ref.pairs) {
    p.r = masked_pearson(window, p.i, p.j);
  }
  return ref;
}

double drift_score(const common::MatrixView& window,
                   const DriftReference& ref) {
  if (ref.empty()) {
    throw std::invalid_argument("drift_score: empty reference");
  }
  if (window.rows() != ref.n_sensors()) {
    throw std::invalid_argument(
        "drift_score: window sensor count does not match the reference");
  }
  double mean_part = 0.0;
  std::size_t mean_terms = 0;
  for (std::size_t r = 0; r < window.rows(); ++r) {
    const Moments m = row_moments(window, r);
    if (m.finite == 0) continue;  // All-NaN sensor: no level evidence.
    mean_part += std::abs(m.mean - ref.mean[r]) / std::max(ref.sd[r], kSdFloor);
    ++mean_terms;
  }
  if (mean_terms > 0) mean_part /= static_cast<double>(mean_terms);

  if (ref.pairs.empty()) return mean_part;
  double corr_part = 0.0;
  for (const DriftReference::Pair& p : ref.pairs) {
    corr_part += std::abs(masked_pearson(window, p.i, p.j) - p.r);
  }
  corr_part /= static_cast<double>(ref.pairs.size());
  return 0.5 * (mean_part + corr_part);
}

}  // namespace csm::stats
