#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace csm::stats {

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double variance(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) {
    const double d = v - m;
    acc += d * d;
  }
  return acc / static_cast<double>(x.size());
}

double stddev(std::span<const double> x) { return std::sqrt(variance(x)); }

double covariance(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("covariance: length mismatch");
  }
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += (x[i] - mx) * (y[i] - my);
  }
  return acc / static_cast<double>(x.size());
}

double min(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("min: empty input");
  return *std::min_element(x.begin(), x.end());
}

double max(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("max: empty input");
  return *std::max_element(x.begin(), x.end());
}

namespace {

// Percentile of an already sorted buffer, linear interpolation between ranks.
double sorted_percentile(const std::vector<double>& sorted, double q) {
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double percentile(std::span<const double> x, double q) {
  if (x.empty()) throw std::invalid_argument("percentile: empty input");
  if (q < 0.0 || q > 100.0) {
    throw std::invalid_argument("percentile: q outside [0, 100]");
  }
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_percentile(sorted, q);
}

std::vector<double> percentiles(std::span<const double> x,
                                std::span<const double> qs) {
  if (x.empty()) throw std::invalid_argument("percentiles: empty input");
  std::vector<double> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (double q : qs) {
    if (q < 0.0 || q > 100.0) {
      throw std::invalid_argument("percentiles: q outside [0, 100]");
    }
    out.push_back(sorted_percentile(sorted, q));
  }
  return out;
}

double sum_of_changes(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  return x.back() - x.front();
}

double abs_sum_of_changes(std::span<const double> x) {
  if (x.size() < 2) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    acc += std::abs(x[i] - x[i - 1]);
  }
  return acc;
}

}  // namespace csm::stats
