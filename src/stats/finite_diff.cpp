#include "stats/finite_diff.hpp"

#include <stdexcept>

namespace csm::stats {

std::vector<double> backward_diff(std::span<const double> x) {
  std::vector<double> out(x.size(), 0.0);
  for (std::size_t i = 1; i < x.size(); ++i) out[i] = x[i] - x[i - 1];
  return out;
}

common::Matrix backward_diff_rows(const common::Matrix& s) {
  common::Matrix out(s.rows(), s.cols());
  for (std::size_t r = 0; r < s.rows(); ++r) {
    const auto src = s.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 1; c < src.size(); ++c) {
      dst[c] = src[c] - src[c - 1];
    }
  }
  return out;
}

common::Matrix backward_diff_rows_seeded(const common::Matrix& s,
                                         std::span<const double> prev_col) {
  if (prev_col.size() != s.rows()) {
    throw std::invalid_argument("backward_diff_rows_seeded: bad seed length");
  }
  common::Matrix out = backward_diff_rows(s);
  if (s.cols() == 0) return out;
  for (std::size_t r = 0; r < s.rows(); ++r) {
    out(r, 0) = s(r, 0) - prev_col[r];
  }
  return out;
}

}  // namespace csm::stats
