// Information-theoretic similarity metrics.
//
// Implements the Shannon entropy, Kullback-Leibler divergence and the
// Jensen-Shannon divergence, including the 2-D formulation of Eq. 4 used in
// Section IV-C of the paper: the value distributions of each data dimension
// (matrix row) are collapsed into a joint 2-D probability distribution
// (dimension axis x value axis), and the JS divergence is computed between
// the distribution of the original sorted data and that of the CS signatures.
// With base-2 logarithms the JS divergence lies in [0, 1].
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace csm::stats {

/// Shannon entropy (base 2) of a probability mass function. Zero-probability
/// entries contribute nothing; the input is assumed to sum to ~1.
double shannon_entropy(std::span<const double> pmf);

/// KL divergence D(p || q), base 2. Terms where p[i] == 0 contribute 0;
/// returns +infinity if p[i] > 0 while q[i] == 0.
double kl_divergence(std::span<const double> p, std::span<const double> q);

/// JS divergence between two pmfs, base 2, in [0, 1].
double js_divergence(std::span<const double> p, std::span<const double> q);

/// Builds the collapsed 2-D probability distribution of Eq. 4 for a sensor
/// matrix: row y of the result is the value histogram (over [lo, hi] with
/// `bins` bins) of matrix row y, normalised so the whole result sums to 1
/// (i.e. each row's pmf divided by the number of rows).
common::Matrix dimension_value_distribution(const common::Matrix& s,
                                            std::size_t bins, double lo,
                                            double hi);

/// JS divergence between the 2-D dimension/value distributions of two
/// matrices with the same number of rows (Eq. 4). The histogram range is the
/// combined min/max of both matrices. Throws std::invalid_argument if the
/// row counts differ or either matrix is empty.
double js_divergence_2d(const common::Matrix& a, const common::Matrix& b,
                        std::size_t bins = 64);

}  // namespace csm::stats
