// Symmetric eigendecomposition (cyclic Jacobi) and covariance matrices.
//
// Substrate for the PCA comparator: the paper's related-work section
// (Section I-A) discusses PCA-style dimensionality reduction and notes it
// performs poorly on ODA problems like fault detection where the critical
// indicators do not dominate the variance — the ablation benchmark
// reproduces that claim, and needs an eigensolver to do it. Jacobi rotation
// is slow for huge matrices but exact, dependency-free and robust, which is
// what a few-hundred-sensor covariance needs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"

namespace csm::stats {

/// Covariance matrix of the rows of `s` (each row is one variable observed
/// over the columns); divides by N. Result is n x n symmetric.
common::Matrix covariance_matrix(const common::Matrix& s);

/// Eigenvalues and eigenvectors of a symmetric matrix.
struct EigenDecomposition {
  std::vector<double> values;  ///< Sorted descending.
  common::Matrix vectors;      ///< Row i = unit eigenvector of values[i].
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Throws
/// std::invalid_argument if `a` is not square or empty. `max_sweeps` bounds
/// the iteration; convergence to ~1e-12 off-diagonal mass typically takes
/// fewer than 15 sweeps.
EigenDecomposition jacobi_eigen(const common::Matrix& a,
                                std::size_t max_sweeps = 50);

}  // namespace csm::stats
