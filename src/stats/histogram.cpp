#include "stats/histogram.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace csm::stats {

Histogram::Histogram(std::size_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
  if (hi < lo) throw std::invalid_argument("Histogram: hi < lo");
}

std::size_t Histogram::bin_index(double v) const noexcept {
  // NaN must not reach the double->size_t cast below (UB); it is treated as
  // underflow and lands in bin 0.
  if (std::isnan(v) || v <= lo_ || hi_ == lo_) return 0;
  if (v >= hi_) return counts_.size() - 1;
  const double frac = (v - lo_) / (hi_ - lo_);
  const double scaled = frac * static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>(scaled);
  return idx >= counts_.size() ? counts_.size() - 1 : idx;
}

void Histogram::add(double v) noexcept {
  if (std::isnan(v) || v < lo_) {
    ++underflow_;
  } else if (v > hi_) {
    ++overflow_;
  }
  ++counts_[bin_index(v)];
  ++total_;
}

void Histogram::add(std::span<const double> values) noexcept {
  for (double v : values) add(v);
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

}  // namespace csm::stats
