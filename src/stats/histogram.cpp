#include "stats/histogram.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace csm::stats {

Histogram::Histogram(std::size_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
  if (hi < lo) throw std::invalid_argument("Histogram: hi < lo");
}

Histogram::Histogram(double lo, double hi, std::vector<std::uint64_t> counts,
                     std::uint64_t underflow, std::uint64_t overflow)
    : lo_(lo), hi_(hi), counts_(std::move(counts)), underflow_(underflow),
      overflow_(overflow) {
  if (counts_.empty()) throw std::invalid_argument("Histogram: zero bins");
  if (hi < lo) throw std::invalid_argument("Histogram: hi < lo");
  for (std::uint64_t c : counts_) total_ += c;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument(
        "Histogram::merge: bin count and range must match");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

std::size_t Histogram::bin_index(double v) const noexcept {
  // NaN must not reach the double->size_t cast below (UB); it is treated as
  // underflow and lands in bin 0.
  if (std::isnan(v) || v <= lo_ || hi_ == lo_) return 0;
  if (v >= hi_) return counts_.size() - 1;
  const double frac = (v - lo_) / (hi_ - lo_);
  const double scaled = frac * static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>(scaled);
  return idx >= counts_.size() ? counts_.size() - 1 : idx;
}

void Histogram::add(double v) noexcept {
  if (std::isnan(v) || v < lo_) {
    ++underflow_;
  } else if (v > hi_) {
    ++overflow_;
  }
  ++counts_[bin_index(v)];
  ++total_;
}

void Histogram::add(std::span<const double> values) noexcept {
  for (double v : values) add(v);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  if (std::isnan(q) || q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Ceil without floating error at the q = 1.0 end: the target count is at
  // least 1 so an all-in-one-bin histogram reports that bin's upper edge.
  const double want = q * static_cast<double>(total_);
  std::uint64_t target = static_cast<std::uint64_t>(want);
  if (static_cast<double>(target) < want) ++target;
  if (target == 0) target = 1;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return lo_ + width * static_cast<double>(i + 1);
    }
  }
  return hi_;
}

std::vector<double> Histogram::pmf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

}  // namespace csm::stats
