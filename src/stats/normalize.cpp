#include "stats/normalize.hpp"

#include <algorithm>
#include <stdexcept>

namespace csm::stats {

std::vector<MinMaxBounds> row_bounds(const common::MatrixView& s) {
  std::vector<MinMaxBounds> out(s.rows());
  if (s.cols() == 0) return out;
  for (std::size_t r = 0; r < s.rows(); ++r) {
    double lo = s(r, 0);
    double hi = lo;
    for (std::size_t c = 1; c < s.cols(); ++c) {
      const double v = s(r, c);
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    out[r] = MinMaxBounds{lo, hi};
  }
  return out;
}

common::Matrix normalize_rows(const common::Matrix& s,
                              const std::vector<MinMaxBounds>& bounds) {
  common::Matrix out = s;
  normalize_rows_inplace(out, bounds);
  return out;
}

void normalize_rows_inplace(common::Matrix& s,
                            const std::vector<MinMaxBounds>& bounds) {
  if (bounds.size() != s.rows()) {
    throw std::invalid_argument("normalize_rows: bounds/row count mismatch");
  }
  for (std::size_t r = 0; r < s.rows(); ++r) {
    const MinMaxBounds& b = bounds[r];
    for (double& v : s.row(r)) v = b.normalize(v);
  }
}

}  // namespace csm::stats
