#include "stats/normalize.hpp"

#include <algorithm>
#include <stdexcept>

namespace csm::stats {

std::vector<MinMaxBounds> row_bounds(const common::Matrix& s) {
  std::vector<MinMaxBounds> out(s.rows());
  for (std::size_t r = 0; r < s.rows(); ++r) {
    const auto row = s.row(r);
    if (row.empty()) continue;
    const auto [lo_it, hi_it] = std::minmax_element(row.begin(), row.end());
    out[r] = MinMaxBounds{*lo_it, *hi_it};
  }
  return out;
}

common::Matrix normalize_rows(const common::Matrix& s,
                              const std::vector<MinMaxBounds>& bounds) {
  common::Matrix out = s;
  normalize_rows_inplace(out, bounds);
  return out;
}

void normalize_rows_inplace(common::Matrix& s,
                            const std::vector<MinMaxBounds>& bounds) {
  if (bounds.size() != s.rows()) {
    throw std::invalid_argument("normalize_rows: bounds/row count mismatch");
  }
  for (std::size_t r = 0; r < s.rows(); ++r) {
    const MinMaxBounds& b = bounds[r];
    for (double& v : s.row(r)) v = b.normalize(v);
  }
}

}  // namespace csm::stats
