#include "stats/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/descriptive.hpp"

namespace csm::stats {

common::Matrix covariance_matrix(const common::Matrix& s) {
  if (s.empty()) {
    throw std::invalid_argument("covariance_matrix: empty matrix");
  }
  const std::size_t n = s.rows();
  const std::size_t t = s.cols();
  std::vector<double> means(n);
  for (std::size_t i = 0; i < n; ++i) means[i] = mean(s.row(i));
  common::Matrix cov(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = s.row(i);
    for (std::size_t j = i; j < n; ++j) {
      const auto xj = s.row(j);
      double acc = 0.0;
      for (std::size_t k = 0; k < t; ++k) {
        acc += (xi[k] - means[i]) * (xj[k] - means[j]);
      }
      acc /= static_cast<double>(t);
      cov(i, j) = acc;
      cov(j, i) = acc;
    }
  }
  return cov;
}

EigenDecomposition jacobi_eigen(const common::Matrix& a,
                                std::size_t max_sweeps) {
  const std::size_t n = a.rows();
  if (n == 0 || a.cols() != n) {
    throw std::invalid_argument("jacobi_eigen: matrix must be square");
  }
  common::Matrix m = a;            // Working copy, driven to diagonal form.
  common::Matrix v(n, n);          // Accumulated rotations (row-major V^T).
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (off < 1e-24) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::abs(apq) < 1e-300) continue;
        // Classic Jacobi rotation annihilating m(p, q).
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double sign = theta >= 0.0 ? 1.0 : -1.0;
        const double t_rot =
            sign / (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t_rot * t_rot + 1.0);
        const double s = t_rot * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vpk = v(p, k);
          const double vqk = v(q, k);
          v(p, k) = c * vpk - s * vqk;
          v(q, k) = s * vpk + c * vqk;
        }
      }
    }
  }

  // Sort eigenpairs by eigenvalue, descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return m(x, x) > m(y, y);
  });

  EigenDecomposition out;
  out.values.reserve(n);
  out.vectors = common::Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.values.push_back(m(order[i], order[i]));
    out.vectors.set_row(i, v.row(order[i]));
  }
  return out;
}

}  // namespace csm::stats
