// Per-row min-max normalisation.
//
// The CS training stage records the lower/upper bound of every sensor row;
// the sorting stage then rescales incoming windows into [0, 1] using those
// *stored* bounds (new data may exceed them, so values are clamped). Rows
// with a degenerate range (constant sensors) normalise to 0.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "common/matrix_view.hpp"

namespace csm::stats {

/// Lower/upper bound of one sensor row.
struct MinMaxBounds {
  double lo = 0.0;
  double hi = 0.0;

  /// Maps v into [0, 1], clamping values outside the training range.
  /// Degenerate bounds (hi <= lo) map everything to 0.
  double normalize(double v) const noexcept {
    if (hi <= lo) return 0.0;
    const double u = (v - lo) / (hi - lo);
    return u < 0.0 ? 0.0 : (u > 1.0 ? 1.0 : u);
  }

  /// Inverse map from [0, 1] back to the original scale.
  double denormalize(double u) const noexcept { return lo + u * (hi - lo); }

  bool operator==(const MinMaxBounds&) const noexcept = default;
};

/// Computes per-row bounds of `s`. Accepts any window view (a
/// common::Matrix converts implicitly), so ring-buffer history can be
/// scanned in place.
std::vector<MinMaxBounds> row_bounds(const common::MatrixView& s);

/// Returns a copy of `s` with every row mapped through its bounds.
/// Throws std::invalid_argument if bounds.size() != s.rows().
common::Matrix normalize_rows(const common::Matrix& s,
                              const std::vector<MinMaxBounds>& bounds);

/// In-place variant of normalize_rows.
void normalize_rows_inplace(common::Matrix& s,
                            const std::vector<MinMaxBounds>& bounds);

}  // namespace csm::stats
