// Fixed-width histograms.
//
// The Jensen-Shannon divergence of Eq. 4 compares the per-dimension value
// distributions of the raw (sorted) data with those of the CS signatures; the
// distributions are estimated with equal-width histograms over a shared range.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace csm::stats {

/// Equal-width histogram over the closed range [lo, hi]. Values outside the
/// range are clamped to the first/last bin so probability mass is conserved.
class Histogram {
 public:
  /// Throws std::invalid_argument if bins == 0 or hi < lo.
  Histogram(std::size_t bins, double lo, double hi);

  void add(double v) noexcept;
  void add(std::span<const double> values) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }

  /// Index of the bin that v falls into.
  std::size_t bin_index(double v) const noexcept;

  /// Probability mass function; all zeros if the histogram is empty.
  std::vector<double> pmf() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace csm::stats
