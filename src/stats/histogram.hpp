// Fixed-width histograms.
//
// The Jensen-Shannon divergence of Eq. 4 compares the per-dimension value
// distributions of the raw (sorted) data with those of the CS signatures; the
// distributions are estimated with equal-width histograms over a shared range.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace csm::stats {

/// Equal-width histogram over the closed range [lo, hi].
///
/// Clamp policy: values outside the range are NOT dropped — underflow
/// (v < lo) lands in the first bin and overflow (v > hi) in the last, so
/// probability mass is conserved and pmf() always sums to 1. That is the
/// right behaviour for the JS-divergence comparison (both sides share one
/// range), but it silently skews the tail bins when the range is chosen too
/// narrow; underflow()/overflow() count the clamped samples so callers can
/// detect a mis-sized range instead of ingesting a distorted PMF.
class Histogram {
 public:
  /// Throws std::invalid_argument if bins == 0 or hi < lo.
  Histogram(std::size_t bins, double lo, double hi);

  /// Restores a histogram from previously captured state (e.g. one scraped
  /// over the wire by the fleet daemon protocol). `total` is recomputed as
  /// the sum of `counts`. Throws std::invalid_argument on empty counts or
  /// hi < lo.
  Histogram(double lo, double hi, std::vector<std::uint64_t> counts,
            std::uint64_t underflow, std::uint64_t overflow);

  void add(double v) noexcept;
  void add(std::span<const double> values) noexcept;

  /// Accumulates `other` into this histogram (counts, total, clamp
  /// counters). Throws std::invalid_argument unless both histograms share
  /// the same bin count and range — merging differently shaped histograms
  /// would silently redistribute mass.
  void merge(const Histogram& other);

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t total() const noexcept { return total_; }

  /// Samples clamped into bin 0 because v < lo (v == lo is in range).
  /// NaN samples also land in bin 0 and count here.
  std::uint64_t underflow() const noexcept { return underflow_; }
  /// Samples clamped into the last bin because v > hi (v == hi is in range).
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Index of the bin that v falls into, after clamping out-of-range values
  /// to the first/last bin.
  std::size_t bin_index(double v) const noexcept;

  /// Probability mass function; all zeros if the histogram is empty.
  std::vector<double> pmf() const;

  /// Upper edge of the first bin whose cumulative count reaches q * total()
  /// — a conservative (never under-reporting) quantile estimate, the value
  /// operators read as "p99 ingest latency". q is clamped to [0, 1];
  /// returns lo() for an empty histogram. Remember the clamp policy:
  /// samples beyond hi() sit in the last bin, so a quantile that lands
  /// there means "at least hi()" (check overflow()).
  double quantile(double q) const noexcept;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace csm::stats
