// Shared experiment driver: segments -> signature datasets -> ML scores.
//
// Implements the evaluation protocol of Section IV-A: for each segment and
// signature method, every sliding window that fits inside one labelled run
// (leaving room for the regression horizon) becomes one feature set; the
// feature sets are shuffled and 5-fold cross-validated with a random forest
// (50 estimators). The driver also measures dataset-generation and
// cross-validation times (Fig. 3a) and the CS compression-fidelity metric of
// Eq. 4 (Fig. 4a).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/signature_method.hpp"
#include "data/dataset.hpp"
#include "hpcoda/segment.hpp"
#include "ml/cross_validation.hpp"

namespace csm::harness {

/// A named way to build a trained signature method for one component block.
/// Trainable methods (CS, PCA) fit on the block's sensors inside `make`;
/// the stateless baselines ignore the block.
struct BlockMethod {
  std::string name;
  std::function<std::unique_ptr<core::SignatureMethod>(
      const hpcoda::ComponentBlock&)>
      make;
};

/// Registry-backed entry: parses `spec` (e.g. "cs:blocks=20,real-only",
/// "tuncer", "pca:components=8" — see baselines::default_registry()) and
/// fits the method on each block's sensors through the uniform
/// SignatureMethod::fit() lifecycle. Throws std::invalid_argument on an
/// unknown method or bad parameters.
BlockMethod method_from_spec(const std::string& spec);

/// The paper's method line-up: Tuncer, Bodik, Lan, CS-5/10/20/40/All
/// (Fig. 3), queried from the method registry. `real_only` switches the CS
/// entries to the "-R" variant.
std::vector<BlockMethod> standard_methods(bool real_only = false);

/// Only the CS entries (for Fig. 4 sweeps).
std::vector<BlockMethod> cs_methods(bool real_only = false);

/// Builds a CS BlockMethod with an explicit block count (0 = CS-All).
BlockMethod make_cs_method(std::size_t blocks, bool real_only = false);

/// Extracts the feature-set dataset of `segment` under `method`.
/// Classification segments label each window with its run's class;
/// regression segments average the block's target series over the
/// `target_horizon` samples following the window.
data::Dataset build_dataset(const hpcoda::Segment& segment,
                            const BlockMethod& method);

/// Result row of the Fig. 3 experiment.
struct MethodEvaluation {
  std::string segment;
  std::string method;
  std::size_t signature_size = 0;   ///< Feature-vector length (Fig. 3b).
  std::size_t n_samples = 0;        ///< Feature sets evaluated.
  double generation_seconds = 0.0;  ///< Dataset generation (Fig. 3a bottom).
  double cv_seconds = 0.0;          ///< Cross-validation (Fig. 3a top).
  double ml_score = 0.0;            ///< Macro F1 or 1-NRMSE (Fig. 3c).
};

/// Random-forest factories with the paper's hyper-parameters (50 trees;
/// Gini). `seed` controls the forests' randomness.
ml::ModelFactories random_forest_factories(std::uint64_t seed = 0x5eed);

/// MLP factories (2 hidden layers x 100 ReLU units).
ml::ModelFactories mlp_factories(std::uint64_t seed = 0x31f);

/// Runs the full protocol for one method on one segment: build dataset,
/// shuffle, 5-fold cross-validate, collect timings. `repeats` averages the
/// ML score over multiple shuffled CV runs (the paper repeats 5 times).
MethodEvaluation evaluate_method(const hpcoda::Segment& segment,
                                 const BlockMethod& method,
                                 const ml::ModelFactories& models,
                                 std::size_t k_folds = 5,
                                 std::size_t repeats = 1,
                                 std::uint64_t shuffle_seed = 7);

/// Average Eq. 4 JS divergence of a CS configuration on a segment: for each
/// block, the real signature channel is compared against the sorted
/// normalised data and the imaginary channel against its derivatives
/// (signatures are nearest-neighbour-upscaled back to n dimensions first);
/// block values are averaged. With `real_only` the imaginary channel is
/// replaced by zeros, modelling the information lost by dropping it.
double cs_js_divergence(const hpcoda::Segment& segment, std::size_t blocks,
                        bool real_only = false, std::size_t bins = 64);

/// Stacks all component blocks of a segment vertically into one sensor
/// matrix (e.g. the ~832-dimension 16-node view of Figs. 2 and 6). Requires
/// every block to share the same column count.
common::Matrix stack_blocks(const hpcoda::Segment& segment);

/// Fixed-width table printing helper shared by the bench binaries.
void print_table_row(const std::vector<std::string>& cells,
                     const std::vector<int>& widths);

}  // namespace csm::harness
