#include "harness/summary.hpp"

#include <cstdio>

namespace csm::harness {

SegmentSummary summarize(const hpcoda::Segment& segment) {
  SegmentSummary s;
  s.name = segment.name;
  s.nodes = segment.n_blocks();
  s.sensors = segment.n_sensors_per_block();
  s.data_points = segment.data_points();
  s.sampling_interval_s = static_cast<double>(segment.interval_ms) / 1e3;
  s.length_hours = static_cast<double>(segment.length()) *
                   s.sampling_interval_s / 3600.0;
  s.feature_sets = segment.feature_set_count();
  s.wl = segment.window.length;
  s.ws = segment.window.step;
  return s;
}

std::string format_summary(const SegmentSummary& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-20s %5zu %8zu %10zu %9.2fh %8.1fs %9zu %6zu %6zu",
                s.name.c_str(), s.nodes, s.sensors, s.data_points,
                s.length_hours, s.sampling_interval_s, s.feature_sets, s.wl,
                s.ws);
  return buf;
}

}  // namespace csm::harness
