// Table I style segment summaries.
#pragma once

#include <string>

#include "hpcoda/segment.hpp"

namespace csm::harness {

/// One row of the Table I reproduction.
struct SegmentSummary {
  std::string name;
  std::size_t nodes = 0;
  std::size_t sensors = 0;         ///< Per component block.
  std::size_t data_points = 0;
  double length_hours = 0.0;
  double sampling_interval_s = 0.0;
  std::size_t feature_sets = 0;
  std::size_t wl = 0;
  std::size_t ws = 0;
};

/// Computes the summary row for a segment.
SegmentSummary summarize(const hpcoda::Segment& segment);

/// Formats a summary as a Table I style line.
std::string format_summary(const SegmentSummary& summary);

}  // namespace csm::harness
