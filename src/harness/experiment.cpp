#include "harness/experiment.hpp"

#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "baselines/registry.hpp"
#include "common/timer.hpp"
#include "core/method_registry.hpp"
#include "core/training.hpp"
#include "ml/mlp.hpp"
#include "ml/random_forest.hpp"
#include "stats/divergence.hpp"
#include "stats/finite_diff.hpp"
#include "stats/interpolate.hpp"

namespace csm::harness {

BlockMethod method_from_spec(const std::string& spec_text) {
  const core::MethodSpec spec = core::MethodSpec::parse(spec_text);
  // Eagerly construct a prototype so bad specs throw here, not inside a
  // worker, and so the display name matches the configured parameters.
  const auto prototype = baselines::default_registry().create(spec);
  return BlockMethod{prototype->name(),
                     [spec](const hpcoda::ComponentBlock& block) {
                       return baselines::default_registry()
                           .create(spec)
                           ->fit(block.sensors);
                     }};
}

BlockMethod make_cs_method(std::size_t blocks, bool real_only) {
  std::string spec = "cs:blocks=" + std::to_string(blocks);
  if (real_only) spec += ",real-only";
  return method_from_spec(spec);
}

std::vector<BlockMethod> standard_methods(bool real_only) {
  std::vector<BlockMethod> out;
  for (const char* spec : {"tuncer", "bodik", "lan"}) {
    out.push_back(method_from_spec(spec));
  }
  for (BlockMethod& cs : cs_methods(real_only)) out.push_back(std::move(cs));
  return out;
}

std::vector<BlockMethod> cs_methods(bool real_only) {
  std::vector<BlockMethod> out;
  for (std::size_t blocks : {std::size_t{5}, std::size_t{10}, std::size_t{20},
                             std::size_t{40}, std::size_t{0}}) {
    out.push_back(make_cs_method(blocks, real_only));
  }
  return out;
}

namespace {

// Mean of target[begin, end).
double mean_target(const std::vector<double>& target, std::size_t begin,
                   std::size_t end) {
  double acc = 0.0;
  for (std::size_t i = begin; i < end; ++i) acc += target[i];
  return acc / static_cast<double>(end - begin);
}

}  // namespace

data::Dataset build_dataset(const hpcoda::Segment& segment,
                            const BlockMethod& method) {
  segment.window.validate();
  data::Dataset out;
  out.class_names = segment.class_names;
  const bool regression = segment.task == data::TaskKind::kRegression;

  for (const hpcoda::ComponentBlock& block : segment.blocks) {
    const std::unique_ptr<core::SignatureMethod> sig = method.make(block);
    for (const hpcoda::RunInfo& run : segment.runs) {
      // Windows must fit inside the run, leaving room for the horizon.
      const std::size_t usable_end =
          run.end > segment.target_horizon ? run.end - segment.target_horizon
                                           : 0;
      if (usable_end <= run.begin ||
          usable_end - run.begin < segment.window.length) {
        continue;
      }
      const std::size_t span = usable_end - run.begin;
      const std::size_t n_windows =
          (span - segment.window.length) / segment.window.step + 1;
      for (std::size_t w = 0; w < n_windows; ++w) {
        const std::size_t first = run.begin + w * segment.window.step;
        const common::Matrix window =
            block.sensors.sub_cols(first, segment.window.length);
        out.features.append_row(sig->compute(window));
        if (regression) {
          const std::size_t horizon_begin = first + segment.window.length;
          out.targets.push_back(mean_target(
              block.target, horizon_begin,
              horizon_begin + segment.target_horizon));
        } else {
          out.labels.push_back(run.label);
        }
      }
    }
  }
  out.validate();
  return out;
}

ml::ModelFactories random_forest_factories(std::uint64_t seed) {
  ml::ModelFactories factories;
  factories.classifier = [seed]() -> std::unique_ptr<ml::Classifier> {
    ml::ForestParams params;
    params.seed = seed;
    return std::make_unique<ml::RandomForestClassifier>(params);
  };
  factories.regressor = [seed]() -> std::unique_ptr<ml::Regressor> {
    ml::ForestParams params;
    params.seed = seed;
    // Deviation from the scikit-learn regression default (all features per
    // split): sqrt sampling keeps the single-core harness fast while leaving
    // scores within noise of the exhaustive setting on these datasets.
    params.feature_mode = ml::MaxFeaturesMode::kSqrt;
    return std::make_unique<ml::RandomForestRegressor>(params);
  };
  return factories;
}

ml::ModelFactories mlp_factories(std::uint64_t seed) {
  ml::ModelFactories factories;
  factories.classifier = [seed]() -> std::unique_ptr<ml::Classifier> {
    ml::MlpParams params;
    params.seed = seed;
    return std::make_unique<ml::MlpClassifier>(params);
  };
  factories.regressor = [seed]() -> std::unique_ptr<ml::Regressor> {
    ml::MlpParams params;
    params.seed = seed;
    return std::make_unique<ml::MlpRegressor>(params);
  };
  return factories;
}

MethodEvaluation evaluate_method(const hpcoda::Segment& segment,
                                 const BlockMethod& method,
                                 const ml::ModelFactories& models,
                                 std::size_t k_folds, std::size_t repeats,
                                 std::uint64_t shuffle_seed) {
  MethodEvaluation result;
  result.segment = segment.name;
  result.method = method.name;

  common::Timer gen_timer;
  data::Dataset ds = build_dataset(segment, method);
  result.generation_seconds = gen_timer.seconds();
  result.signature_size = ds.feature_length();
  result.n_samples = ds.size();

  common::Rng rng(shuffle_seed);
  double score_acc = 0.0;
  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, repeats); ++rep) {
    ds.shuffle(rng);
    const ml::CvResult cv = ml::cross_validate(ds, k_folds, models, rng);
    score_acc += cv.mean_score;
    result.cv_seconds += cv.train_seconds + cv.test_seconds;
  }
  result.ml_score = score_acc / static_cast<double>(std::max<std::size_t>(
                                    1, repeats));
  return result;
}

double cs_js_divergence(const hpcoda::Segment& segment, std::size_t blocks,
                        bool real_only, std::size_t bins) {
  double acc = 0.0;
  for (const hpcoda::ComponentBlock& block : segment.blocks) {
    const core::CsPipeline pipeline(core::train(block.sensors),
                                    core::CsOptions{blocks, real_only});
    // Reference: the sorted normalised data and its derivatives.
    const common::Matrix sorted = pipeline.sorted(block.sensors);
    const common::Matrix derivs = stats::backward_diff_rows(sorted);
    // Compressed: the signature heatmaps, upscaled back to n dimensions.
    const std::vector<core::Signature> sigs =
        pipeline.transform(block.sensors, segment.window);
    auto [re, im] = core::signature_heatmaps(sigs);
    if (real_only) im.fill(0.0);  // Information dropped with the channel.
    const common::Matrix re_up =
        stats::resize_rows_nearest(re, sorted.rows());
    const common::Matrix im_up =
        stats::resize_rows_nearest(im, sorted.rows());
    const double js_re = stats::js_divergence_2d(sorted, re_up, bins);
    const double js_im = stats::js_divergence_2d(derivs, im_up, bins);
    acc += 0.5 * (js_re + js_im);
  }
  return acc / static_cast<double>(segment.blocks.size());
}

common::Matrix stack_blocks(const hpcoda::Segment& segment) {
  common::Matrix out;
  for (const hpcoda::ComponentBlock& block : segment.blocks) {
    out.append_rows(block.sensors);
  }
  return out;
}

void print_table_row(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-*s", width, cells[i].c_str());
    line += buf;
  }
  std::cout << line << '\n';
}

}  // namespace csm::harness
