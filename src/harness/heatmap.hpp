// Heatmap rendering for the visual experiments (Figs. 2, 6, 7).
//
// Signature heatmaps are rendered either as ASCII art (for terminal output
// from the benches/examples) or as binary PGM images (portable graymap, a
// dependency-free format every image viewer opens). Darker = higher value,
// matching the paper's figures.
#pragma once

#include <filesystem>
#include <string>

#include "common/matrix.hpp"

namespace csm::harness {

/// Renders the matrix as `rows` x `cols` ASCII art (values min-max scaled to
/// a 10-level shade ramp). The matrix is resampled bilinearly to the
/// requested character grid.
std::string ascii_heatmap(const common::Matrix& m, std::size_t rows = 24,
                          std::size_t cols = 72);

/// Writes the matrix as an 8-bit binary PGM image (min-max scaled; dark =
/// high, matching the paper). One matrix cell = one pixel.
void write_pgm(const std::filesystem::path& file, const common::Matrix& m);

}  // namespace csm::harness
