#include "harness/heatmap.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "stats/interpolate.hpp"

namespace csm::harness {

namespace {

// Min/max over the whole matrix; degenerate ranges map everything to 0.
std::pair<double, double> value_range(const common::Matrix& m) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < m.size(); ++i) {
    lo = std::min(lo, m.data()[i]);
    hi = std::max(hi, m.data()[i]);
  }
  return {lo, hi};
}

double normalized(double v, double lo, double hi) {
  return hi > lo ? (v - lo) / (hi - lo) : 0.0;
}

}  // namespace

std::string ascii_heatmap(const common::Matrix& m, std::size_t rows,
                          std::size_t cols) {
  if (m.empty()) throw std::invalid_argument("ascii_heatmap: empty matrix");
  static constexpr char kRamp[] = " .:-=+*#%@";
  static constexpr std::size_t kLevels = sizeof(kRamp) - 2;
  const common::Matrix scaled = stats::resize_bilinear(
      m, std::min(rows, m.rows()), std::min(cols, m.cols()));
  const auto [lo, hi] = value_range(scaled);
  std::string out;
  out.reserve((scaled.cols() + 1) * scaled.rows());
  for (std::size_t r = 0; r < scaled.rows(); ++r) {
    for (std::size_t c = 0; c < scaled.cols(); ++c) {
      const double u = normalized(scaled(r, c), lo, hi);
      out += kRamp[static_cast<std::size_t>(u * static_cast<double>(kLevels))];
    }
    out += '\n';
  }
  return out;
}

void write_pgm(const std::filesystem::path& file, const common::Matrix& m) {
  if (m.empty()) throw std::invalid_argument("write_pgm: empty matrix");
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + file.string());
  out << "P5\n" << m.cols() << ' ' << m.rows() << "\n255\n";
  const auto [lo, hi] = value_range(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      // Dark = high value, like the paper's figures.
      const double u = 1.0 - normalized(m(r, c), lo, hi);
      out.put(static_cast<char>(static_cast<unsigned char>(u * 255.0)));
    }
  }
  if (!out) throw std::runtime_error("write_pgm: write failed");
}

}  // namespace csm::harness
