#include "data/time_series.hpp"

#include <algorithm>

namespace csm::data {

bool TimeSeries::is_sorted() const noexcept {
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i].timestamp <= samples[i - 1].timestamp) return false;
  }
  return true;
}

void TimeSeries::sort_by_time() {
  std::stable_sort(samples.begin(), samples.end(),
                   [](const Sample& a, const Sample& b) {
                     return a.timestamp < b.timestamp;
                   });
}

std::vector<double> TimeSeries::timestamps_as_double() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const Sample& s : samples) {
    out.push_back(static_cast<double>(s.timestamp));
  }
  return out;
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const Sample& s : samples) out.push_back(s.value);
  return out;
}

}  // namespace csm::data
