// Raw sensor time-series: the on-disk unit of the HPC-ODA collection.
//
// Each sensor in HPC-ODA is stored as a separate CSV file of
// time-stamp/value pairs. Series from different sensors are generally *not*
// aligned (different sampling phases or rates), so the library carries
// explicit timestamps until alignment (see alignment.hpp) produces a dense
// sensor matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace csm::data {

/// One monitoring sample.
struct Sample {
  std::int64_t timestamp = 0;  ///< e.g. milliseconds since epoch.
  double value = 0.0;

  bool operator==(const Sample&) const = default;
};

/// A named, time-ordered sequence of samples from one sensor.
struct TimeSeries {
  std::string name;
  std::vector<Sample> samples;

  bool empty() const noexcept { return samples.empty(); }
  std::size_t size() const noexcept { return samples.size(); }

  std::int64_t first_timestamp() const { return samples.front().timestamp; }
  std::int64_t last_timestamp() const { return samples.back().timestamp; }

  /// True if timestamps are strictly increasing.
  bool is_sorted() const noexcept;

  /// Sorts samples by timestamp (stable; keeps duplicate order).
  void sort_by_time();

  /// Splits into separate timestamp / value vectors (for interpolation).
  std::vector<double> timestamps_as_double() const;
  std::vector<double> values() const;
};

}  // namespace csm::data
