// Sliding-window extraction over sensor matrices.
//
// A signature method consumes sub-matrices S^w of the sensor matrix S with
// `wl` columns (the aggregation window) taken every `ws` columns (the step) —
// Section III-A. WindowSpec enumerates the windows that fit in a matrix of t
// columns; SlidingWindows iterates them as column ranges without copying.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "common/matrix.hpp"

namespace csm::data {

/// Aggregation window parameters (in samples).
struct WindowSpec {
  std::size_t length = 1;  ///< wl: columns aggregated into one signature.
  std::size_t step = 1;    ///< ws: columns between successive windows.

  /// Number of windows that fit into t columns (0 if t < length).
  std::size_t count(std::size_t t) const noexcept {
    if (length == 0 || step == 0 || t < length) return 0;
    return (t - length) / step + 1;
  }

  /// First column of window w.
  std::size_t start(std::size_t w) const noexcept { return w * step; }

  /// Throws std::invalid_argument on zero length/step.
  void validate() const {
    if (length == 0) throw std::invalid_argument("WindowSpec: zero length");
    if (step == 0) throw std::invalid_argument("WindowSpec: zero step");
  }
};

/// One window: a copied sub-matrix plus its position in the source.
struct Window {
  common::Matrix data;
  std::size_t first_col = 0;
};

/// Materialises all windows of `s` (copies; suitable for offline dataset
/// generation). For the streaming path use WindowSpec::count/start and
/// Matrix::sub_cols directly.
std::vector<Window> extract_windows(const common::Matrix& s,
                                    const WindowSpec& spec);

}  // namespace csm::data
