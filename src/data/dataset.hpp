// Labelled feature-set datasets for the ML substrate.
//
// After signature extraction each window becomes one feature vector (one row)
// paired with either an integer class label (Fault / Application /
// Cross-Architecture use cases) or a real-valued regression target (Power /
// Infrastructure). The same container feeds cross-validation, and supports
// the shuffling and merging steps of Sections IV-A and IV-F.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace csm::data {

/// Whether a dataset carries class labels or regression targets.
enum class TaskKind { kClassification, kRegression };

/// Feature matrix (rows = samples) plus per-sample labels/targets.
struct Dataset {
  common::Matrix features;          ///< samples x feature-length.
  std::vector<int> labels;          ///< classification labels, else empty.
  std::vector<double> targets;      ///< regression targets, else empty.
  std::vector<std::string> class_names;  ///< optional, indexed by label.

  TaskKind kind() const noexcept {
    return labels.empty() ? TaskKind::kRegression : TaskKind::kClassification;
  }

  std::size_t size() const noexcept { return features.rows(); }
  std::size_t feature_length() const noexcept { return features.cols(); }

  /// Number of distinct classes (max label + 1); 0 for regression sets.
  std::size_t n_classes() const noexcept;

  /// Verifies internal consistency (label/target counts match rows, labels
  /// non-negative); throws std::invalid_argument otherwise.
  void validate() const;

  /// Randomly permutes samples (features and labels/targets together).
  void shuffle(common::Rng& rng);

  /// Appends another dataset of the same kind and feature length.
  void merge(const Dataset& other);

  /// Returns the subset given by row indices.
  Dataset subset(const std::vector<std::size_t>& indices) const;
};

}  // namespace csm::data
