#include "data/feature_csv.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace csm::data {

namespace {

double parse_double(const std::string& token, std::size_t line_no) {
  double value = 0.0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) {
    throw std::runtime_error("feature CSV line " + std::to_string(line_no) +
                             ": bad number '" + token + "'");
  }
  return value;
}

}  // namespace

void write_feature_csv(const std::filesystem::path& file, const Dataset& ds) {
  ds.validate();
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_feature_csv: cannot open " +
                             file.string());
  }
  const bool regression = ds.kind() == TaskKind::kRegression;
  for (std::size_t c = 0; c < ds.feature_length(); ++c) {
    out << 'f' << c << ',';
  }
  out << (regression ? "target" : "label") << '\n';

  char buf[32];
  for (std::size_t r = 0; r < ds.size(); ++r) {
    const auto row = ds.features.row(r);
    for (double v : row) {
      std::snprintf(buf, sizeof(buf), "%.17g,", v);
      out << buf;
    }
    if (regression) {
      std::snprintf(buf, sizeof(buf), "%.17g", ds.targets[r]);
      out << buf << '\n';
    } else {
      out << ds.labels[r] << '\n';
    }
  }
  if (!out) {
    throw std::runtime_error("write_feature_csv: write failed on " +
                             file.string());
  }
}

Dataset read_feature_csv(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_feature_csv: cannot open " + file.string());
  }
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("read_feature_csv: empty file");
  }
  // Header: f0,...,fN,label|target.
  std::size_t n_features = 0;
  bool regression = false;
  {
    std::istringstream header(line);
    std::string token;
    std::vector<std::string> columns;
    while (std::getline(header, token, ',')) columns.push_back(token);
    if (columns.empty()) {
      throw std::runtime_error("read_feature_csv: bad header");
    }
    const std::string& last = columns.back();
    if (last == "target") {
      regression = true;
    } else if (last != "label") {
      throw std::runtime_error(
          "read_feature_csv: last column must be 'label' or 'target'");
    }
    n_features = columns.size() - 1;
  }

  Dataset ds;
  std::size_t line_no = 1;
  std::vector<double> row(n_features);
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string token;
    for (std::size_t c = 0; c < n_features; ++c) {
      if (!std::getline(fields, token, ',')) {
        throw std::runtime_error("feature CSV line " +
                                 std::to_string(line_no) + ": too few fields");
      }
      row[c] = parse_double(token, line_no);
    }
    if (!std::getline(fields, token, ',')) {
      throw std::runtime_error("feature CSV line " + std::to_string(line_no) +
                               ": missing label/target");
    }
    const std::string label_token = token;
    if (std::getline(fields, token, ',')) {
      throw std::runtime_error("feature CSV line " + std::to_string(line_no) +
                               ": too many fields");
    }
    ds.features.append_row(row);
    if (regression) {
      ds.targets.push_back(parse_double(label_token, line_no));
    } else {
      ds.labels.push_back(
          static_cast<int>(parse_double(label_token, line_no)));
    }
  }
  ds.validate();
  return ds;
}

}  // namespace csm::data
