#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace csm::data {

std::size_t Dataset::n_classes() const noexcept {
  if (labels.empty()) return 0;
  const int max_label = *std::max_element(labels.begin(), labels.end());
  return max_label < 0 ? 0 : static_cast<std::size_t>(max_label) + 1;
}

void Dataset::validate() const {
  if (!labels.empty() && !targets.empty()) {
    throw std::invalid_argument("Dataset: both labels and targets set");
  }
  if (!labels.empty() && labels.size() != features.rows()) {
    throw std::invalid_argument("Dataset: label count != sample count");
  }
  if (!targets.empty() && targets.size() != features.rows()) {
    throw std::invalid_argument("Dataset: target count != sample count");
  }
  if (labels.empty() && targets.empty() && features.rows() != 0) {
    throw std::invalid_argument("Dataset: samples without labels or targets");
  }
  for (int l : labels) {
    if (l < 0) throw std::invalid_argument("Dataset: negative label");
  }
}

void Dataset::shuffle(common::Rng& rng) {
  const std::vector<std::size_t> perm = rng.permutation(size());
  *this = subset(perm);
}

void Dataset::merge(const Dataset& other) {
  if (other.size() == 0) return;
  if (size() == 0) {
    *this = other;
    return;
  }
  if (other.feature_length() != feature_length()) {
    throw std::invalid_argument("Dataset::merge: feature length mismatch");
  }
  if (other.kind() != kind()) {
    throw std::invalid_argument("Dataset::merge: task kind mismatch");
  }
  features.append_rows(other.features);
  labels.insert(labels.end(), other.labels.begin(), other.labels.end());
  targets.insert(targets.end(), other.targets.begin(), other.targets.end());
  if (class_names.empty()) class_names = other.class_names;
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.class_names = class_names;
  out.features = common::Matrix(indices.size(), features.cols());
  out.labels.reserve(labels.empty() ? 0 : indices.size());
  out.targets.reserve(targets.empty() ? 0 : indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= size()) {
      throw std::out_of_range("Dataset::subset: index out of range");
    }
    out.features.set_row(i, features.row(src));
    if (!labels.empty()) out.labels.push_back(labels[src]);
    if (!targets.empty()) out.targets.push_back(targets[src]);
  }
  return out;
}

}  // namespace csm::data
