// CSV I/O in the HPC-ODA layout: one file per sensor, one
// "timestamp,value" pair per line, optional header line.
//
// The readers are deliberately strict — malformed lines raise rather than
// silently skipping, since a silently truncated sensor would corrupt every
// downstream correlation.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "data/time_series.hpp"

namespace csm::data {

/// Parses "timestamp,value" text into a TimeSeries. Lines that are empty or
/// start with '#' are ignored; a first line equal to "timestamp,value" (any
/// case) is treated as a header. Throws std::runtime_error on malformed rows.
TimeSeries parse_sensor_csv(const std::string& text, std::string sensor_name);

/// Reads one sensor CSV file; the sensor name is the file stem.
TimeSeries read_sensor_csv(const std::filesystem::path& file);

/// Writes a TimeSeries in the same format (with header).
void write_sensor_csv(const std::filesystem::path& file,
                      const TimeSeries& series);

/// Reads every *.csv file in a directory (sorted by filename for determinism)
/// as one sensor each. Throws if the directory contains no CSV files.
std::vector<TimeSeries> read_sensor_dir(const std::filesystem::path& dir);

/// Writes a sensor matrix as a directory of per-sensor CSVs with synthetic
/// timestamps start_ts + i*interval_ms. `names` supplies file stems; if
/// empty, sensors are named sensor_0000, sensor_0001, ...
void write_sensor_dir(const std::filesystem::path& dir,
                      const common::Matrix& sensors,
                      const std::vector<std::string>& names = {},
                      std::int64_t start_ts = 0,
                      std::int64_t interval_ms = 1000);

}  // namespace csm::data
