#include "data/alignment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "stats/interpolate.hpp"

namespace csm::data {

void AlignedSensors::reorder(const std::vector<std::string>& order) {
  if (order.size() != names.size()) {
    throw std::invalid_argument("AlignedSensors::reorder: name count differs");
  }
  std::unordered_map<std::string, std::size_t> row_of;
  row_of.reserve(names.size());
  for (std::size_t r = 0; r < names.size(); ++r) {
    if (!row_of.emplace(names[r], r).second) {
      throw std::invalid_argument(
          "AlignedSensors::reorder: duplicate sensor name '" + names[r] + "'");
    }
  }
  std::vector<std::size_t> perm;
  perm.reserve(order.size());
  std::vector<bool> used(names.size(), false);
  for (const std::string& name : order) {
    const auto it = row_of.find(name);
    if (it == row_of.end()) {
      throw std::invalid_argument("AlignedSensors::reorder: unknown sensor '" +
                                  name + "'");
    }
    if (used[it->second]) {
      throw std::invalid_argument(
          "AlignedSensors::reorder: sensor '" + name + "' listed twice");
    }
    used[it->second] = true;
    perm.push_back(it->second);
  }
  matrix = matrix.permute_rows(perm);
  names = order;
}

AlignedSensors align(const std::vector<TimeSeries>& series,
                     std::int64_t interval_ms) {
  if (series.empty()) {
    throw std::invalid_argument("align: no sensor series");
  }
  if (interval_ms <= 0) {
    throw std::invalid_argument("align: non-positive interval");
  }
  std::int64_t start = std::numeric_limits<std::int64_t>::min();
  std::int64_t end = std::numeric_limits<std::int64_t>::max();
  for (const TimeSeries& s : series) {
    if (s.empty()) {
      throw std::invalid_argument("align: empty series '" + s.name + "'");
    }
    if (!s.is_sorted()) {
      throw std::invalid_argument("align: unsorted series '" + s.name + "'");
    }
    start = std::max(start, s.first_timestamp());
    end = std::min(end, s.last_timestamp());
  }
  if (end < start) {
    throw std::invalid_argument("align: series time ranges do not overlap");
  }
  const auto cols =
      static_cast<std::size_t>((end - start) / interval_ms) + 1;

  AlignedSensors out;
  out.matrix = common::Matrix(series.size(), cols);
  out.start_timestamp = start;
  out.interval_ms = interval_ms;
  out.names.reserve(series.size());
  for (std::size_t r = 0; r < series.size(); ++r) {
    out.names.push_back(series[r].name);
    const std::vector<double> xs = series[r].timestamps_as_double();
    const std::vector<double> ys = series[r].values();
    auto row = out.matrix.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      const double t = static_cast<double>(
          start + static_cast<std::int64_t>(c) * interval_ms);
      row[c] = stats::interp_linear(xs, ys, t);
    }
  }
  return out;
}

AlignedSensors align_auto(const std::vector<TimeSeries>& series) {
  std::vector<std::int64_t> gaps;
  for (const TimeSeries& s : series) {
    for (std::size_t i = 1; i < s.samples.size(); ++i) {
      gaps.push_back(s.samples[i].timestamp - s.samples[i - 1].timestamp);
    }
  }
  if (gaps.empty()) {
    throw std::invalid_argument("align_auto: not enough samples");
  }
  auto mid = gaps.begin() + static_cast<std::ptrdiff_t>(gaps.size() / 2);
  std::nth_element(gaps.begin(), mid, gaps.end());
  const std::int64_t interval = std::max<std::int64_t>(1, *mid);
  return align(series, interval);
}

}  // namespace csm::data
