#include "data/window.hpp"

namespace csm::data {

std::vector<Window> extract_windows(const common::Matrix& s,
                                    const WindowSpec& spec) {
  spec.validate();
  const std::size_t n_windows = spec.count(s.cols());
  std::vector<Window> out;
  out.reserve(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    const std::size_t first = spec.start(w);
    out.push_back(Window{s.sub_cols(first, spec.length), first});
  }
  return out;
}

}  // namespace csm::data
