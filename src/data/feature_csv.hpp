// Feature-dataset CSV I/O.
//
// Signature datasets (one row per feature set, plus a label or target
// column) are the interchange format between the extraction pipeline and
// external ML tooling — and the format in which the original HPC-ODA
// framework ships its processed feature sets. Layout:
//   f0,f1,...,fN,label     (classification; label is an integer)
//   f0,f1,...,fN,target    (regression; target is a double)
// with a header row naming the columns.
#pragma once

#include <filesystem>

#include "data/dataset.hpp"

namespace csm::data {

/// Writes a dataset (features + label/target column) as CSV.
/// Throws std::invalid_argument on an inconsistent dataset and
/// std::runtime_error on I/O failure.
void write_feature_csv(const std::filesystem::path& file, const Dataset& ds);

/// Reads a dataset written by write_feature_csv. The task kind is inferred
/// from the header's last column name ("label" vs "target").
Dataset read_feature_csv(const std::filesystem::path& file);

}  // namespace csm::data
