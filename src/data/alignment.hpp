// Time alignment of raw sensor series onto a dense sensor matrix.
//
// Section III-A of the paper assumes time-aligned sensors with a common
// sampling rate and notes that "an interpolation pre-processing step may be
// required to align the data" — this module is that step. Every series is
// linearly interpolated onto a regular grid covering the overlap of all
// series, yielding the n x t sensor matrix S.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "data/time_series.hpp"

namespace csm::data {

/// A dense, aligned sensor matrix plus its metadata.
struct AlignedSensors {
  common::Matrix matrix;            ///< rows = sensors, cols = time-stamps.
  std::vector<std::string> names;   ///< per-row sensor names.
  std::int64_t start_timestamp = 0; ///< timestamp of column 0.
  std::int64_t interval_ms = 0;     ///< grid step.

  /// Reorders rows to match `order` (a permutation of names). CS models are
  /// bound to a fixed row order, while directory readers return sensors
  /// sorted by filename — call this to re-establish the training order
  /// before applying a model. Throws std::invalid_argument if `order` is
  /// not exactly the set of names present.
  void reorder(const std::vector<std::string>& order);
};

/// Aligns `series` onto a regular grid with step `interval_ms`, spanning the
/// intersection [max(first), min(last)] of all series' time ranges. Values at
/// grid points are linearly interpolated. Throws std::invalid_argument if
/// `series` is empty, any series is empty/unsorted, or the intersection is
/// empty.
AlignedSensors align(const std::vector<TimeSeries>& series,
                     std::int64_t interval_ms);

/// Convenience: aligns with the median sampling interval observed across all
/// series (rounded to >= 1ms).
AlignedSensors align_auto(const std::vector<TimeSeries>& series);

}  // namespace csm::data
