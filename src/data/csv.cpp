#include "data/csv.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace csm::data {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view sv) {
  while (!sv.empty() && std::isspace(static_cast<unsigned char>(sv.front()))) {
    sv.remove_prefix(1);
  }
  while (!sv.empty() && std::isspace(static_cast<unsigned char>(sv.back()))) {
    sv.remove_suffix(1);
  }
  return sv;
}

// Matches a "timestamp,value" header, case-insensitively and with any amount
// of whitespace around either field (e.g. "Timestamp, Value").
bool is_header_line(std::string_view sv) {
  const std::size_t comma = sv.find(',');
  if (comma == std::string_view::npos) return false;
  return to_lower(std::string(trim(sv.substr(0, comma)))) == "timestamp" &&
         to_lower(std::string(trim(sv.substr(comma + 1)))) == "value";
}

}  // namespace

TimeSeries parse_sensor_csv(const std::string& text, std::string sensor_name) {
  TimeSeries series;
  series.name = std::move(sensor_name);
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view sv = trim(line);
    if (sv.empty() || sv.front() == '#') continue;
    if (first_content_line) {
      first_content_line = false;
      if (is_header_line(sv)) continue;
    }
    const std::size_t comma = sv.find(',');
    if (comma == std::string_view::npos) {
      throw std::runtime_error("CSV line " + std::to_string(line_no) +
                               ": missing comma");
    }
    const std::string_view ts_sv = trim(sv.substr(0, comma));
    const std::string_view val_sv = trim(sv.substr(comma + 1));
    Sample s;
    auto [p1, e1] =
        std::from_chars(ts_sv.data(), ts_sv.data() + ts_sv.size(), s.timestamp);
    if (e1 != std::errc{} || p1 != ts_sv.data() + ts_sv.size()) {
      throw std::runtime_error("CSV line " + std::to_string(line_no) +
                               ": bad timestamp '" + std::string(ts_sv) + "'");
    }
    // std::from_chars for double is available in libstdc++ >= 11.
    auto [p2, e2] =
        std::from_chars(val_sv.data(), val_sv.data() + val_sv.size(), s.value);
    if (e2 != std::errc{} || p2 != val_sv.data() + val_sv.size()) {
      throw std::runtime_error("CSV line " + std::to_string(line_no) +
                               ": bad value '" + std::string(val_sv) + "'");
    }
    series.samples.push_back(s);
  }
  return series;
}

TimeSeries read_sensor_csv(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open CSV file: " + file.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_sensor_csv(buf.str(), file.stem().string());
}

void write_sensor_csv(const std::filesystem::path& file,
                      const TimeSeries& series) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot create CSV file: " + file.string());
  }
  out << "timestamp,value\n";
  char buf[64];
  for (const Sample& s : series.samples) {
    std::snprintf(buf, sizeof(buf), "%lld,%.17g",
                  static_cast<long long>(s.timestamp), s.value);
    out << buf << '\n';
  }
  if (!out) {
    throw std::runtime_error("write failure on CSV file: " + file.string());
  }
}

std::vector<TimeSeries> read_sensor_dir(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      files.push_back(entry.path());
    }
  }
  if (files.empty()) {
    throw std::runtime_error("no CSV files in directory: " + dir.string());
  }
  std::sort(files.begin(), files.end());
  std::vector<TimeSeries> out;
  out.reserve(files.size());
  for (const auto& f : files) out.push_back(read_sensor_csv(f));
  return out;
}

void write_sensor_dir(const std::filesystem::path& dir,
                      const common::Matrix& sensors,
                      const std::vector<std::string>& names,
                      std::int64_t start_ts, std::int64_t interval_ms) {
  if (!names.empty() && names.size() != sensors.rows()) {
    throw std::invalid_argument("write_sensor_dir: name count mismatch");
  }
  std::filesystem::create_directories(dir);
  char stem[32];
  for (std::size_t r = 0; r < sensors.rows(); ++r) {
    TimeSeries series;
    if (names.empty()) {
      std::snprintf(stem, sizeof(stem), "sensor_%04zu", r);
      series.name = stem;
    } else {
      series.name = names[r];
    }
    series.samples.reserve(sensors.cols());
    for (std::size_t c = 0; c < sensors.cols(); ++c) {
      series.samples.push_back(
          Sample{start_ts + static_cast<std::int64_t>(c) * interval_ms,
                 sensors(r, c)});
    }
    write_sensor_csv(dir / (series.name + ".csv"), series);
  }
}

}  // namespace csm::data
