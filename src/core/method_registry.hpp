// Spec-string grammar and registry for signature methods.
//
// A MethodSpec is the parsed form of a compact configuration string such as
// "cs:blocks=20,real-only", "tuncer" or "pca:components=8":
//
//   spec   := name [ ":" param { "," param } ]
//   param  := key "=" value | flag
//
// Names and keys are case-insensitive ([a-z0-9_-] after lowering); values
// are kept verbatim. A MethodRegistry maps spec names to factories that turn
// a MethodSpec into an (untrained or stateless) SignatureMethod, and to
// readers that revive trained methods from either model-codec wire format
// (see core/model_codec.hpp):
//
//   csmethod v2 <key>        | "CSMB" binary record
//   <field lines>            | (CRC-framed little-endian fields)
//
// Both formats carry the same codec::Sink fields, so one Entry::read
// callback serves text (deserialize/load) and binary (decode/ModelPack).
// The legacy "csmethod v1 <key>" bodies from earlier releases stay readable
// through the optional per-entry Deserializer.
//
// Adding a future method is one registry registration: the harness line-ups,
// csmcli (--method / methods), the benches and the streaming layer all
// construct methods through specs and pick the new entry up for free.
#pragma once

#include <cstddef>
#include <filesystem>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/model_codec.hpp"
#include "core/signature_method.hpp"

namespace csm::core {

/// Parsed method-spec string: a method name plus key=value / flag parameters.
struct MethodSpec {
  std::string name;
  /// Parameters in written order; flags carry an empty value.
  std::vector<std::pair<std::string, std::string>> params;

  /// Parses a spec string. Throws std::invalid_argument on an empty name,
  /// malformed characters, an empty key, or a duplicated key.
  static MethodSpec parse(std::string_view text);

  /// Canonical round-trippable form, e.g. "cs:blocks=20,real-only".
  std::string to_string() const;

  bool has(std::string_view key) const;
  /// Value of `key`, or `fallback` when absent.
  std::string get(std::string_view key, std::string fallback = {}) const;
  /// Non-negative integer value of `key`; throws std::invalid_argument if
  /// present but not a plain decimal number.
  std::size_t get_size_t(std::string_view key, std::size_t fallback) const;
  /// Boolean flag: absent -> false; bare flag or 1/true/on -> true;
  /// 0/false/off -> false; anything else throws std::invalid_argument.
  bool get_flag(std::string_view key) const;

  /// Throws std::invalid_argument naming the first parameter whose key is
  /// not in `allowed` — factories call this so typos fail loudly.
  void expect_only(std::initializer_list<std::string_view> allowed) const;
};

/// Maps spec names to method factories and trained-state readers.
class MethodRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<SignatureMethod>(const MethodSpec&)>;
  /// Reads the codec::Sink fields written by SignatureMethod::save() back
  /// from either back-end. The registry calls Source::finish() afterwards.
  using Reader =
      std::function<std::unique_ptr<SignatureMethod>(codec::Source& in)>;
  /// Legacy reader for pre-codec "csmethod v1" text bodies (read-only
  /// compatibility; nothing writes v1 anymore).
  using Deserializer =
      std::function<std::unique_ptr<SignatureMethod>(const std::string& body)>;

  struct Entry {
    std::string key;      ///< Spec name, e.g. "cs".
    std::string grammar;  ///< Spec grammar shown in listings.
    std::string summary;  ///< One-line description for listings.
    Factory factory;
    Reader read;
    Deserializer deserializer;  ///< Optional legacy v1 text reader.
  };

  /// Registers an entry. Throws std::invalid_argument on an empty or
  /// duplicate key or a missing factory/read callback (the legacy
  /// deserializer is optional).
  void add(Entry entry);

  bool contains(std::string_view key) const;
  std::size_t size() const noexcept { return entries_.size(); }
  /// Registered keys in registration order.
  std::vector<std::string> keys() const;
  /// Entry lookup; throws std::invalid_argument listing known keys.
  const Entry& entry(std::string_view key) const;
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Constructs a method from a parsed spec / a spec string. The result is
  /// untrained for trainable methods — call fit() before compute().
  std::unique_ptr<SignatureMethod> create(const MethodSpec& spec) const;
  std::unique_ptr<SignatureMethod> create(std::string_view spec_text) const;

  /// Revives a trained method from tagged text — the "csmethod v2" form
  /// written by SignatureMethod::serialize(), or a legacy "csmethod v1"
  /// body when the entry registered a Deserializer. Throws
  /// std::runtime_error on a bad header or unknown tag; the per-method
  /// reader validates the body.
  std::unique_ptr<SignatureMethod> deserialize(const std::string& text) const;

  /// Revives a trained method from one binary record written by
  /// codec::encode_binary (framing and CRC are validated here; the
  /// per-method reader validates the fields). Throws std::runtime_error.
  std::unique_ptr<SignatureMethod> decode(
      std::span<const std::uint8_t> record) const;

  /// File convenience: sniffs the binary record magic and dispatches to
  /// decode() or deserialize().
  std::unique_ptr<SignatureMethod> load(
      const std::filesystem::path& file) const;

 private:
  std::vector<Entry> entries_;
};

/// Current text serialisation header: "csmethod v2 <key>\n".
std::string method_header(std::string_view key);

/// True when `text` starts with the tagged-method magic (vs e.g. a legacy
/// bare CsModel blob).
bool is_tagged_method(std::string_view text);

/// Writes the method to `file` in the requested model-codec format; throws
/// std::runtime_error on I/O failure.
void save_method(const SignatureMethod& method,
                 const std::filesystem::path& file,
                 codec::ModelFormat format = codec::ModelFormat::kText);

/// Registers the core CS method ("cs[:blocks=L,real-only]"; blocks=0 means
/// one block per sensor, i.e. CS-All). Baseline registrations live in
/// baselines/registry.hpp, which also assembles the full default registry.
void register_cs_method(MethodRegistry& registry);

}  // namespace csm::core
