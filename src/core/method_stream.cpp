#include "core/method_stream.hpp"

#include <algorithm>
#include <stdexcept>

namespace csm::core {

MethodStream::MethodStream(std::shared_ptr<const SignatureMethod> method,
                           StreamOptions options, std::size_t n_sensors)
    : method_(std::move(method)), options_(options) {
  options_.validate();
  if (!method_) {
    throw std::invalid_argument("MethodStream: null method");
  }
  if (!method_->trained()) {
    throw std::invalid_argument("MethodStream: method \"" + method_->name() +
                                "\" is untrained; fit() it first");
  }
  const std::size_t bound = method_->n_sensors();
  if (bound != 0 && n_sensors != 0 && bound != n_sensors) {
    throw std::invalid_argument(
        "MethodStream: sensor count contradicts the method's");
  }
  n_sensors_ = bound != 0 ? bound : n_sensors;
  if (n_sensors_ == 0) {
    throw std::invalid_argument(
        "MethodStream: sensor count required for method \"" +
        method_->name() + "\"");
  }
  history_ = common::RingMatrix(n_sensors_, options_.history_length);
  next_emit_at_ = options_.window_length;
}

std::optional<std::vector<double>> MethodStream::push(
    std::span<const double> column) {
  if (column.size() != n_sensors_) {
    throw std::invalid_argument("MethodStream::push: wrong column length");
  }
  const std::span<double> slot = history_.push_slot();
  std::copy(column.begin(), column.end(), slot.begin());
  ++samples_seen_;

  maybe_retrain();
  return emit_if_due();
}

std::vector<std::vector<double>> MethodStream::push_all(
    const common::Matrix& columns) {
  if (columns.rows() != n_sensors_) {
    throw std::invalid_argument("MethodStream::push_all: wrong sensor count");
  }
  std::vector<std::vector<double>> out;
  for (std::size_t c = 0; c < columns.cols(); ++c) {
    // Gather the (strided) source column straight into the recycled ring
    // slot; no per-column temporary vector.
    const std::span<double> slot = history_.push_slot();
    const double* src = columns.data() + c;
    const std::size_t stride = columns.cols();
    for (std::size_t r = 0; r < slot.size(); ++r) slot[r] = src[r * stride];
    ++samples_seen_;

    maybe_retrain();
    if (auto features = emit_if_due()) out.push_back(std::move(*features));
  }
  return out;
}

std::optional<std::vector<double>> MethodStream::emit_if_due() {
  if (samples_seen_ < next_emit_at_) return std::nullopt;
  next_emit_at_ += options_.window_step;

  // Hand the newest wl columns to the method as a zero-copy view over the
  // ring segments, plus a span over the raw column preceding the window
  // when one exists; the method decides what to do with the seed (CS feeds
  // its derivative channel, others ignore it).
  const std::size_t wl = options_.window_length;
  const common::MatrixView window = history_.latest_view(wl);
  ++signatures_emitted_;
  if (history_.size() > wl) {
    const std::span<const double> seed = history_.newest(wl);
    return method_->compute_streaming(window, &seed);
  }
  return method_->compute_streaming(window, nullptr);
}

void MethodStream::maybe_retrain() {
  if (options_.retrain_interval == 0) return;
  if (samples_seen_ % options_.retrain_interval != 0) return;
  if (history_.size() < options_.window_length + 1) return;
  // The whole retained history flows to fit() as a view — no to_matrix().
  method_ = std::shared_ptr<const SignatureMethod>(
      method_->fit(history_.history_view()));
  ++retrain_count_;
}

}  // namespace csm::core
