#include "core/method_stream.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/cancel.hpp"
#include "common/timer.hpp"
#include "core/retrain_executor.hpp"

namespace csm::core {

// Co-owned by the stream and the worker job, so either side may outlive the
// other: a stream torn down mid-fit just cancels and walks away, an executor
// torn down with the job still queued simply never runs it. The worker writes
// result/error/fit_seconds under `mu` and flips `done` last; once the ingest
// thread has observed done under `mu`, the fields are frozen.
struct MethodStream::ShadowFit {
  std::mutex mu;
  bool done = false;
  bool cancelled = false;
  std::shared_ptr<const SignatureMethod> result;
  std::exception_ptr error;
  double fit_seconds = 0.0;

  std::shared_ptr<TrainContext> ctx;  ///< Workspace + this fit's token.
  common::Matrix snapshot;            ///< History copy the fit reads.
  std::shared_ptr<const SignatureMethod> base;  ///< Method being refitted.
};

MethodStream::MethodStream(std::shared_ptr<const SignatureMethod> method,
                           StreamOptions options, std::size_t n_sensors,
                           RetrainExecutor* executor)
    : method_(std::move(method)), options_(options), executor_(executor) {
  options_.validate();
  if (!method_) {
    throw std::invalid_argument("MethodStream: null method");
  }
  if (!method_->trained()) {
    throw std::invalid_argument("MethodStream: method \"" + method_->name() +
                                "\" is untrained; fit() it first");
  }
  const std::size_t bound = method_->n_sensors();
  if (bound != 0 && n_sensors != 0 && bound != n_sensors) {
    throw std::invalid_argument(
        "MethodStream: sensor count contradicts the method's");
  }
  n_sensors_ = bound != 0 ? bound : n_sensors;
  if (n_sensors_ == 0) {
    throw std::invalid_argument(
        "MethodStream: sensor count required for method \"" +
        method_->name() + "\"");
  }
  history_ = common::RingMatrix(n_sensors_, options_.history_length);
  next_emit_at_ = options_.window_length;
}

MethodStream::~MethodStream() {
  // A still-running shadow fit unwinds at its next cancellation checkpoint;
  // it only touches the ShadowFit state it co-owns, never this stream.
  if (shadow_) shadow_->ctx->cancel.cancel();
}

std::optional<std::vector<double>> MethodStream::push(
    std::span<const double> column) {
  if (column.size() != n_sensors_) {
    throw std::invalid_argument("MethodStream::push: wrong column length");
  }
  const std::span<double> slot = history_.push_slot();
  std::copy(column.begin(), column.end(), slot.begin());
  ++samples_seen_;

  maybe_retrain();
  return emit_if_due();
}

std::vector<std::vector<double>> MethodStream::push_all(
    const common::Matrix& columns) {
  if (columns.rows() != n_sensors_) {
    throw std::invalid_argument("MethodStream::push_all: wrong sensor count");
  }
  std::vector<std::vector<double>> out;
  for (std::size_t c = 0; c < columns.cols(); ++c) {
    // Gather the (strided) source column straight into the recycled ring
    // slot; no per-column temporary vector.
    const std::span<double> slot = history_.push_slot();
    const double* src = columns.data() + c;
    const std::size_t stride = columns.cols();
    for (std::size_t r = 0; r < slot.size(); ++r) slot[r] = src[r * stride];
    ++samples_seen_;

    maybe_retrain();
    if (auto features = emit_if_due()) out.push_back(std::move(*features));
  }
  return out;
}

std::optional<std::vector<double>> MethodStream::emit_if_due() {
  if (samples_seen_ < next_emit_at_) return std::nullopt;
  next_emit_at_ += options_.window_step;

  // The emit boundary is where a finished shadow fit becomes visible: one
  // shared_ptr store, so every signature is computed by exactly one model
  // generation (never a half-swapped state). No-op under kSync.
  apply_pending_swap();

  // Hand the newest wl columns to the method as a zero-copy view over the
  // ring segments, plus a span over the raw column preceding the window
  // when one exists; the method decides what to do with the seed (CS feeds
  // its derivative channel, others ignore it).
  const std::size_t wl = options_.window_length;
  const common::MatrixView window = history_.latest_view(wl);
  // Score (and possibly retrain on) the window BEFORE computing it, so the
  // first signature after a detected regime change already comes from the
  // refitted model.
  if (options_.retrain_policy == RetrainPolicy::kOnDrift) {
    maybe_drift_retrain(window);
  }
  ++signatures_emitted_;
  if (history_.size() > wl) {
    const std::span<const double> seed = history_.newest(wl);
    return method_->compute_streaming(window, &seed);
  }
  return method_->compute_streaming(window, nullptr);
}

void MethodStream::maybe_retrain() {
  if (options_.retrain_interval == 0) return;
  if (samples_seen_ % options_.retrain_interval != 0) return;
  if (history_.size() < options_.window_length + 1) return;
  switch (options_.retrain_policy) {
    case RetrainPolicy::kSync: {
      // Inline on the ingest thread, as it always was; the whole retained
      // history flows to fit() as a view — no to_matrix(). The context only
      // recycles scratch buffers, so results stay byte-identical.
      if (!spare_context_) spare_context_ = std::make_shared<TrainContext>();
      const common::Timer timer;
      method_ = std::shared_ptr<const SignatureMethod>(
          method_->fit(history_.history_view(), *spare_context_));
      ++retrain_count_;
      retrain_latency_us_.add(timer.seconds() * 1e6);
      break;
    }
    case RetrainPolicy::kAsync:
      launch_shadow_fit(/*supersede=*/true);
      break;
    case RetrainPolicy::kSkipIfBusy:
      launch_shadow_fit(/*supersede=*/false);
      break;
    case RetrainPolicy::kOnDrift:
      // Unreachable: validate() forces retrain_interval == 0 under
      // kOnDrift, so the early return above already fired. The drift
      // check runs at emit boundaries (maybe_drift_retrain), not here.
      break;
  }
}

void MethodStream::maybe_drift_retrain(const common::MatrixView& window) {
  if (drift_ref_.empty()) {
    // First emitted window: presumed in-regime (the method was trained on
    // data like it), so it becomes the reference rather than being scored.
    drift_ref_ = stats::make_drift_reference(window, options_.drift_pairs);
    return;
  }
  ++drift_windows_;
  last_drift_score_ = stats::drift_score(window, drift_ref_);
  if (last_drift_score_ < options_.drift_threshold) {
    drift_streak_ = 0;
    return;
  }
  ++drift_flags_;
  if (++drift_streak_ < options_.drift_patience) return;
  drift_streak_ = 0;
  if (history_.size() < options_.window_length + 1) return;
  // Inline sync fit over the whole buffered history — deterministic, like
  // kSync, which is what lets the tests pin "exactly one retrain".
  if (!spare_context_) spare_context_ = std::make_shared<TrainContext>();
  const common::Timer timer;
  method_ = std::shared_ptr<const SignatureMethod>(
      method_->fit(history_.history_view(), *spare_context_));
  ++retrain_count_;
  ++drift_retrains_;
  retrain_latency_us_.add(timer.seconds() * 1e6);
  // The stream now tracks the new regime: rebuild the reference from the
  // window that triggered the retrain so a completed shift scores clean.
  drift_ref_ = stats::make_drift_reference(window, options_.drift_pairs);
}

void MethodStream::launch_shadow_fit(bool supersede) {
  if (shadow_) {
    bool done = false;
    {
      const std::lock_guard<std::mutex> lock(shadow_->mu);
      done = shadow_->done;
    }
    if (!done) {
      if (!supersede) {
        // kSkipIfBusy: leave the in-flight fit alone, skip this retrain.
        ++retrain_aborts_;
        return;
      }
      // kAsync: supersede. The cancelled job keeps its context (it may be
      // mid-kernel in the workspace); a fresh one is minted below.
      shadow_->ctx->cancel.cancel();
      ++retrain_aborts_;
      shadow_.reset();
    } else {
      // Finished, but no emit boundary swapped it in yet. Its result is
      // stale relative to the history this retrain is about to snapshot.
      const std::exception_ptr error = shadow_->error;
      if (shadow_->result) ++retrain_aborts_;
      reclaim_context(std::move(shadow_->ctx));
      shadow_.reset();
      // Surface a failed fit on the ingest thread, where kSync would have.
      if (error) std::rethrow_exception(error);
    }
  }

  auto state = std::make_shared<ShadowFit>();
  if (spare_context_) {
    state->ctx = std::move(spare_context_);
    state->ctx->cancel = common::CancelToken();  // Fresh, unfired token.
  } else {
    state->ctx = std::make_shared<TrainContext>();
  }
  state->snapshot = history_.to_matrix();
  state->base = method_;
  shadow_ = state;

  executor().submit([state] {
    const common::Timer timer;
    try {
      auto fitted =
          state->base->fit(common::MatrixView(state->snapshot), *state->ctx);
      const double seconds = timer.seconds();
      const std::lock_guard<std::mutex> lock(state->mu);
      state->fit_seconds = seconds;
      state->result = std::move(fitted);
      state->done = true;
    } catch (const common::OperationCancelled&) {
      const std::lock_guard<std::mutex> lock(state->mu);
      state->cancelled = true;
      state->done = true;
    } catch (...) {
      const std::lock_guard<std::mutex> lock(state->mu);
      state->error = std::current_exception();
      state->done = true;
    }
  });
}

void MethodStream::apply_pending_swap() {
  if (!shadow_) return;
  {
    const std::lock_guard<std::mutex> lock(shadow_->mu);
    if (!shadow_->done) return;  // Still fitting; keep serving the old model.
  }
  const std::shared_ptr<ShadowFit> state = std::move(shadow_);
  if (state->error) {
    reclaim_context(std::move(state->ctx));
    std::rethrow_exception(state->error);
  }
  if (state->cancelled || !state->result) {
    reclaim_context(std::move(state->ctx));
    return;
  }
  method_ = state->result;
  ++retrain_count_;
  retrain_latency_us_.add(state->fit_seconds * 1e6);
  reclaim_context(std::move(state->ctx));
}

RetrainExecutor& MethodStream::executor() {
  if (executor_ != nullptr) return *executor_;
  if (!own_executor_) {
    own_executor_ =
        std::make_unique<RetrainExecutor>(options_.retrain_threads);
  }
  return *own_executor_;
}

void MethodStream::reclaim_context(std::shared_ptr<TrainContext> ctx) {
  // Only reached once the fit thread that used `ctx` is provably done with
  // it (done observed under the ShadowFit mutex, or it never launched).
  if (!spare_context_) spare_context_ = std::move(ctx);
}

}  // namespace csm::core
