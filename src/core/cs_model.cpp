#include "core/cs_model.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace csm::core {

namespace {

// Sanity cap on deserialised sensor counts: a corrupt header must not turn
// into a multi-gigabyte allocation before the body check can fail.
constexpr std::size_t kMaxSensors = 1u << 24;

void check_permutation(const std::vector<std::size_t>& p) {
  std::vector<bool> seen(p.size(), false);
  for (std::size_t v : p) {
    if (v >= p.size() || seen[v]) {
      throw std::invalid_argument("CsModel: not a valid permutation");
    }
    seen[v] = true;
  }
}

void check_bounds_finite(const std::vector<stats::MinMaxBounds>& bounds) {
  for (const stats::MinMaxBounds& b : bounds) {
    if (!std::isfinite(b.lo) || !std::isfinite(b.hi)) {
      throw std::invalid_argument("CsModel: non-finite normalisation bounds");
    }
  }
}

}  // namespace

CsModel::CsModel(std::vector<std::size_t> permutation,
                 std::vector<stats::MinMaxBounds> bounds)
    : permutation_(std::move(permutation)), bounds_(std::move(bounds)) {
  check_permutation(permutation_);
  if (bounds_.size() != permutation_.size()) {
    throw std::invalid_argument("CsModel: bounds/permutation size mismatch");
  }
  check_bounds_finite(bounds_);
}

common::Matrix CsModel::sort(const common::Matrix& s) const {
  if (s.rows() != n_sensors()) {
    throw std::invalid_argument("CsModel::sort: sensor count mismatch");
  }
  common::Matrix normalized = stats::normalize_rows(s, bounds_);
  return normalized.permute_rows(permutation_);
}

std::string CsModel::serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "csmodel v1\n" << n_sensors() << "\n";
  for (std::size_t i = 0; i < n_sensors(); ++i) {
    out << permutation_[i] << ' ' << bounds_[i].lo << ' ' << bounds_[i].hi
        << "\n";
  }
  return out.str();
}

CsModel CsModel::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version;
  in >> magic >> version;
  if (!in || magic != "csmodel" || version != "v1") {
    throw std::runtime_error("CsModel::deserialize: bad header");
  }
  std::size_t n = 0;
  in >> n;
  if (!in || n > kMaxSensors) {
    throw std::runtime_error("CsModel::deserialize: bad sensor count");
  }
  std::vector<std::size_t> perm(n);
  std::vector<stats::MinMaxBounds> bounds(n);
  for (std::size_t i = 0; i < n; ++i) {
    in >> perm[i] >> bounds[i].lo >> bounds[i].hi;
    if (!in) throw std::runtime_error("CsModel::deserialize: truncated body");
  }
  std::string extra;
  if (in >> extra) {
    throw std::runtime_error(
        "CsModel::deserialize: trailing data after the model body");
  }
  try {
    return CsModel(std::move(perm), std::move(bounds));
  } catch (const std::invalid_argument& e) {
    // Surface structural problems (non-permutation p, NaN bounds) with the
    // same exception type as the other malformed-blob paths.
    throw std::runtime_error(std::string("CsModel::deserialize: ") + e.what());
  }
}

void CsModel::save(const std::filesystem::path& file) const {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("CsModel::save: cannot open " + file.string());
  }
  out << serialize();
  if (!out) throw std::runtime_error("CsModel::save: write failed");
}

CsModel CsModel::load(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw std::runtime_error("CsModel::load: cannot open " + file.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str());
}

}  // namespace csm::core
