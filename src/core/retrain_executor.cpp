#include "core/retrain_executor.hpp"

#include <utility>

namespace csm::core {

RetrainExecutor::RetrainExecutor(std::size_t threads) {
  const std::size_t count = threads == 0 ? 1 : threads;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RetrainExecutor::~RetrainExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Queued-but-unstarted jobs are dropped: their shadow-fit state simply
    // never reaches done, and nobody blocks on it.
    queue_.clear();
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void RetrainExecutor::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void RetrainExecutor::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace csm::core
