#include "core/model_codec.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

#if !(defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L)
// newlocale/uselocale are POSIX, declared in <locale.h> (not <clocale>);
// macOS additionally keeps them in <xlocale.h>.
#include <locale.h>  // NOLINT(modernize-deprecated-headers)
#if defined(__APPLE__)
#include <xlocale.h>
#endif
#endif

#include "core/signature_method.hpp"

namespace csm::core::codec {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ModelCodec: " + what);
}

std::string quoted(std::string_view name) {
  // Built incrementally: GCC 12 raises a bogus -Wrestrict on the chained
  // operator+ spelling.
  std::string out;
  out.reserve(name.size() + 2);
  out += '"';
  out += name;
  out += '"';
  return out;
}

}  // namespace

// --- little-endian primitives (shared with the src/net frame codec) ---------

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint16_t load_u16(const std::uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint16_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  } else {
    return static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(p[0]) |
        (static_cast<std::uint16_t>(p[1]) << 8));
  }
}

std::uint32_t load_u32(const std::uint8_t* p) {
  // Little-endian hosts read the wire format in place; others assemble it.
  if constexpr (std::endian::native == std::endian::little) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  } else {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
    return v;
  }
}

std::uint64_t load_u64(const std::uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return v;
  }
}

namespace {

// --- binary field type tags -------------------------------------------------

constexpr std::uint8_t kTypeU64 = 1;
constexpr std::uint8_t kTypeF64 = 2;
constexpr std::uint8_t kTypeU64Array = 3;
constexpr std::uint8_t kTypeF64Array = 4;

const char* type_name(std::uint8_t type) {
  switch (type) {
    case kTypeU64:
      return "u64";
    case kTypeF64:
      return "f64";
    case kTypeU64Array:
      return "u64[]";
    case kTypeF64Array:
      return "f64[]";
    default:
      return "unknown";
  }
}

// --- text helpers -----------------------------------------------------------

// The text form is a transport format, so it must not bend with the host
// locale: an embedding application that called setlocale() into a
// comma-decimal locale would otherwise write non-portable models and fail
// to parse portable ones. <charconv> is locale-blind by specification, and
// std::to_chars with an explicit precision is defined to produce exactly
// printf "%.17g" in the "C" locale; toolchains without the floating-point
// overloads (AppleClang's libc++) fall back to the C library pinned to a
// per-thread "C" locale via uselocale().
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
#define CSM_CODEC_FP_CHARCONV 1
#else
#define CSM_CODEC_FP_CHARCONV 0
#endif

#if !CSM_CODEC_FP_CHARCONV
locale_t c_numeric_locale() {
  static const locale_t loc =
      ::newlocale(LC_ALL_MASK, "C", static_cast<locale_t>(nullptr));
  return loc;
}
#endif

std::string format_f64(double v) {
  std::array<char, 40> buf{};
#if CSM_CODEC_FP_CHARCONV
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v,
                                       std::chars_format::general, 17);
  if (ec != std::errc()) {
    throw std::logic_error("ModelCodec: cannot format double");
  }
  return std::string(buf.data(), ptr);
#else
  const locale_t prev = ::uselocale(c_numeric_locale());
  const int n = std::snprintf(buf.data(), buf.size(), "%.17g", v);
  ::uselocale(prev);
  return std::string(buf.data(), static_cast<std::size_t>(n));
#endif
}

// A declared element count is untrusted until the elements actually parse:
// reserving it verbatim lets a ~20-byte hostile body demand a 512 MB
// allocation (kMaxFieldElements * 8) before the first missing element fails
// the parse (fuzz regression fuzz/regressions/model-text/count-amplification).
// Geometric push_back growth costs little for honest large arrays.
constexpr std::uint64_t kMaxUpFrontReserve = 4096;

std::size_t clamped_reserve(std::uint64_t count) {
  return static_cast<std::size_t>(std::min(count, kMaxUpFrontReserve));
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32(data, 0);
}

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t prior) {
  // Slicing-by-8: eight derived tables let the hot loop fold 8 input bytes
  // per iteration instead of one, which matters when every ModelPack record
  // load CRC-checks its bytes. The wire CRC is unchanged — table 0 is the
  // classic byte-at-a-time table and handles the tail.
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
      }
    }
    return t;
  }();
  // prior == 0 yields the classic ~0 initial state; any other prior value
  // un-finalises so feeding the next chunk continues the same checksum.
  std::uint32_t crc = prior ^ 0xFFFFFFFFu;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    const std::uint32_t lo = crc ^ load_u32(data.data() + i);
    const std::uint32_t hi = load_u32(data.data() + i + 4);
    crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
          tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
          tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
  }
  for (; i < data.size(); ++i) {
    crc = tables[0][(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// ---------------------------------------------------------------------------
// Shared helper checks
// ---------------------------------------------------------------------------

void Sink::sizes(std::string_view name, std::span<const std::size_t> values) {
  std::vector<std::uint64_t> wide(values.begin(), values.end());
  u64_array(name, wide);
}

std::size_t Source::size(std::string_view name) {
  const std::uint64_t v = u64(name);
  if (v > std::numeric_limits<std::size_t>::max()) {
    fail("field " + quoted(name) + " value does not fit std::size_t");
  }
  return static_cast<std::size_t>(v);
}

bool Source::flag(std::string_view name) {
  const std::uint64_t v = u64(name);
  if (v > 1) {
    fail("field " + quoted(name) + " is not a boolean flag (got " +
         std::to_string(v) + ")");
  }
  return v == 1;
}

std::vector<std::size_t> Source::sizes(std::string_view name) {
  const std::vector<std::uint64_t> wide = u64_array(name);
  std::vector<std::size_t> out;
  out.reserve(wide.size());
  for (const std::uint64_t v : wide) {
    if (v > std::numeric_limits<std::size_t>::max()) {
      fail("field " + quoted(name) + " element does not fit std::size_t");
    }
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Text back-end
// ---------------------------------------------------------------------------

void TextSink::u64(std::string_view name, std::uint64_t value) {
  body_ += name;
  body_ += ' ';
  body_ += std::to_string(value);
  body_ += '\n';
}

void TextSink::f64(std::string_view name, double value) {
  body_ += name;
  body_ += ' ';
  body_ += format_f64(value);
  body_ += '\n';
}

void TextSink::u64_array(std::string_view name,
                         std::span<const std::uint64_t> values) {
  body_ += name;
  body_ += ' ';
  body_ += std::to_string(values.size());
  for (const std::uint64_t v : values) {
    body_ += ' ';
    body_ += std::to_string(v);
  }
  body_ += '\n';
}

void TextSink::f64_array(std::string_view name,
                         std::span<const double> values) {
  body_ += name;
  body_ += ' ';
  body_ += std::to_string(values.size());
  for (const double v : values) {
    body_ += ' ';
    body_ += format_f64(v);
  }
  body_ += '\n';
}

void TextSource::expect_name(std::string_view name) {
  std::string token;
  if (!(in_ >> token)) {
    fail("missing field " + quoted(name));
  }
  if (token != name) {
    fail("expected field " + quoted(name) + ", found " + quoted(token));
  }
}

std::uint64_t TextSource::parse_u64(std::string_view name) {
  std::string token;
  if (!(in_ >> token)) {
    fail("truncated field " + quoted(name));
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    fail("field " + quoted(name) + " is not an unsigned integer (got " +
         quoted(token) + ")");
  }
  return value;
}

double TextSource::parse_f64(std::string_view name) {
  std::string token;
  if (!(in_ >> token)) {
    fail("truncated field " + quoted(name));
  }
  double value = 0.0;
  bool parsed = false;
#if CSM_CODEC_FP_CHARCONV
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  parsed = ec == std::errc() && ptr == token.data() + token.size();
#else
  const char* begin = token.c_str();
  char* end = nullptr;
  const locale_t prev = ::uselocale(c_numeric_locale());
  value = std::strtod(begin, &end);
  ::uselocale(prev);
  parsed = end == begin + token.size();
#endif
  if (!parsed) {
    fail("field " + quoted(name) + " is not a number (got " + quoted(token) +
         ")");
  }
  return value;
}

std::uint64_t TextSource::u64(std::string_view name) {
  expect_name(name);
  return parse_u64(name);
}

double TextSource::f64(std::string_view name) {
  expect_name(name);
  return parse_f64(name);
}

std::vector<std::uint64_t> TextSource::u64_array(std::string_view name) {
  expect_name(name);
  const std::uint64_t count = parse_u64(name);
  if (count > kMaxFieldElements) {
    fail("field " + quoted(name) + " count " + std::to_string(count) +
         " exceeds the element cap");
  }
  std::vector<std::uint64_t> values;
  values.reserve(clamped_reserve(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    values.push_back(parse_u64(name));
  }
  return values;
}

std::vector<double> TextSource::f64_array(std::string_view name) {
  expect_name(name);
  const std::uint64_t count = parse_u64(name);
  if (count > kMaxFieldElements) {
    fail("field " + quoted(name) + " count " + std::to_string(count) +
         " exceeds the element cap");
  }
  std::vector<double> values;
  values.reserve(clamped_reserve(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    values.push_back(parse_f64(name));
  }
  return values;
}

void TextSource::finish() {
  std::string token;
  if (in_ >> token) {
    fail("trailing data after last field (starts with " + quoted(token) + ")");
  }
}

// ---------------------------------------------------------------------------
// Binary back-end
// ---------------------------------------------------------------------------

void BinarySink::field_header(std::uint8_t type, std::string_view name,
                              std::uint64_t count) {
  if (name.empty() || name.size() > 255) {
    throw std::logic_error("ModelCodec: field name must be 1..255 bytes");
  }
  if (count > kMaxFieldElements) {
    throw std::logic_error("ModelCodec: field " + quoted(name) +
                           " exceeds the element cap");
  }
  body_.push_back(type);
  body_.push_back(static_cast<std::uint8_t>(name.size()));
  body_.insert(body_.end(), name.begin(), name.end());
  append_u32(body_, static_cast<std::uint32_t>(count));
}

void BinarySink::u64(std::string_view name, std::uint64_t value) {
  field_header(kTypeU64, name, 1);
  append_u64(body_, value);
}

void BinarySink::f64(std::string_view name, double value) {
  field_header(kTypeF64, name, 1);
  append_u64(body_, std::bit_cast<std::uint64_t>(value));
}

void BinarySink::u64_array(std::string_view name,
                           std::span<const std::uint64_t> values) {
  field_header(kTypeU64Array, name, values.size());
  for (const std::uint64_t v : values) {
    append_u64(body_, v);
  }
}

void BinarySink::f64_array(std::string_view name,
                           std::span<const double> values) {
  field_header(kTypeF64Array, name, values.size());
  for (const double v : values) {
    append_u64(body_, std::bit_cast<std::uint64_t>(v));
  }
}

std::uint64_t BinarySource::field_header(std::uint8_t type,
                                         std::string_view name) {
  const std::size_t field_offset = offset();
  if (body_.size() - cursor_ < 2) {
    fail("truncated field header for " + quoted(name) + " at offset " +
         std::to_string(field_offset));
  }
  const std::uint8_t found_type = body_[cursor_];
  const std::size_t name_len = body_[cursor_ + 1];
  cursor_ += 2;
  if (body_.size() - cursor_ < name_len + 4) {
    fail("truncated field header for " + quoted(name) + " at offset " +
         std::to_string(field_offset));
  }
  const std::string_view found_name(
      reinterpret_cast<const char*>(body_.data() + cursor_), name_len);
  if (found_name != name) {
    fail("expected field " + quoted(name) + ", found " + quoted(found_name) +
         " at offset " + std::to_string(field_offset));
  }
  if (found_type != type) {
    fail("field " + quoted(name) + " has type " + type_name(found_type) +
         ", expected " + type_name(type) + " at offset " +
         std::to_string(field_offset));
  }
  cursor_ += name_len;
  const std::uint32_t count = load_u32(body_.data() + cursor_);
  cursor_ += 4;
  if (count > kMaxFieldElements) {
    fail("field " + quoted(name) + " count " + std::to_string(count) +
         " exceeds the element cap at offset " + std::to_string(field_offset));
  }
  if ((type == kTypeU64 || type == kTypeF64) && count != 1) {
    fail("scalar field " + quoted(name) + " has count " +
         std::to_string(count) + " at offset " + std::to_string(field_offset));
  }
  if (body_.size() - cursor_ < static_cast<std::size_t>(count) * 8) {
    fail("truncated field " + quoted(name) + " payload at offset " +
         std::to_string(offset()));
  }
  return count;
}

std::uint64_t BinarySource::u64(std::string_view name) {
  field_header(kTypeU64, name);
  const std::uint64_t v = load_u64(body_.data() + cursor_);
  cursor_ += 8;
  return v;
}

double BinarySource::f64(std::string_view name) {
  field_header(kTypeF64, name);
  const std::uint64_t bits = load_u64(body_.data() + cursor_);
  cursor_ += 8;
  return std::bit_cast<double>(bits);
}

std::vector<std::uint64_t> BinarySource::u64_array(std::string_view name) {
  const std::uint64_t count = field_header(kTypeU64Array, name);
  std::vector<std::uint64_t> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    values.push_back(load_u64(body_.data() + cursor_));
    cursor_ += 8;
  }
  return values;
}

std::vector<double> BinarySource::f64_array(std::string_view name) {
  const std::uint64_t count = field_header(kTypeF64Array, name);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    values.push_back(std::bit_cast<double>(load_u64(body_.data() + cursor_)));
    cursor_ += 8;
  }
  return values;
}

void BinarySource::finish() {
  if (cursor_ != body_.size()) {
    fail(std::to_string(body_.size() - cursor_) +
         " trailing bytes after last field at offset " +
         std::to_string(offset()));
  }
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

bool is_binary_record(std::span<const std::uint8_t> bytes) {
  return bytes.size() >= 4 && bytes[0] == kBinaryMagic[0] &&
         bytes[1] == kBinaryMagic[1] && bytes[2] == kBinaryMagic[2] &&
         bytes[3] == kBinaryMagic[3];
}

std::vector<std::uint8_t> frame_record(std::string_view key,
                                       std::span<const std::uint8_t> body) {
  if (key.empty() || key.size() > 255) {
    throw std::logic_error("ModelCodec: record key must be 1..255 bytes");
  }
  if (body.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::logic_error("ModelCodec: record body exceeds 4 GiB");
  }
  std::vector<std::uint8_t> record;
  record.reserve(4 + 1 + 1 + key.size() + 4 + body.size() + 4);
  record.insert(record.end(), std::begin(kBinaryMagic), std::end(kBinaryMagic));
  record.push_back(kBinaryVersion);
  record.push_back(static_cast<std::uint8_t>(key.size()));
  record.insert(record.end(), key.begin(), key.end());
  append_u32(record, static_cast<std::uint32_t>(body.size()));
  record.insert(record.end(), body.begin(), body.end());
  append_u32(record, crc32(record));
  return record;
}

RecordView parse_record(std::span<const std::uint8_t> record) {
  if (!is_binary_record(record)) {
    fail("not a binary model record (bad magic)");
  }
  if (record.size() < 6) {
    fail("truncated record header (" + std::to_string(record.size()) +
         " bytes)");
  }
  RecordView view;
  view.version = record[4];
  if (view.version != kBinaryVersion) {
    fail("unsupported binary model version " + std::to_string(view.version) +
         " (expected " + std::to_string(kBinaryVersion) + ")");
  }
  const std::size_t key_len = record[5];
  std::size_t cursor = 6;
  if (key_len == 0) {
    fail("empty record key at offset 5");
  }
  if (record.size() - cursor < key_len + 4) {
    fail("truncated record key at offset " + std::to_string(cursor));
  }
  view.key.assign(reinterpret_cast<const char*>(record.data() + cursor),
                  key_len);
  cursor += key_len;
  const std::uint32_t body_len = load_u32(record.data() + cursor);
  cursor += 4;
  // Compare in 64 bits: body_len is untrusted and `body_len + 4` wraps a
  // 32-bit size_t, which would let a truncated record pass this check and
  // run subspan() out of bounds.
  const std::uint64_t remaining = record.size() - cursor;
  const std::uint64_t body_and_crc = std::uint64_t{body_len} + 4;
  if (remaining < body_and_crc) {
    fail("truncated record body at offset " + std::to_string(cursor) +
         " (declared " + std::to_string(body_len) + " bytes)");
  }
  if (remaining != body_and_crc) {
    fail(std::to_string(remaining - body_and_crc) +
         " trailing bytes after record CRC");
  }
  view.body = record.subspan(cursor, body_len);
  view.body_offset = cursor;
  cursor += body_len;
  const std::uint32_t stored = load_u32(record.data() + cursor);
  const std::uint32_t computed = crc32(record.first(cursor));
  if (stored != computed) {
    fail("CRC mismatch at offset " + std::to_string(cursor) + " (stored " +
         std::to_string(stored) + ", computed " + std::to_string(computed) +
         ")");
  }
  return view;
}

// ---------------------------------------------------------------------------
// Whole-method encoders
// ---------------------------------------------------------------------------

namespace {

std::string checked_key(const SignatureMethod& method) {
  const std::string key = method.codec_key();
  if (key.empty()) {
    throw std::logic_error(method.name() +
                           ": method does not support the model codec");
  }
  if (!method.trained()) {
    throw std::logic_error(method.name() +
                           ": cannot serialize an untrained method");
  }
  return key;
}

}  // namespace

std::string encode_text(const SignatureMethod& method) {
  const std::string key = checked_key(method);
  TextSink sink;
  method.save(sink);
  return text_header(key) + sink.body();
}

std::vector<std::uint8_t> encode_binary(const SignatureMethod& method) {
  const std::string key = checked_key(method);
  BinarySink sink;
  method.save(sink);
  return frame_record(key, sink.body());
}

}  // namespace csm::core::codec
