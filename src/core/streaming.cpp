#include "core/streaming.hpp"

#include <stdexcept>

#include "core/smoothing.hpp"
#include "core/training.hpp"
#include "stats/finite_diff.hpp"

namespace csm::core {

void StreamOptions::validate() const {
  if (window_length == 0) {
    throw std::invalid_argument("StreamOptions: zero window length");
  }
  if (window_step == 0) {
    throw std::invalid_argument("StreamOptions: zero window step");
  }
  if (history_length < window_length + 1) {
    throw std::invalid_argument(
        "StreamOptions: history must hold at least one window plus the "
        "derivative seed column");
  }
}

CsStream::CsStream(CsModel model, StreamOptions options)
    : model_(std::move(model)), options_(options) {
  options_.validate();
  if (model_.n_sensors() == 0) {
    throw std::invalid_argument("CsStream: empty model");
  }
  history_.reserve(options_.history_length);
  next_emit_at_ = options_.window_length;
}

std::optional<Signature> CsStream::push(std::span<const double> column) {
  if (column.size() != n_sensors()) {
    throw std::invalid_argument("CsStream::push: wrong column length");
  }
  if (history_.size() == options_.history_length) {
    history_.erase(history_.begin());  // Bounded history; drop the oldest.
  }
  history_.emplace_back(column.begin(), column.end());
  ++samples_seen_;

  maybe_retrain();

  if (samples_seen_ < next_emit_at_) return std::nullopt;
  next_emit_at_ += options_.window_step;

  // Assemble the window (plus one seed column when available) from the
  // newest wl columns of the history.
  const std::size_t wl = options_.window_length;
  const bool have_seed = history_.size() > wl;
  const std::size_t first = history_.size() - wl;
  common::Matrix window(n_sensors(), wl);
  for (std::size_t c = 0; c < wl; ++c) {
    for (std::size_t r = 0; r < n_sensors(); ++r) {
      window(r, c) = history_[first + c][r];
    }
  }
  const common::Matrix sorted = model_.sort(window);

  common::Matrix derivs;
  if (have_seed) {
    common::Matrix seed_col(n_sensors(), 1);
    for (std::size_t r = 0; r < n_sensors(); ++r) {
      seed_col(r, 0) = history_[first - 1][r];
    }
    const common::Matrix sorted_seed = model_.sort(seed_col);
    derivs = stats::backward_diff_rows_seeded(sorted, sorted_seed.col(0));
  } else {
    derivs = stats::backward_diff_rows(sorted);
  }
  return smooth(sorted, derivs,
                options_.cs.resolve_blocks(model_.n_sensors()));
}

std::vector<Signature> CsStream::push_all(const common::Matrix& columns) {
  if (columns.rows() != n_sensors()) {
    throw std::invalid_argument("CsStream::push_all: wrong sensor count");
  }
  std::vector<Signature> out;
  std::vector<double> column(n_sensors());
  for (std::size_t c = 0; c < columns.cols(); ++c) {
    for (std::size_t r = 0; r < n_sensors(); ++r) {
      column[r] = columns(r, c);
    }
    if (auto sig = push(column)) out.push_back(std::move(*sig));
  }
  return out;
}

void CsStream::maybe_retrain() {
  if (options_.retrain_interval == 0) return;
  if (samples_seen_ % options_.retrain_interval != 0) return;
  if (history_.size() < options_.window_length + 1) return;
  common::Matrix training(n_sensors(), history_.size());
  for (std::size_t c = 0; c < history_.size(); ++c) {
    for (std::size_t r = 0; r < n_sensors(); ++r) {
      training(r, c) = history_[c][r];
    }
  }
  model_ = train(training);
  ++retrain_count_;
}

}  // namespace csm::core
