#include "core/streaming.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "core/method_stream.hpp"

namespace csm::core {

void StreamOptions::validate() const {
  if (window_length == 0) {
    throw std::invalid_argument(
        "StreamOptions: window_length must be positive");
  }
  if (window_step == 0) {
    throw std::invalid_argument("StreamOptions: window_step must be positive");
  }
  // Written as <= so the check cannot be defeated by window_length + 1
  // overflowing to 0.
  if (history_length <= window_length) {
    throw std::invalid_argument(
        "StreamOptions: history_length (" + std::to_string(history_length) +
        ") must exceed window_length (" + std::to_string(window_length) +
        ") so the ring can hold one window plus the derivative seed column; "
        "anything smaller would also make retraining silently unreachable");
  }
  if (retrain_threads == 0) {
    throw std::invalid_argument(
        "StreamOptions: retrain_threads must be at least 1 (the pool is only "
        "created for async retrain policies, but its size must be sane)");
  }
  if (retrain_policy == RetrainPolicy::kOnDrift) {
    if (!(drift_threshold > 0.0)) {
      throw std::invalid_argument(
          "StreamOptions: drift_threshold must be positive under kOnDrift "
          "(it is the score at which a window counts as drifted)");
    }
    if (retrain_interval != 0) {
      throw std::invalid_argument(
          "StreamOptions: retrain_interval must be 0 under kOnDrift — the "
          "drift detector replaces the periodic schedule, it does not "
          "augment it");
    }
    if (drift_patience == 0) {
      throw std::invalid_argument(
          "StreamOptions: drift_patience must be at least 1");
    }
    if (drift_pairs == 0) {
      throw std::invalid_argument(
          "StreamOptions: drift_pairs must be at least 1");
    }
  } else if (drift_threshold != 0.0) {
    throw std::invalid_argument(
        "StreamOptions: drift_threshold is only meaningful under kOnDrift "
        "(set retrain_policy accordingly)");
  }
}

namespace {

// The wrapped method always computes both channels (real_only false): the
// historical CsStream contract returns full Signatures and leaves dropping
// the derivative channel to the consumer's flatten(real_only) call.
std::shared_ptr<const CsSignatureMethod> make_cs_method(
    CsModel model, const StreamOptions& options) {
  auto pipeline = std::make_shared<const CsPipeline>(
      std::move(model), CsOptions{options.cs.blocks, false});
  return std::make_shared<const CsSignatureMethod>(std::move(pipeline));
}

}  // namespace

CsStream::CsStream(CsModel model, StreamOptions options)
    : options_(options), model_(model) {
  options_.validate();
  if (model.n_sensors() == 0) {
    throw std::invalid_argument("CsStream: empty model");
  }
  blocks_ = options_.cs.resolve_blocks(model.n_sensors());
  stream_ = std::make_unique<MethodStream>(
      make_cs_method(std::move(model), options_), options_);
}

CsStream::~CsStream() = default;
CsStream::CsStream(CsStream&&) noexcept = default;
CsStream& CsStream::operator=(CsStream&&) noexcept = default;

std::size_t CsStream::n_sensors() const noexcept {
  return stream_->n_sensors();
}
std::size_t CsStream::samples_seen() const noexcept {
  return stream_->samples_seen();
}
std::size_t CsStream::signatures_emitted() const noexcept {
  return stream_->signatures_emitted();
}
std::size_t CsStream::retrain_count() const noexcept {
  return stream_->retrain_count();
}

const CsModel& CsStream::model() const { return model_; }

void CsStream::sync_model() {
  if (model_synced_at_ == stream_->retrain_count()) return;
  const auto* cs =
      dynamic_cast<const CsSignatureMethod*>(&stream_->method());
  if (!cs || !cs->pipeline()) {
    throw std::logic_error("CsStream: stream method is not a trained CS");
  }
  model_ = cs->pipeline()->model();
  model_synced_at_ = stream_->retrain_count();
}

Signature CsStream::unflatten(std::vector<double> features) const {
  if (features.size() != 2 * blocks_) {
    throw std::logic_error("CsStream: unexpected feature-vector length");
  }
  const auto split = features.begin() + static_cast<std::ptrdiff_t>(blocks_);
  std::vector<double> re(features.begin(), split);
  std::vector<double> im(split, features.end());
  return Signature(std::move(re), std::move(im));
}

std::optional<Signature> CsStream::push(std::span<const double> column) {
  if (column.size() != n_sensors()) {
    throw std::invalid_argument("CsStream::push: wrong column length");
  }
  auto features = stream_->push(column);
  sync_model();
  if (!features) return std::nullopt;
  return unflatten(std::move(*features));
}

std::vector<Signature> CsStream::push_all(const common::Matrix& columns) {
  if (columns.rows() != n_sensors()) {
    throw std::invalid_argument("CsStream::push_all: wrong sensor count");
  }
  std::vector<Signature> out;
  for (auto& features : stream_->push_all(columns)) {
    out.push_back(unflatten(std::move(features)));
  }
  sync_model();
  return out;
}

}  // namespace csm::core
