#include "core/streaming.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/smoothing.hpp"
#include "core/training.hpp"
#include "stats/finite_diff.hpp"

namespace csm::core {

void StreamOptions::validate() const {
  if (window_length == 0) {
    throw std::invalid_argument("StreamOptions: zero window length");
  }
  if (window_step == 0) {
    throw std::invalid_argument("StreamOptions: zero window step");
  }
  if (history_length < window_length + 1) {
    throw std::invalid_argument(
        "StreamOptions: history must hold at least one window plus the "
        "derivative seed column");
  }
}

CsStream::CsStream(CsModel model, StreamOptions options)
    : model_(std::move(model)), options_(options) {
  options_.validate();
  if (model_.n_sensors() == 0) {
    throw std::invalid_argument("CsStream: empty model");
  }
  history_ = common::RingMatrix(n_sensors(), options_.history_length);
  window_ = common::Matrix(n_sensors(), options_.window_length);
  seed_col_ = common::Matrix(n_sensors(), 1);
  next_emit_at_ = options_.window_length;
}

std::optional<Signature> CsStream::push(std::span<const double> column) {
  if (column.size() != n_sensors()) {
    throw std::invalid_argument("CsStream::push: wrong column length");
  }
  const std::span<double> slot = history_.push_slot();
  std::copy(column.begin(), column.end(), slot.begin());
  ++samples_seen_;

  maybe_retrain();
  return emit_if_due();
}

std::vector<Signature> CsStream::push_all(const common::Matrix& columns) {
  if (columns.rows() != n_sensors()) {
    throw std::invalid_argument("CsStream::push_all: wrong sensor count");
  }
  std::vector<Signature> out;
  for (std::size_t c = 0; c < columns.cols(); ++c) {
    // Gather the (strided) source column straight into the recycled ring
    // slot; no per-column temporary vector.
    const std::span<double> slot = history_.push_slot();
    const double* src = columns.data() + c;
    const std::size_t stride = columns.cols();
    for (std::size_t r = 0; r < slot.size(); ++r) slot[r] = src[r * stride];
    ++samples_seen_;

    maybe_retrain();
    if (auto sig = emit_if_due()) out.push_back(std::move(*sig));
  }
  return out;
}

std::optional<Signature> CsStream::emit_if_due() {
  if (samples_seen_ < next_emit_at_) return std::nullopt;
  next_emit_at_ += options_.window_step;

  // Assemble the window (plus one seed column when available) from the
  // newest wl columns of the history ring.
  const std::size_t wl = options_.window_length;
  const bool have_seed = history_.size() > wl;
  history_.copy_latest(wl, window_);
  const common::Matrix sorted = model_.sort(window_);

  common::Matrix derivs;
  if (have_seed) {
    // newest(wl) is the column just before the window; copy it into the
    // n x 1 seed matrix.
    const std::span<const double> seed = history_.newest(wl);
    for (std::size_t r = 0; r < n_sensors(); ++r) seed_col_(r, 0) = seed[r];
    const common::Matrix sorted_seed = model_.sort(seed_col_);
    derivs = stats::backward_diff_rows_seeded(sorted, sorted_seed.col(0));
  } else {
    derivs = stats::backward_diff_rows(sorted);
  }
  ++signatures_emitted_;
  return smooth(sorted, derivs,
                options_.cs.resolve_blocks(model_.n_sensors()));
}

void CsStream::maybe_retrain() {
  if (options_.retrain_interval == 0) return;
  if (samples_seen_ % options_.retrain_interval != 0) return;
  if (history_.size() < options_.window_length + 1) return;
  model_ = train(history_.to_matrix());
  ++retrain_count_;
}

}  // namespace csm::core
