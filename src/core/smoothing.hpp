// CS smoothing stage (Section III-C3, Eqs. 2-3).
//
// The sorted, normalised window is collapsed into l complex blocks. Block i
// (1-based in the paper) aggregates sensor rows [b_i, e_i] with
//   b_i = 1 + floor((i-1) * n / l),   e_i = ceil(i * n / l);
// when n % l != 0 neighbouring blocks share one boundary sensor ("partially
// overlapping ranges") and the extended blocks spread uniformly over the
// signature thanks to the modulo's periodicity. The real channel averages the
// window values of the block's sensors, the imaginary channel averages their
// backward first-order derivatives. Complexity O(wl * n).
#pragma once

#include <cstddef>
#include <span>

#include "common/matrix.hpp"
#include "common/matrix_view.hpp"
#include "core/signature.hpp"
#include "stats/normalize.hpp"

namespace csm::core {

/// Half-open row range [begin, end) of block `i` (0-based) out of `l` blocks
/// over `n` sensors — the 0-based translation of Eq. 2.
struct BlockRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const noexcept { return end - begin; }
  bool operator==(const BlockRange&) const = default;
};

/// Throws std::invalid_argument if l == 0, n == 0 or i >= l.
BlockRange block_range(std::size_t i, std::size_t l, std::size_t n);

/// Smooths a sorted window and its derivative matrix into an l-block
/// signature. `sorted` and `derivs` must have identical shapes.
Signature smooth(const common::Matrix& sorted, const common::Matrix& derivs,
                 std::size_t l);

/// Convenience overload computing the derivative matrix internally with
/// backward differences (first column derivative = 0).
Signature smooth(const common::Matrix& sorted, std::size_t l);

/// Fused zero-copy CS kernel: equivalent to
///   smooth(sort(window), backward_diff_rows[_seeded](...), l)
/// where sort() min-max-normalises every row with `bounds` and permutes rows
/// by `permutation`, but reads the window view in place — no sorted matrix,
/// no derivative matrix, no window copy. `seed_col`, when non-null, is the
/// raw (unnormalised) sensor column preceding the window and seeds the
/// derivative channel exactly like backward_diff_rows_seeded; when null the
/// first column's derivative is 0. Accumulation order matches the
/// materialising path term for term, so results are bit-identical to it.
/// Throws std::invalid_argument on an empty window, l == 0, or mismatched
/// permutation/bounds/seed lengths.
Signature smooth_window(const common::MatrixView& window,
                        std::span<const std::size_t> permutation,
                        std::span<const stats::MinMaxBounds> bounds,
                        const std::span<const double>* seed_col,
                        std::size_t l);

}  // namespace csm::core
