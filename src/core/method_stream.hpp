// Method-agnostic online signature stream — THE streaming loop.
//
// MethodStream drives any trained SignatureMethod over a contiguous ring
// buffer: one column of sensor readings per push, a feature vector emitted
// every ws samples once wl samples are buffered, and optional periodic
// retraining via the method's uniform fit() entry point over the buffered
// history. The emit path is zero-copy: the newest wl columns are handed to
// SignatureMethod::compute_streaming as a common::MatrixView over the ring
// segments (two segments when the window straddles the wrap point) together
// with a span over the raw column preceding the window — CS seeds its
// derivative channel with it, stateless methods ignore it.
//
// Retraining follows the StreamOptions::retrain_policy seam. kSync fits
// inline over RingMatrix::history_view() (no materialisation), exactly the
// historical behaviour. The async policies snapshot the history, fit a
// *shadow* method on a RetrainExecutor worker, and swap the finished method
// in — one shared_ptr store — at the next emit boundary; emits keep serving
// the old model mid-fit and the ingest thread never waits on a fit. A fit
// superseded by a newer retrain is cancelled through its TrainContext token
// and counted in retrain_aborts(). This single loop serves the whole method
// fleet: CsStream is a thin typed wrapper over it, and StreamEngine fans it
// out across nodes (sharing one executor between them).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/ring_matrix.hpp"
// Complete type needed: MethodStream's defaulted moves destroy the
// unique_ptr fallback pool in every TU that moves a stream.
#include "core/retrain_executor.hpp"
#include "core/signature_method.hpp"
#include "core/streaming.hpp"
#include "core/training.hpp"
#include "stats/drift.hpp"
#include "stats/histogram.hpp"

namespace csm::core {

/// Shape of the retrain-latency histograms (method streams, EngineStats and
/// the wire schema must agree so Histogram::merge works). Retrains run
/// milliseconds to seconds — a much coarser range than ingest latency.
inline constexpr std::size_t kRetrainLatencyBins = 128;
inline constexpr double kRetrainLatencyMaxUs = 16.0e6;  // 16 s.

inline stats::Histogram make_retrain_latency_histogram() {
  return stats::Histogram(kRetrainLatencyBins, 0.0, kRetrainLatencyMaxUs);
}

/// Push-based feature-vector stream over one monitored component.
class MethodStream {
 public:
  /// `n_sensors` may be 0 when the method is bound to a sensor count (CS,
  /// PCA); sensor-count-agnostic methods (Tuncer, Bodik, Lan) require it.
  /// `executor`, when given, runs this stream's async-policy shadow fits
  /// (StreamEngine passes its shared pool); without one, a stream whose
  /// policy is async lazily spins up a private pool of
  /// options.retrain_threads workers. The executor must outlive the stream.
  /// Throws std::invalid_argument on a null or untrained method, a
  /// zero/contradictory sensor count, or bad options.
  MethodStream(std::shared_ptr<const SignatureMethod> method,
               StreamOptions options, std::size_t n_sensors = 0,
               RetrainExecutor* executor = nullptr);

  /// Cancels any in-flight shadow fit (the worker unwinds on its own; the
  /// fit only touches state the job co-owns, never the dead stream).
  ~MethodStream();
  MethodStream(MethodStream&&) noexcept = default;
  MethodStream& operator=(MethodStream&&) noexcept = default;

  std::size_t n_sensors() const noexcept { return n_sensors_; }
  const SignatureMethod& method() const noexcept { return *method_; }
  const StreamOptions& options() const noexcept { return options_; }
  std::size_t samples_seen() const noexcept { return samples_seen_; }
  std::size_t signatures_emitted() const noexcept {
    return signatures_emitted_;
  }
  /// Retrained models actually swapped in (under kSync every fired retrain;
  /// under the async policies, fits that completed and reached an emit
  /// boundary). retrain_swaps() is the explicit alias.
  std::size_t retrain_count() const noexcept { return retrain_count_; }
  std::size_t retrain_swaps() const noexcept { return retrain_count_; }
  /// Retrains that fired but never produced a swap: superseded (cancelled)
  /// fits, skip-if-busy suppressions, and discarded stale results.
  std::size_t retrain_aborts() const noexcept { return retrain_aborts_; }
  /// Wall-clock fit latency of every swapped-in retrain, in microseconds
  /// (shape: make_retrain_latency_histogram()).
  const stats::Histogram& retrain_latency_us() const noexcept {
    return retrain_latency_us_;
  }
  /// kOnDrift bookkeeping (all 0 under the other policies). Windows scored
  /// against the drift reference — every emitted window except the one that
  /// built the reference.
  std::size_t drift_windows() const noexcept { return drift_windows_; }
  /// Scored windows whose drift score reached drift_threshold.
  std::size_t drift_flags() const noexcept { return drift_flags_; }
  /// Retrains the drift detector actually fired (a subset of
  /// retrain_count(): flags only convert once the patience streak fills).
  std::size_t drift_retrains() const noexcept { return drift_retrains_; }
  /// Score of the most recently scored window (0 before any scoring).
  double last_drift_score() const noexcept { return last_drift_score_; }

  /// Feeds one column of sensor readings (length must equal n_sensors()).
  /// Returns a feature vector when a window completes, otherwise
  /// std::nullopt.
  std::optional<std::vector<double>> push(std::span<const double> column);

  /// Feeds a whole matrix column by column; returns all emitted feature
  /// vectors. Columns are gathered straight into the ring buffer.
  std::vector<std::vector<double>> push_all(const common::Matrix& columns);

 private:
  /// Everything a background shadow fit touches, co-owned by the job and
  /// the stream so either side may die first. The worker writes result /
  /// error under `mu` and flips `done` last; the ingest thread reads under
  /// `mu` at emit boundaries.
  struct ShadowFit;

  void maybe_retrain();
  /// kOnDrift per-window check, run at each emit boundary on the window
  /// about to be computed: builds the reference on first sight, scores
  /// later windows, and refits inline once the patience streak fills.
  void maybe_drift_retrain(const common::MatrixView& window);
  void launch_shadow_fit(bool supersede);
  /// Applies a finished shadow fit (called at emit boundaries): swaps the
  /// method shared_ptr, bumps the counters, rethrows a fit failure on the
  /// ingest thread (where a kSync fit would have thrown).
  void apply_pending_swap();
  std::optional<std::vector<double>> emit_if_due();
  RetrainExecutor& executor();
  /// Hands the context back for reuse once its fit thread is provably done
  /// with the workspace.
  void reclaim_context(std::shared_ptr<TrainContext> ctx);

  std::shared_ptr<const SignatureMethod> method_;
  StreamOptions options_;
  std::size_t n_sensors_ = 0;
  common::RingMatrix history_;  ///< n_sensors x history_length column ring.
  std::size_t samples_seen_ = 0;
  std::size_t next_emit_at_ = 0;
  std::size_t signatures_emitted_ = 0;
  std::size_t retrain_count_ = 0;
  std::size_t retrain_aborts_ = 0;
  std::size_t drift_windows_ = 0;
  std::size_t drift_flags_ = 0;
  std::size_t drift_retrains_ = 0;
  std::size_t drift_streak_ = 0;  ///< Consecutive flagged windows so far.
  double last_drift_score_ = 0.0;
  /// kOnDrift regime reference; empty until the first emitted window.
  stats::DriftReference drift_ref_;
  stats::Histogram retrain_latency_us_ = make_retrain_latency_histogram();
  /// Correlation workspace recycled across retrains (fresh one minted when
  /// a superseded fit still owns it).
  std::shared_ptr<TrainContext> spare_context_;
  std::shared_ptr<ShadowFit> shadow_;   ///< In-flight / unswapped async fit.
  RetrainExecutor* executor_ = nullptr;  ///< Borrowed (engine) pool, if any.
  std::unique_ptr<RetrainExecutor> own_executor_;  ///< Standalone fallback.
};

}  // namespace csm::core
