// Method-agnostic online signature stream — THE streaming loop.
//
// MethodStream drives any trained SignatureMethod over a contiguous ring
// buffer: one column of sensor readings per push, a feature vector emitted
// every ws samples once wl samples are buffered, and optional periodic
// retraining via the method's uniform fit() entry point over the buffered
// history. The emit path is zero-copy: the newest wl columns are handed to
// SignatureMethod::compute_streaming as a common::MatrixView over the ring
// segments (two segments when the window straddles the wrap point) together
// with a span over the raw column preceding the window — CS seeds its
// derivative channel with it, stateless methods ignore it. Retraining passes
// RingMatrix::history_view() to fit(), so neither path materialises a
// matrix. This single loop serves the whole method fleet: CsStream is a thin
// typed wrapper over it, and StreamEngine fans it out across nodes.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/ring_matrix.hpp"
#include "core/signature_method.hpp"
#include "core/streaming.hpp"

namespace csm::core {

/// Push-based feature-vector stream over one monitored component.
class MethodStream {
 public:
  /// `n_sensors` may be 0 when the method is bound to a sensor count (CS,
  /// PCA); sensor-count-agnostic methods (Tuncer, Bodik, Lan) require it.
  /// Throws std::invalid_argument on a null or untrained method, a
  /// zero/contradictory sensor count, or bad options.
  MethodStream(std::shared_ptr<const SignatureMethod> method,
               StreamOptions options, std::size_t n_sensors = 0);

  std::size_t n_sensors() const noexcept { return n_sensors_; }
  const SignatureMethod& method() const noexcept { return *method_; }
  const StreamOptions& options() const noexcept { return options_; }
  std::size_t samples_seen() const noexcept { return samples_seen_; }
  std::size_t signatures_emitted() const noexcept {
    return signatures_emitted_;
  }
  std::size_t retrain_count() const noexcept { return retrain_count_; }

  /// Feeds one column of sensor readings (length must equal n_sensors()).
  /// Returns a feature vector when a window completes, otherwise
  /// std::nullopt.
  std::optional<std::vector<double>> push(std::span<const double> column);

  /// Feeds a whole matrix column by column; returns all emitted feature
  /// vectors. Columns are gathered straight into the ring buffer.
  std::vector<std::vector<double>> push_all(const common::Matrix& columns);

 private:
  void maybe_retrain();
  std::optional<std::vector<double>> emit_if_due();

  std::shared_ptr<const SignatureMethod> method_;
  StreamOptions options_;
  std::size_t n_sensors_ = 0;
  common::RingMatrix history_;  ///< n_sensors x history_length column ring.
  std::size_t samples_seen_ = 0;
  std::size_t next_emit_at_ = 0;
  std::size_t signatures_emitted_ = 0;
  std::size_t retrain_count_ = 0;
};

}  // namespace csm::core
