// Online streaming CS front end.
//
// In-band ODA (Section I, Fig. 1) consumes monitoring samples as they are
// produced: one column of sensor readings per time-stamp. The actual
// ingest/emit/retrain loop lives in core::MethodStream — one loop for every
// signature method, reading windows straight out of the ring buffer through
// common::MatrixView. CsStream is the CS-typed face of that loop kept for
// the classic deployment: it wraps a MethodStream driving a
// CsSignatureMethod, translates the flat feature vectors back into
// core::Signature values (real + derivative channel), and exposes the live
// CsModel across retrains — the "repeat training whenever required" mode of
// Section III-C2 for components whose correlations drift over time.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "core/cs_model.hpp"
#include "core/pipeline.hpp"
#include "core/signature.hpp"

namespace csm::core {

class MethodStream;

/// How MethodStream runs the periodic retrain that retrain_interval fires.
enum class RetrainPolicy {
  /// Fit inline on the ingest thread — the historical behaviour,
  /// byte-identical to streams that predate the policy seam. Ingest stalls
  /// for the full O(n^2 t) training time.
  kSync,
  /// Snapshot the history, fit a shadow model on a background worker, and
  /// swap it in atomically at the next emit boundary; emits keep serving the
  /// old model mid-fit. A retrain firing while one is still in flight
  /// supersedes it: the stale fit is cancelled and counted as an abort.
  kAsync,
  /// Like kAsync, but a retrain firing while one is in flight is skipped
  /// (counted as an abort) instead of cancelling and relaunching — steadier
  /// under retrain intervals shorter than the fit time.
  kSkipIfBusy,
  /// Adaptive: no periodic interval at all. Every emitted window is scored
  /// with the stats::drift statistic against a reference built from the
  /// first emitted window (and rebuilt after every retrain); once the score
  /// stays at or above StreamOptions::drift_threshold for drift_patience
  /// consecutive windows, the stream refits inline over the buffered
  /// history — synchronously, like kSync, so the post-drift model is
  /// deterministic. Requires drift_threshold > 0 and retrain_interval == 0.
  kOnDrift,
};

/// Streaming configuration.
struct StreamOptions {
  std::size_t window_length = 60;  ///< wl in samples.
  std::size_t window_step = 10;    ///< ws in samples.
  CsOptions cs;                    ///< Block count / real-only flag.
  /// Retrain the model every this many samples (0 = never retrain). The
  /// retrain uses the last `history_length` buffered columns.
  std::size_t retrain_interval = 0;
  std::size_t history_length = 1024;
  /// Backpressure bound on each StreamEngine node's undrained signature
  /// queue (0 = unbounded). When a slow consumer lets a queue grow past
  /// this, the OLDEST signatures are dropped first and counted per node
  /// (EngineStats::dropped) — a monitoring fleet wants the freshest state,
  /// and a loud counter, not an OOM. Offline replays that require every
  /// signature must leave this at 0.
  std::size_t max_pending = 0;
  /// What a firing retrain does to the ingest thread (see RetrainPolicy).
  RetrainPolicy retrain_policy = RetrainPolicy::kSync;
  /// Worker count of the retrain pool the async policies fit on. Sizes the
  /// StreamEngine-owned pool shared by all its nodes (csmd
  /// --retrain-threads); a standalone MethodStream without an engine spins
  /// up its own pool of this size on first use. Ignored under kSync.
  std::size_t retrain_threads = 1;
  /// kOnDrift only: drift score at or above which an emitted window counts
  /// as drifted (see stats::drift_score for the scale; a stationary stream
  /// scores around 1/sqrt(window_length)). Must be > 0 under kOnDrift and
  /// 0 under every other policy.
  double drift_threshold = 0.0;
  /// kOnDrift only: consecutive drifted windows required before the stream
  /// actually retrains — patience > 1 trades detection latency for immunity
  /// to single-window flukes. Must be >= 1.
  std::size_t drift_patience = 1;
  /// kOnDrift only: sensor-pair sample size of the drift reference
  /// (stats::make_drift_reference cap). Must be >= 1.
  std::size_t drift_pairs = 64;

  /// Rejects contradictory configurations with std::invalid_argument naming
  /// the offending field: zero window_length, zero window_step, and a
  /// history_length too small to ever hold a window plus its derivative
  /// seed column (which would also make retraining silently unreachable).
  void validate() const;
};

/// Push-based CS signature stream over one monitored component: a thin
/// typed wrapper over the single MethodStream loop.
class CsStream {
 public:
  /// Starts with a pre-trained model (the usual in-band deployment).
  CsStream(CsModel model, StreamOptions options);
  ~CsStream();
  CsStream(CsStream&&) noexcept;
  CsStream& operator=(CsStream&&) noexcept;

  std::size_t n_sensors() const noexcept;
  /// The live model — follows retrains. The reference stays valid for the
  /// stream's lifetime (a retrain updates it in place, as it always has);
  /// iterators into its vectors are invalidated by a retrain.
  const CsModel& model() const;
  const StreamOptions& options() const noexcept { return options_; }
  std::size_t samples_seen() const noexcept;
  std::size_t signatures_emitted() const noexcept;
  std::size_t retrain_count() const noexcept;

  /// Feeds one column of sensor readings (length must equal n_sensors()).
  /// Returns a signature when a window completes (every ws samples once wl
  /// samples have been buffered), otherwise std::nullopt.
  std::optional<Signature> push(std::span<const double> column);

  /// Feeds a whole matrix column by column; returns all emitted signatures.
  /// Columns are gathered straight into the ring buffer (no per-column
  /// temporary), so this is the preferred bulk-ingestion entry point.
  std::vector<Signature> push_all(const common::Matrix& columns);

 private:
  Signature unflatten(std::vector<double> features) const;
  /// Mirrors the live method's model into model_ after a retrain (called at
  /// the end of every ingest), keeping the model() reference contract.
  void sync_model();

  StreamOptions options_;
  std::size_t blocks_ = 0;  ///< Resolved block count l per signature.
  // unique_ptr keeps MethodStream an incomplete type here (streaming.hpp is
  // included by method_stream.hpp for StreamOptions).
  std::unique_ptr<MethodStream> stream_;
  // Stable home for model(): MethodStream swaps its method object on
  // retrain, so the model is mirrored here to keep handed-out references
  // valid and current.
  CsModel model_;
  std::size_t model_synced_at_ = 0;  ///< retrain_count at last sync.
};

}  // namespace csm::core
