// Online streaming CS pipeline.
//
// In-band ODA (Section I, Fig. 1) consumes monitoring samples as they are
// produced: one column of sensor readings per time-stamp. CsStream keeps a
// contiguous ring buffer (common::RingMatrix) of the last `history_length`
// columns — fixed n_sensors x history_length storage, zero per-push
// allocation, per-push cost O(n_sensors) independent of the history length —
// emits a signature every ws samples, seeds the derivative channel with the
// column preceding the window (no zero-spike at window boundaries), and can
// optionally repeat the training stage every `retrain_interval` samples over
// the buffered history — the "repeat training whenever required" mode of
// Section III-C2 for components whose correlations drift over time.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/ring_matrix.hpp"
#include "core/cs_model.hpp"
#include "core/pipeline.hpp"
#include "core/signature.hpp"

namespace csm::core {

/// Streaming configuration.
struct StreamOptions {
  std::size_t window_length = 60;  ///< wl in samples.
  std::size_t window_step = 10;    ///< ws in samples.
  CsOptions cs;                    ///< Block count / real-only flag.
  /// Retrain the model every this many samples (0 = never retrain). The
  /// retrain uses the last `history_length` buffered columns.
  std::size_t retrain_interval = 0;
  std::size_t history_length = 1024;

  void validate() const;
};

/// Push-based CS signature stream over one monitored component.
class CsStream {
 public:
  /// Starts with a pre-trained model (the usual in-band deployment).
  CsStream(CsModel model, StreamOptions options);

  std::size_t n_sensors() const noexcept { return model_.n_sensors(); }
  const CsModel& model() const noexcept { return model_; }
  const StreamOptions& options() const noexcept { return options_; }
  std::size_t samples_seen() const noexcept { return samples_seen_; }
  std::size_t signatures_emitted() const noexcept {
    return signatures_emitted_;
  }
  std::size_t retrain_count() const noexcept { return retrain_count_; }

  /// Feeds one column of sensor readings (length must equal n_sensors()).
  /// Returns a signature when a window completes (every ws samples once wl
  /// samples have been buffered), otherwise std::nullopt.
  std::optional<Signature> push(std::span<const double> column);

  /// Feeds a whole matrix column by column; returns all emitted signatures.
  /// Columns are gathered straight into the ring buffer (no per-column
  /// temporary), so this is the preferred bulk-ingestion entry point.
  std::vector<Signature> push_all(const common::Matrix& columns);

 private:
  void maybe_retrain();
  std::optional<Signature> emit_if_due();

  CsModel model_;
  StreamOptions options_;
  common::RingMatrix history_;  ///< n_sensors x history_length column ring.
  common::Matrix window_;       ///< Reused n_sensors x wl assembly buffer.
  common::Matrix seed_col_;     ///< Reused n_sensors x 1 seed buffer.
  std::size_t samples_seen_ = 0;
  std::size_t next_emit_at_ = 0;
  std::size_t signatures_emitted_ = 0;
  std::size_t retrain_count_ = 0;
};

}  // namespace csm::core
