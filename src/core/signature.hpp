// The CS signature: l complex-valued blocks (Section III-C).
//
// The real channel of block i holds the average normalised value of the
// sensors aggregated by that block over the window; the imaginary channel
// holds the average first-order derivative. Signatures are "image-like":
// they can be rescaled to other block counts with standard 1-D resampling
// (keeping models and signatures of different resolutions compatible), the
// central low-information blocks can be pruned, and the derivative channel
// can be dropped (the paper's "-R" real-only variant).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace csm::core {

/// A single CS signature of `length()` complex blocks.
class Signature {
 public:
  Signature() = default;

  /// Creates a zero signature with `length` blocks.
  explicit Signature(std::size_t length) : re_(length, 0.0), im_(length, 0.0) {}

  /// Creates a signature from separate channels (must be equally sized).
  Signature(std::vector<double> re, std::vector<double> im);

  std::size_t length() const noexcept { return re_.size(); }
  bool empty() const noexcept { return re_.empty(); }

  std::span<const double> real() const noexcept { return re_; }
  std::span<const double> imag() const noexcept { return im_; }
  std::span<double> real() noexcept { return re_; }
  std::span<double> imag() noexcept { return im_; }

  std::complex<double> block(std::size_t i) const {
    return {re_.at(i), im_.at(i)};
  }
  void set_block(std::size_t i, std::complex<double> v) {
    re_.at(i) = v.real();
    im_.at(i) = v.imag();
  }

  /// Flattens to a feature vector: all real parts followed by all imaginary
  /// parts (2*l features), or just the real parts if `real_only`.
  std::vector<double> flatten(bool real_only = false) const;

  /// Rescales both channels to `new_length` blocks by linear resampling
  /// (the paper's image-style scaling). Returns a new signature.
  Signature rescaled(std::size_t new_length) const;

  /// Drops the `n_pruned` central blocks — the paper notes the central
  /// coefficients represent the least insightful sensors and can be removed
  /// with minimal loss. Throws std::invalid_argument if n_pruned >= length.
  Signature pruned_center(std::size_t n_pruned) const;

  bool operator==(const Signature&) const = default;

 private:
  std::vector<double> re_;
  std::vector<double> im_;
};

}  // namespace csm::core
