// Fleet-wide online ingestion: one CsStream per monitored node.
//
// A production ODA deployment (Fig. 1) monitors hundreds of compute nodes at
// once; each node has its own CS model (trained on its own sensors) and its
// own signature stream. StreamEngine owns one CsStream per node, fans
// batched ingestion across nodes with common::parallel_for (nodes are
// independent, so the loop is embarrassingly parallel), buffers emitted
// signatures in per-node queues for downstream consumers (classifiers,
// dashboards), and keeps aggregate throughput counters so operators can see
// samples/sec across the whole fleet. Memory stays bounded: each node holds
// exactly n_sensors x history_length doubles of history plus its undrained
// queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "core/cs_model.hpp"
#include "core/signature.hpp"
#include "core/streaming.hpp"

namespace csm::core {

/// Aggregate counters across all nodes of a StreamEngine.
struct EngineStats {
  std::uint64_t samples = 0;     ///< Columns ingested, summed over nodes.
  std::uint64_t signatures = 0;  ///< Signatures emitted, summed over nodes.
  std::uint64_t retrains = 0;    ///< Retraining passes, summed over nodes.
  double ingest_seconds = 0.0;   ///< Wall time spent inside ingestion calls.

  /// Samples per second over the accumulated ingestion time (0 if no time
  /// has been accumulated yet).
  double samples_per_second() const noexcept {
    return ingest_seconds > 0.0
               ? static_cast<double>(samples) / ingest_seconds
               : 0.0;
  }
};

/// Multi-node streaming front end over per-node CsStreams.
class StreamEngine {
 public:
  /// All nodes share the same windowing/retrain configuration; models are
  /// per node. Throws (via StreamOptions/CsStream validation) on bad
  /// options or empty models.
  explicit StreamEngine(StreamOptions options) : options_(options) {
    options_.validate();
  }

  /// Registers a node and returns its index. Node names are labels only and
  /// need not be unique.
  std::size_t add_node(std::string name, CsModel model);

  std::size_t n_nodes() const noexcept { return nodes_.size(); }
  const StreamOptions& options() const noexcept { return options_; }
  const std::string& node_name(std::size_t node) const {
    return nodes_.at(node).name;
  }
  /// The underlying per-node stream (e.g. to inspect the live model).
  const CsStream& stream(std::size_t node) const {
    return nodes_.at(node).stream;
  }

  /// Feeds a batch of columns to one node; emitted signatures are appended
  /// to that node's queue.
  void ingest(std::size_t node, const common::Matrix& columns);

  /// Feeds one batch per node (batches.size() must equal n_nodes(); batches
  /// may have different column counts, rows must match each node's sensor
  /// count). Nodes are processed concurrently with common::parallel_for.
  /// Shapes are validated up front; a mid-flight failure in any node (e.g.
  /// a degenerate retrain) is re-thrown after the batch completes.
  void ingest_batch(std::span<const common::Matrix> batches);

  /// Number of signatures waiting in a node's queue.
  std::size_t pending(std::size_t node) const {
    return nodes_.at(node).queue.size();
  }

  /// Takes (moves out) all signatures queued for a node.
  std::vector<Signature> drain(std::size_t node);

  /// Aggregate counters summed over all nodes, plus accumulated wall time.
  EngineStats stats() const;

 private:
  struct Node {
    std::string name;
    CsStream stream;
    std::vector<Signature> queue;
  };

  StreamOptions options_;
  std::vector<Node> nodes_;
  double ingest_seconds_ = 0.0;
};

}  // namespace csm::core
