// Fleet-wide online ingestion: one MethodStream per monitored node.
//
// A production ODA deployment (Fig. 1) monitors hundreds of compute nodes at
// once; each node has its own trained signature method (CS with a per-node
// model, a PCA basis, or a stateless baseline) and its own signature stream.
// StreamEngine owns one MethodStream per node — any SignatureMethod can be
// driven online, CS keeping its derivative-seeding specialisation — fans
// batched ingestion across nodes with common::parallel_for (nodes are
// independent, so the loop is embarrassingly parallel), buffers emitted
// feature vectors in per-node queues for downstream consumers (classifiers,
// dashboards), and keeps aggregate throughput counters so operators can see
// samples/sec across the whole fleet. Memory stays bounded: each node holds
// exactly n_sensors x history_length doubles of history plus its undrained
// queue.
//
// Concurrency contract: ingest(), ingest_batch(), drain(), pending(),
// stats() and every add_node() overload may be called concurrently from
// multiple threads (the soak test in tests/core/stream_engine_soak_test.cpp
// runs exactly that mix under ThreadSanitizer). Each node carries its own
// mutex — ingest and drain on the same node serialise, different nodes
// proceed in parallel — and the node table is guarded by a shared_mutex so
// add_node can grow a live fleet without invalidating in-flight ingestion.
// Per-call ordering is the only guarantee: a drain racing an ingest returns
// either side of that batch's signatures, never a torn vector. The
// stream() accessor returns a reference into a node's live state and is
// safe only while no other thread is feeding that node.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "core/cs_model.hpp"
#include "core/method_stream.hpp"
#include "core/signature_method.hpp"
#include "core/streaming.hpp"

namespace csm::core {

class MethodRegistry;
class ModelPack;

/// Aggregate counters across all nodes of a StreamEngine.
struct EngineStats {
  std::uint64_t samples = 0;     ///< Columns ingested, summed over nodes.
  std::uint64_t signatures = 0;  ///< Feature vectors emitted, summed.
  std::uint64_t retrains = 0;    ///< Retraining passes, summed over nodes.
  double ingest_seconds = 0.0;   ///< Wall time spent inside ingestion calls.

  /// Samples per second over the accumulated ingestion time (0 if no time
  /// has been accumulated yet).
  double samples_per_second() const noexcept {
    return ingest_seconds > 0.0
               ? static_cast<double>(samples) / ingest_seconds
               : 0.0;
  }
};

/// Multi-node streaming front end over per-node MethodStreams.
class StreamEngine {
 public:
  /// All nodes share the same windowing/retrain configuration; methods are
  /// per node. Throws (via StreamOptions/MethodStream validation) on bad
  /// options or bad methods.
  explicit StreamEngine(StreamOptions options) : options_(options) {
    options_.validate();
  }

  /// Registers a node driven by any trained signature method and returns
  /// its index. `n_sensors` is required for sensor-count-agnostic methods
  /// (see MethodStream). Node names are labels only and need not be unique.
  std::size_t add_node(std::string name,
                       std::shared_ptr<const SignatureMethod> method,
                       std::size_t n_sensors = 0);

  /// CS convenience: wraps `model` with this engine's CsOptions.
  std::size_t add_node(std::string name, CsModel model);

  /// Fleet-store convenience: lazily deserialises node `id`'s record from a
  /// mapped ModelPack through `registry` (the node keeps `id` as its name).
  /// Throws std::runtime_error when the id is absent or its record is
  /// corrupt.
  std::size_t add_node(const ModelPack& pack, std::string_view id,
                       const MethodRegistry& registry,
                       std::size_t n_sensors = 0);

  std::size_t n_nodes() const noexcept;
  const StreamOptions& options() const noexcept { return options_; }
  const std::string& node_name(std::size_t node) const;
  /// The underlying per-node stream (e.g. to inspect the live method).
  /// Not synchronised: only safe while no other thread feeds this node.
  const MethodStream& stream(std::size_t node) const;

  /// Feeds a batch of columns to one node; emitted feature vectors are
  /// appended to that node's queue.
  void ingest(std::size_t node, const common::Matrix& columns);

  /// Feeds one batch per node (batches.size() must equal n_nodes(); batches
  /// may have different column counts, rows must match each node's sensor
  /// count). Nodes are processed concurrently with common::parallel_for.
  /// Shapes are validated up front; a mid-flight failure in any node (e.g.
  /// a degenerate retrain) is re-thrown after the batch completes. Nodes
  /// added concurrently with this call are not part of the batch.
  void ingest_batch(std::span<const common::Matrix> batches);

  /// Number of feature vectors waiting in a node's queue.
  std::size_t pending(std::size_t node) const;

  /// Takes (moves out) all feature vectors queued for a node.
  std::vector<std::vector<double>> drain(std::size_t node);

  /// Aggregate counters summed over all nodes, plus accumulated wall time.
  EngineStats stats() const;

 private:
  struct Node {
    std::string name;  ///< Immutable after construction.
    MethodStream stream;
    std::vector<std::vector<double>> queue;
    mutable std::mutex mutex;  ///< Guards stream + queue.

    Node(std::string name_, MethodStream stream_)
        : name(std::move(name_)), stream(std::move(stream_)) {}
  };

  /// Looks a node up under the table lock; throws std::out_of_range.
  Node& node_at(std::size_t node) const;
  void add_ingest_seconds(double seconds) noexcept;

  StreamOptions options_;
  /// unique_ptr keeps node addresses (and their mutexes) stable while
  /// add_node grows the table under the exclusive lock.
  std::vector<std::unique_ptr<Node>> nodes_;
  mutable std::shared_mutex nodes_mutex_;  ///< Guards the nodes_ table.
  std::atomic<double> ingest_seconds_{0.0};
};

}  // namespace csm::core
