// Fleet-wide online ingestion: one MethodStream per monitored node.
//
// A production ODA deployment (Fig. 1) monitors hundreds of compute nodes at
// once; each node has its own trained signature method (CS with a per-node
// model, a PCA basis, or a stateless baseline) and its own signature stream.
// StreamEngine owns one MethodStream per node — any SignatureMethod can be
// driven online, CS keeping its derivative-seeding specialisation — fans
// batched ingestion across nodes with common::parallel_for (nodes are
// independent, so the loop is embarrassingly parallel), buffers emitted
// feature vectors in per-node queues for downstream consumers (classifiers,
// dashboards), and keeps aggregate throughput counters so operators can see
// samples/sec across the whole fleet. Memory stays bounded: each node holds
// exactly n_sensors x history_length doubles of history plus its undrained
// queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "core/cs_model.hpp"
#include "core/method_stream.hpp"
#include "core/signature_method.hpp"
#include "core/streaming.hpp"

namespace csm::core {

class MethodRegistry;
class ModelPack;

/// Aggregate counters across all nodes of a StreamEngine.
struct EngineStats {
  std::uint64_t samples = 0;     ///< Columns ingested, summed over nodes.
  std::uint64_t signatures = 0;  ///< Feature vectors emitted, summed.
  std::uint64_t retrains = 0;    ///< Retraining passes, summed over nodes.
  double ingest_seconds = 0.0;   ///< Wall time spent inside ingestion calls.

  /// Samples per second over the accumulated ingestion time (0 if no time
  /// has been accumulated yet).
  double samples_per_second() const noexcept {
    return ingest_seconds > 0.0
               ? static_cast<double>(samples) / ingest_seconds
               : 0.0;
  }
};

/// Multi-node streaming front end over per-node MethodStreams.
class StreamEngine {
 public:
  /// All nodes share the same windowing/retrain configuration; methods are
  /// per node. Throws (via StreamOptions/MethodStream validation) on bad
  /// options or bad methods.
  explicit StreamEngine(StreamOptions options) : options_(options) {
    options_.validate();
  }

  /// Registers a node driven by any trained signature method and returns
  /// its index. `n_sensors` is required for sensor-count-agnostic methods
  /// (see MethodStream). Node names are labels only and need not be unique.
  std::size_t add_node(std::string name,
                       std::shared_ptr<const SignatureMethod> method,
                       std::size_t n_sensors = 0);

  /// CS convenience: wraps `model` with this engine's CsOptions.
  std::size_t add_node(std::string name, CsModel model);

  /// Fleet-store convenience: lazily deserialises node `id`'s record from a
  /// mapped ModelPack through `registry` (the node keeps `id` as its name).
  /// Throws std::runtime_error when the id is absent or its record is
  /// corrupt.
  std::size_t add_node(const ModelPack& pack, std::string_view id,
                       const MethodRegistry& registry,
                       std::size_t n_sensors = 0);

  std::size_t n_nodes() const noexcept { return nodes_.size(); }
  const StreamOptions& options() const noexcept { return options_; }
  const std::string& node_name(std::size_t node) const {
    return nodes_.at(node).name;
  }
  /// The underlying per-node stream (e.g. to inspect the live method).
  const MethodStream& stream(std::size_t node) const {
    return nodes_.at(node).stream;
  }

  /// Feeds a batch of columns to one node; emitted feature vectors are
  /// appended to that node's queue.
  void ingest(std::size_t node, const common::Matrix& columns);

  /// Feeds one batch per node (batches.size() must equal n_nodes(); batches
  /// may have different column counts, rows must match each node's sensor
  /// count). Nodes are processed concurrently with common::parallel_for.
  /// Shapes are validated up front; a mid-flight failure in any node (e.g.
  /// a degenerate retrain) is re-thrown after the batch completes.
  void ingest_batch(std::span<const common::Matrix> batches);

  /// Number of feature vectors waiting in a node's queue.
  std::size_t pending(std::size_t node) const {
    return nodes_.at(node).queue.size();
  }

  /// Takes (moves out) all feature vectors queued for a node.
  std::vector<std::vector<double>> drain(std::size_t node);

  /// Aggregate counters summed over all nodes, plus accumulated wall time.
  EngineStats stats() const;

 private:
  struct Node {
    std::string name;
    MethodStream stream;
    std::vector<std::vector<double>> queue;
  };

  StreamOptions options_;
  std::vector<Node> nodes_;
  double ingest_seconds_ = 0.0;
};

}  // namespace csm::core
