// Fleet-wide online ingestion: one MethodStream per monitored node.
//
// A production ODA deployment (Fig. 1) monitors hundreds of compute nodes at
// once; each node has its own trained signature method (CS with a per-node
// model, a PCA basis, or a stateless baseline) and its own signature stream.
// StreamEngine owns one MethodStream per node — any SignatureMethod can be
// driven online, CS keeping its derivative-seeding specialisation — fans
// batched ingestion across nodes with common::parallel_for (nodes are
// independent, so the loop is embarrassingly parallel), buffers emitted
// feature vectors in per-node queues for downstream consumers (classifiers,
// dashboards), and keeps aggregate throughput counters so operators can see
// samples/sec across the whole fleet. Memory stays bounded: each node holds
// exactly n_sensors x history_length doubles of history plus its undrained
// queue.
//
// Concurrency contract: ingest(), ingest_batch(), drain(), pending(),
// stats(), remove_node() and every add_node() overload may be called
// concurrently from multiple threads (the soak test in
// tests/core/stream_engine_soak_test.cpp runs exactly that mix under
// ThreadSanitizer). Each node carries its own mutex — ingest and drain on
// the same node serialise, different nodes proceed in parallel — and the
// node table is guarded by a shared_mutex so add_node can grow a live
// fleet without invalidating in-flight ingestion. Removal tombstones the
// slot instead of erasing it, so node indices stay stable for the engine's
// lifetime and a thread racing the removal sees either the live node or a
// named "node removed" error, never a dangling reference. Per-call
// ordering is the only guarantee: a drain racing an ingest returns either
// side of that batch's signatures, never a torn vector. The stream()
// accessor returns a reference into a node's live state and is safe only
// while no other thread is feeding or removing that node.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "core/cs_model.hpp"
#include "core/method_stream.hpp"
#include "core/signature_method.hpp"
#include "core/streaming.hpp"
#include "stats/histogram.hpp"

namespace csm::core {

class MethodRegistry;
class ModelPack;

/// Per-node ingest-latency histogram shape: time spent processing one
/// ingest call (push_all + queue append, excluding lock wait) in
/// microseconds. Fixed-width bins over [0, kLatencyMaxUs]; slower calls
/// (e.g. a retrain pass inside the ingest) clamp into the last bin and
/// show up in overflow() per the stats::Histogram clamp policy.
inline constexpr std::size_t kLatencyBins = 128;
inline constexpr double kLatencyMaxUs = 16384.0;

inline stats::Histogram make_latency_histogram() {
  return stats::Histogram(kLatencyBins, 0.0, kLatencyMaxUs);
}

/// Aggregate counters across all nodes of a StreamEngine. Counters are
/// cumulative over the engine's lifetime: removing a node folds its totals
/// into the aggregate instead of subtracting them.
struct EngineStats {
  std::uint64_t samples = 0;     ///< Columns ingested, summed over nodes.
  std::uint64_t signatures = 0;  ///< Feature vectors emitted, summed.
  std::uint64_t retrains = 0;    ///< Retraining passes, summed over nodes.
  std::uint64_t dropped = 0;     ///< Signatures shed by queue backpressure.
  std::uint64_t nodes = 0;       ///< Live (non-removed) nodes.
  /// Retrains that fired but never swapped a model in: superseded or
  /// skip-if-busy fits under the async policies (always 0 under kSync).
  std::uint64_t retrain_aborts = 0;
  /// kOnDrift drift-detector totals, summed over nodes (0 under the other
  /// policies): windows scored, windows whose score reached the threshold,
  /// and retrains the detector fired.
  std::uint64_t drift_windows = 0;
  std::uint64_t drift_flags = 0;
  std::uint64_t drift_retrains = 0;
  double ingest_seconds = 0.0;   ///< Wall time spent inside ingestion calls.
  /// Fleet-wide ingest-latency distribution: per-node histograms merged
  /// (one sample per ingest call per node).
  stats::Histogram ingest_latency_us = make_latency_histogram();
  /// Fleet-wide retrain fit latency (one sample per swapped-in retrain;
  /// shape: make_retrain_latency_histogram()).
  stats::Histogram retrain_latency_us = make_retrain_latency_histogram();

  /// Samples per second over the accumulated ingestion time (0 if no time
  /// has been accumulated yet).
  double samples_per_second() const noexcept {
    return ingest_seconds > 0.0
               ? static_cast<double>(samples) / ingest_seconds
               : 0.0;
  }
};

/// Per-node counters for the per-node stats scrape (`csmcli fleet-stats`).
/// Live nodes only: tombstones fold into the fleet-wide EngineStats instead.
struct NodeStats {
  std::string name;
  std::uint64_t samples = 0;
  std::uint64_t signatures = 0;
  std::uint64_t retrains = 0;        ///< Retrained models swapped in.
  std::uint64_t retrain_aborts = 0;  ///< Superseded / skipped retrains.
  std::uint64_t dropped = 0;
  /// kOnDrift per-node drift-detector counters (see EngineStats). NOTE:
  /// these are NOT carried by the node-stats wire rows — that row format
  /// has no extension seam (appending per-row fields breaks decoding in
  /// both directions) — only by the appended kStatsResponse fields.
  std::uint64_t drift_windows = 0;
  std::uint64_t drift_flags = 0;
  std::uint64_t drift_retrains = 0;
  stats::Histogram ingest_latency_us = make_latency_histogram();
  stats::Histogram retrain_latency_us = make_retrain_latency_histogram();
};

/// Multi-node streaming front end over per-node MethodStreams.
class StreamEngine {
 public:
  /// Ingest observer: invoked once per non-empty batch actually fed to a
  /// node, under that node's mutex, AFTER the batch was pushed — so per-node
  /// call order equals per-node ingest order even when ingest_batch fans
  /// nodes out in parallel (replay::Recorder relies on exactly this). The
  /// tap must not call back into the engine (the node mutex is held) and
  /// must tolerate concurrent invocations for different nodes.
  using IngestTap =
      std::function<void(std::size_t node, const common::Matrix& columns)>;
  /// All nodes share the same windowing/retrain configuration; methods are
  /// per node. Under an async retrain policy the engine owns the bounded
  /// retrain worker pool (options.retrain_threads workers) its nodes'
  /// shadow fits run on. Throws (via StreamOptions/MethodStream
  /// validation) on bad options or bad methods.
  explicit StreamEngine(StreamOptions options) : options_(options) {
    options_.validate();
    // kOnDrift fits inline like kSync, so only the async policies get a
    // worker pool.
    if (options_.retrain_policy == RetrainPolicy::kAsync ||
        options_.retrain_policy == RetrainPolicy::kSkipIfBusy) {
      retrain_pool_ =
          std::make_unique<RetrainExecutor>(options_.retrain_threads);
    }
  }

  /// Registers a node driven by any trained signature method and returns
  /// its index. `n_sensors` is required for sensor-count-agnostic methods
  /// (see MethodStream). Node names are labels only and need not be unique.
  std::size_t add_node(std::string name,
                       std::shared_ptr<const SignatureMethod> method,
                       std::size_t n_sensors = 0);

  /// CS convenience: wraps `model` with this engine's CsOptions.
  std::size_t add_node(std::string name, CsModel model);

  /// Fleet-store convenience: lazily deserialises node `id`'s record from a
  /// mapped ModelPack through `registry` (the node keeps `id` as its name).
  /// Throws std::runtime_error when the id is absent or its record is
  /// corrupt.
  std::size_t add_node(const ModelPack& pack, std::string_view id,
                       const MethodRegistry& registry,
                       std::size_t n_sensors = 0);

  /// Number of node slots ever created, INCLUDING removed tombstones —
  /// node indices are stable for the engine's lifetime, so this is the
  /// exclusive upper bound on valid indices (check alive() per slot).
  std::size_t n_nodes() const noexcept;
  const StreamOptions& options() const noexcept { return options_; }
  const std::string& node_name(std::size_t node) const;
  /// The underlying per-node stream (e.g. to inspect the live method).
  /// Not synchronised: only safe while no other thread feeds this node.
  const MethodStream& stream(std::size_t node) const;

  /// False once the slot has been remove_node()d (or for an out-of-range
  /// index).
  bool alive(std::size_t node) const noexcept;

  /// Removes a node from the live fleet and returns its undrained
  /// signature queue. The slot becomes a tombstone: indices of every other
  /// node are unchanged, ingest/drain/stream() on the removed index throw,
  /// and ingest_batch expects an EMPTY batch for the slot. The node's
  /// history buffer is released immediately; its cumulative counters stay
  /// in stats(). Safe to call concurrently with ingestion on other nodes.
  std::vector<std::vector<double>> remove_node(std::size_t node);

  /// Feeds a batch of columns to one node; emitted feature vectors are
  /// appended to that node's queue.
  void ingest(std::size_t node, const common::Matrix& columns);

  /// Feeds one batch per node (batches.size() must equal n_nodes(); batches
  /// may have different column counts, rows must match each node's sensor
  /// count). Nodes are processed concurrently with common::parallel_for.
  /// Shapes are validated up front; a mid-flight failure in any node (e.g.
  /// a degenerate retrain) is re-thrown after the batch completes. Nodes
  /// added concurrently with this call are not part of the batch.
  void ingest_batch(std::span<const common::Matrix> batches);

  /// Number of feature vectors waiting in a node's queue.
  std::size_t pending(std::size_t node) const;

  /// Takes (moves out) all feature vectors queued for a node.
  std::vector<std::vector<double>> drain(std::size_t node);

  /// Signatures this node has shed under the StreamOptions::max_pending
  /// backpressure policy (cumulative; still reported after removal).
  std::uint64_t dropped(std::size_t node) const;

  /// Copy of this node's ingest-latency histogram (one sample per ingest
  /// call; see kLatencyBins/kLatencyMaxUs for the shape).
  stats::Histogram latency_histogram(std::size_t node) const;

  /// Aggregate counters summed over all nodes (including removed ones),
  /// plus accumulated wall time and the merged latency histograms.
  EngineStats stats() const;

  /// Per-node counter snapshot of every LIVE node, in node-index order
  /// (tombstones are skipped — their totals live on in stats()). Safe to
  /// call concurrently with ingestion; each row is internally consistent
  /// (taken under that node's mutex).
  std::vector<NodeStats> node_stats() const;

  /// Installs (or, with an empty function, removes) the ingest tap. Safe to
  /// call concurrently with ingestion: in-flight ingest calls finish with
  /// whichever tap they loaded, subsequent ones see the new tap.
  void set_tap(IngestTap tap);

 private:
  struct Node {
    std::string name;  ///< Immutable after construction.
    /// Engaged while the node is live; remove_node() releases it (and the
    /// ring history inside) under the node mutex. The Node shell itself is
    /// never destroyed while the engine lives, so references and the mutex
    /// stay valid for threads racing a removal.
    std::optional<MethodStream> stream;
    /// Drop-oldest under max_pending: deque so eviction at the front is
    /// O(1) per dropped signature.
    std::deque<std::vector<double>> queue;
    std::uint64_t dropped = 0;
    stats::Histogram latency_us = make_latency_histogram();
    mutable std::mutex mutex;  ///< Guards stream + queue + counters above.

    Node(std::string name_, MethodStream stream_)
        : name(std::move(name_)), stream(std::move(stream_)) {}
  };

  /// Counters of removed nodes, folded in at removal so stats() stays
  /// cumulative. Guarded by nodes_mutex_ (exclusive on write).
  struct Retired {
    std::uint64_t samples = 0;
    std::uint64_t signatures = 0;
    std::uint64_t retrains = 0;
    std::uint64_t retrain_aborts = 0;
    std::uint64_t drift_windows = 0;
    std::uint64_t drift_flags = 0;
    std::uint64_t drift_retrains = 0;
    std::uint64_t dropped = 0;
    stats::Histogram latency_us = make_latency_histogram();
    stats::Histogram retrain_latency_us = make_retrain_latency_histogram();
  };

  /// Looks a node up under the table lock; throws std::out_of_range for a
  /// bad index. `live` additionally rejects removed slots with
  /// std::invalid_argument naming the node.
  Node& node_at(std::size_t node, bool live = true) const;
  void add_ingest_seconds(double seconds) noexcept;
  /// Appends signatures to a node's queue and applies the max_pending
  /// drop-oldest policy. Caller holds the node mutex.
  void enqueue(Node& n, std::vector<std::vector<double>>&& sigs);
  /// Runs one node's ingest under its mutex and records its latency;
  /// `index` is the node's table index (the tap reports it).
  void ingest_locked(std::size_t index, Node& n,
                     const common::Matrix& columns);

  StreamOptions options_;
  /// Bounded worker pool the nodes' async shadow fits run on (null under
  /// kSync). Declared before nodes_ so it is destroyed after them: a
  /// stream's destructor cancels its in-flight fit, then the pool joins.
  std::unique_ptr<RetrainExecutor> retrain_pool_;
  /// unique_ptr keeps node addresses (and their mutexes) stable while
  /// add_node grows the table under the exclusive lock.
  std::vector<std::unique_ptr<Node>> nodes_;
  mutable std::shared_mutex nodes_mutex_;  ///< Guards the nodes_ table.
  Retired retired_;
  std::atomic<double> ingest_seconds_{0.0};
  /// Ingest tap behind a shared_ptr so a concurrent set_tap never frees a
  /// function an in-flight ingest is still calling. Guarded by tap_mutex_
  /// (read: one lock per ingest call, trivial next to push_all).
  std::shared_ptr<const IngestTap> tap_;
  mutable std::mutex tap_mutex_;
};

}  // namespace csm::core
