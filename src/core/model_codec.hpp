// Model codec: one write path per method, two wire formats.
//
// SignatureMethod::save(Sink&) describes a trained model as a sequence of
// named, typed fields; the codec supplies two interchangeable back-ends:
//
//   * text  — the tagged "csmethod v2 <key>" format: one readable line per
//     field (`name value` for scalars, `name count values...` for arrays),
//     doubles printed with %.17g so every value round-trips exactly;
//   * binary — a compact record: "CSMB" magic, a format version byte, the
//     method key, a length-prefixed little-endian field body and a trailing
//     CRC32 over the whole record. This is the format core::ModelPack
//     concatenates so a fleet engine can mmap hundreds of thousands of
//     per-node models and deserialise them lazily.
//
// Sources are strict: fields are read back in writing order, and a name or
// type mismatch, a truncated payload, an absurd element count, a CRC
// mismatch or trailing data all throw std::runtime_error naming the
// offending field (and, for binary records, the byte offset).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace csm::core {
class SignatureMethod;
}

namespace csm::core::codec {

/// On-disk model flavour selector (see MethodRegistry::load / save_method).
enum class ModelFormat { kText, kBinary };

/// Tagged-text header line shared by the codec and the registry.
inline std::string text_header(std::string_view key) {
  return "csmethod v2 " + std::string(key) + "\n";
}

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: extends a prior crc32() result with further bytes, so
/// crc32(b, crc32(a)) == crc32(a ++ b). A prior of 0 (== crc32({})) starts a
/// fresh checksum; streaming writers (replay::Recorder) fold each chunk in
/// as it is written instead of buffering the whole stream.
std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t prior);

/// Little-endian wire primitives, shared by the binary model codec, the
/// model pack and the src/net frame codec: append_* pushes the value onto a
/// byte buffer, load_* reads one from `p` (the caller guarantees the bytes
/// are in range). Little-endian hosts read in place; others assemble.
void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint16_t load_u16(const std::uint8_t* p);
std::uint32_t load_u32(const std::uint8_t* p);
std::uint64_t load_u64(const std::uint8_t* p);

/// Binary record framing constants.
inline constexpr std::uint8_t kBinaryMagic[4] = {'C', 'S', 'M', 'B'};
inline constexpr std::uint8_t kBinaryVersion = 1;
/// Cap on array element counts: a corrupt count must fail loudly before it
/// turns into a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxFieldElements = 1ull << 26;

// ---------------------------------------------------------------------------
// Field-level write surface
// ---------------------------------------------------------------------------

/// Abstract typed field sink. Methods write their trained state through
/// this interface exactly once; the back-end decides the wire format.
class Sink {
 public:
  virtual ~Sink() = default;

  virtual void u64(std::string_view name, std::uint64_t value) = 0;
  virtual void f64(std::string_view name, double value) = 0;
  virtual void u64_array(std::string_view name,
                         std::span<const std::uint64_t> values) = 0;
  virtual void f64_array(std::string_view name,
                         std::span<const double> values) = 0;

  // Convenience spellings over the virtual core.
  void size(std::string_view name, std::size_t value) { u64(name, value); }
  void flag(std::string_view name, bool value) { u64(name, value ? 1 : 0); }
  /// Writes a std::size_t array as u64s (the two types differ on LLP64/
  /// LP64 platforms even when both are 64 bits wide).
  void sizes(std::string_view name, std::span<const std::size_t> values);
};

/// Abstract typed field source: fields are consumed in the order they were
/// written. All mismatches throw std::runtime_error naming the field.
class Source {
 public:
  virtual ~Source() = default;

  virtual std::uint64_t u64(std::string_view name) = 0;
  virtual double f64(std::string_view name) = 0;
  virtual std::vector<std::uint64_t> u64_array(std::string_view name) = 0;
  virtual std::vector<double> f64_array(std::string_view name) = 0;
  /// Throws std::runtime_error if unread fields or trailing bytes remain.
  virtual void finish() = 0;

  /// u64 checked to fit std::size_t.
  std::size_t size(std::string_view name);
  /// u64 checked to be exactly 0 or 1.
  bool flag(std::string_view name);
  /// u64_array checked element-wise to fit std::size_t.
  std::vector<std::size_t> sizes(std::string_view name);
};

// ---------------------------------------------------------------------------
// Text back-end ("csmethod v2" bodies)
// ---------------------------------------------------------------------------

class TextSink final : public Sink {
 public:
  void u64(std::string_view name, std::uint64_t value) override;
  void f64(std::string_view name, double value) override;
  void u64_array(std::string_view name,
                 std::span<const std::uint64_t> values) override;
  void f64_array(std::string_view name,
                 std::span<const double> values) override;

  /// The accumulated field lines (the body below the header line).
  const std::string& body() const noexcept { return body_; }

 private:
  std::string body_;
};

class TextSource final : public Source {
 public:
  explicit TextSource(std::string_view body) : in_(std::string(body)) {}

  std::uint64_t u64(std::string_view name) override;
  double f64(std::string_view name) override;
  std::vector<std::uint64_t> u64_array(std::string_view name) override;
  std::vector<double> f64_array(std::string_view name) override;
  void finish() override;

 private:
  void expect_name(std::string_view name);
  std::uint64_t parse_u64(std::string_view name);
  double parse_f64(std::string_view name);

  std::istringstream in_;
};

// ---------------------------------------------------------------------------
// Binary back-end (CRC-checked little-endian records)
// ---------------------------------------------------------------------------

class BinarySink final : public Sink {
 public:
  void u64(std::string_view name, std::uint64_t value) override;
  void f64(std::string_view name, double value) override;
  void u64_array(std::string_view name,
                 std::span<const std::uint64_t> values) override;
  void f64_array(std::string_view name,
                 std::span<const double> values) override;

  /// The accumulated field body (without record framing).
  const std::vector<std::uint8_t>& body() const noexcept { return body_; }

 private:
  void field_header(std::uint8_t type, std::string_view name,
                    std::uint64_t count);

  std::vector<std::uint8_t> body_;
};

class BinarySource final : public Source {
 public:
  /// `base_offset` is the body's offset inside the enclosing record, used
  /// to report absolute record offsets in error messages.
  explicit BinarySource(std::span<const std::uint8_t> body,
                        std::size_t base_offset = 0)
      : body_(body), base_offset_(base_offset) {}

  std::uint64_t u64(std::string_view name) override;
  double f64(std::string_view name) override;
  std::vector<std::uint64_t> u64_array(std::string_view name) override;
  std::vector<double> f64_array(std::string_view name) override;
  void finish() override;

 private:
  /// Reads and validates one field header; returns the element count.
  std::uint64_t field_header(std::uint8_t type, std::string_view name);
  std::size_t offset() const noexcept { return base_offset_ + cursor_; }

  std::span<const std::uint8_t> body_;
  std::size_t base_offset_ = 0;
  std::size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

/// Parsed view into a validated binary record.
struct RecordView {
  std::uint8_t version = 0;
  std::string key;                      ///< Registry key, e.g. "cs".
  std::span<const std::uint8_t> body;   ///< Field body (BinarySource input).
  std::size_t body_offset = 0;          ///< Body offset inside the record.
};

/// True when `bytes` starts with the binary record magic.
bool is_binary_record(std::span<const std::uint8_t> bytes);

/// Frames `body` as one record: magic, version byte, key, length-prefixed
/// body, trailing CRC32 over everything before it.
std::vector<std::uint8_t> frame_record(std::string_view key,
                                       std::span<const std::uint8_t> body);

/// Validates the framing and CRC of `record` (which must be exactly one
/// record, no trailing bytes) and returns a view into it. Throws
/// std::runtime_error naming the defect and offset.
RecordView parse_record(std::span<const std::uint8_t> record);

// ---------------------------------------------------------------------------
// Whole-method encoders (decoding needs a registry: MethodRegistry::
// deserialize for text, MethodRegistry::decode for binary records)
// ---------------------------------------------------------------------------

/// Tagged text form: "csmethod v2 <key>" header plus the field lines of
/// method.save(). Throws std::logic_error when the method is untrained or
/// has no codec key.
std::string encode_text(const SignatureMethod& method);

/// Binary record form of the same fields. Same error contract.
std::vector<std::uint8_t> encode_binary(const SignatureMethod& method);

}  // namespace csm::core::codec
