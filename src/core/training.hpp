// CS training stage (Section III-C1, Algorithm 1).
//
// Given historical sensor data, training computes (a) the shifted Pearson
// correlation matrix and per-row global coefficients of Eq. 1, (b) the greedy
// row ordering of Algorithm 1 — start from the row with maximal global
// coefficient, then repeatedly append the row maximising
// rho(candidate, last_added) * rho_global(candidate) — and (c) per-row
// min/max bounds. Complexity is O(n^2 t), dominated by the correlation
// matrix, and is parallelised across row pairs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/cancel.hpp"
#include "common/matrix.hpp"
#include "common/matrix_view.hpp"
#include "core/cs_model.hpp"
#include "stats/correlation.hpp"

namespace csm::core {

/// Reusable state threaded through repeated trainings of the same stream:
/// the correlation scratch workspace (so steady-state retrains stop
/// reallocating the O(n t) staging buffers) and a cancellation token (so a
/// superseded background retrain aborts early instead of finishing a fit
/// nobody will swap in). A default-constructed context is inert: fresh
/// buffers, a token that never fires unless someone holding a copy cancels.
struct TrainContext {
  stats::CorrelationWorkspace workspace;
  common::CancelToken cancel;
};

/// Computes the permutation vector of Algorithm 1 from a shifted pairwise
/// correlation matrix and the corresponding global coefficients. Exposed
/// separately for testing and for the ordering-strategy ablation.
std::vector<std::size_t> correlation_ordering(
    const common::Matrix& shifted_correlations,
    const std::vector<double>& global_coefficients);

/// Trains a CS model from historical data `s` (rows = sensors). Accepts any
/// window view — a common::Matrix converts implicitly, and streaming
/// retrains pass RingMatrix::history_view(). Bounds are scanned off the
/// view directly; the O(n^2 t) correlation kernel gathers ring-segment
/// views into contiguous rows once internally (see
/// stats::shifted_correlation_matrix). Results are bit-identical across
/// layouts. Throws std::invalid_argument if `s` is empty.
CsModel train(const common::MatrixView& s);

/// train() with caller-owned scratch and cancellation: the correlation pass
/// reuses ctx.workspace and polls ctx.cancel per tile, throwing
/// common::OperationCancelled once it fires. Bit-identical to train().
CsModel train(const common::MatrixView& s, TrainContext& ctx);

/// Alternative orderings used by the ablation benchmark.
enum class OrderingStrategy {
  kAlgorithm1,    ///< The paper's greedy product ordering.
  kIdentity,      ///< No reordering at all.
  kGlobalOnly,    ///< Sort by global coefficient, descending.
  kRandom,        ///< Random permutation (seed 42), the adversarial baseline.
};

/// Trains with a specific ordering strategy (bounds are always computed).
CsModel train_with_strategy(const common::MatrixView& s,
                            OrderingStrategy strategy);

/// train_with_strategy() with caller-owned scratch and cancellation (see the
/// TrainContext overload of train()).
CsModel train_with_strategy(const common::MatrixView& s,
                            OrderingStrategy strategy, TrainContext& ctx);

}  // namespace csm::core
