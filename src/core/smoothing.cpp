#include "core/smoothing.hpp"

#include <stdexcept>

#include "stats/finite_diff.hpp"

namespace csm::core {

BlockRange block_range(std::size_t i, std::size_t l, std::size_t n) {
  if (l == 0 || n == 0) {
    throw std::invalid_argument("block_range: zero blocks or sensors");
  }
  if (i >= l) throw std::invalid_argument("block_range: block index >= l");
  // Eq. 2, 0-based: begin = floor(i*n/l); end (exclusive) = ceil((i+1)*n/l).
  const std::size_t begin = i * n / l;
  const std::size_t end = ((i + 1) * n + l - 1) / l;
  return BlockRange{begin, end};
}

namespace {

// Average of all elements in rows [range.begin, range.end) of m.
double block_mean(const common::Matrix& m, const BlockRange& range) {
  double acc = 0.0;
  for (std::size_t r = range.begin; r < range.end; ++r) {
    for (double v : m.row(r)) acc += v;
  }
  const double count =
      static_cast<double>(range.size()) * static_cast<double>(m.cols());
  return count == 0.0 ? 0.0 : acc / count;
}

}  // namespace

Signature smooth(const common::Matrix& sorted, const common::Matrix& derivs,
                 std::size_t l) {
  if (sorted.empty()) throw std::invalid_argument("smooth: empty window");
  if (derivs.rows() != sorted.rows() || derivs.cols() != sorted.cols()) {
    throw std::invalid_argument("smooth: derivative shape mismatch");
  }
  if (l == 0) throw std::invalid_argument("smooth: zero blocks");
  Signature sig(l);
  for (std::size_t i = 0; i < l; ++i) {
    const BlockRange range = block_range(i, l, sorted.rows());
    sig.real()[i] = block_mean(sorted, range);
    sig.imag()[i] = block_mean(derivs, range);
  }
  return sig;
}

Signature smooth(const common::Matrix& sorted, std::size_t l) {
  return smooth(sorted, stats::backward_diff_rows(sorted), l);
}

}  // namespace csm::core
