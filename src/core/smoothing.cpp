#include "core/smoothing.hpp"

#include <stdexcept>

#include "stats/finite_diff.hpp"

namespace csm::core {

BlockRange block_range(std::size_t i, std::size_t l, std::size_t n) {
  if (l == 0 || n == 0) {
    throw std::invalid_argument("block_range: zero blocks or sensors");
  }
  if (i >= l) throw std::invalid_argument("block_range: block index >= l");
  // Eq. 2, 0-based: begin = floor(i*n/l); end (exclusive) = ceil((i+1)*n/l).
  const std::size_t begin = i * n / l;
  const std::size_t end = ((i + 1) * n + l - 1) / l;
  return BlockRange{begin, end};
}

namespace {

// Average of all elements in rows [range.begin, range.end) of m.
double block_mean(const common::Matrix& m, const BlockRange& range) {
  double acc = 0.0;
  for (std::size_t r = range.begin; r < range.end; ++r) {
    for (double v : m.row(r)) acc += v;
  }
  const double count =
      static_cast<double>(range.size()) * static_cast<double>(m.cols());
  return count == 0.0 ? 0.0 : acc / count;
}

}  // namespace

Signature smooth(const common::Matrix& sorted, const common::Matrix& derivs,
                 std::size_t l) {
  if (sorted.empty()) throw std::invalid_argument("smooth: empty window");
  if (derivs.rows() != sorted.rows() || derivs.cols() != sorted.cols()) {
    throw std::invalid_argument("smooth: derivative shape mismatch");
  }
  if (l == 0) throw std::invalid_argument("smooth: zero blocks");
  Signature sig(l);
  for (std::size_t i = 0; i < l; ++i) {
    const BlockRange range = block_range(i, l, sorted.rows());
    sig.real()[i] = block_mean(sorted, range);
    sig.imag()[i] = block_mean(derivs, range);
  }
  return sig;
}

Signature smooth(const common::Matrix& sorted, std::size_t l) {
  return smooth(sorted, stats::backward_diff_rows(sorted), l);
}

namespace {

// Normalises row `r` of the view into `norm` (norm.size() == view cols):
// a contiguous pass for row-major backing, a stride-rows pointer walk per
// column segment otherwise. Writing the normalised series into a small
// L1-resident buffer first keeps the divide/clamp loop vectorisable and the
// subsequent accumulation loops free of per-element branches — element
// values are bit-identical to materialising normalize_rows().
inline void normalize_row_into(const common::MatrixView& w, std::size_t r,
                               const stats::MinMaxBounds& b,
                               std::span<double> norm) {
  if (w.contiguous_rows()) {
    const std::span<const double> row = w.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) norm[c] = b.normalize(row[c]);
    return;
  }
  const std::size_t rows = w.rows();
  for (std::size_t k = 0; k < w.n_col_segments(); ++k) {
    const common::MatrixView::ColSegment seg = w.col_segment(k);
    const double* p = seg.data + r;
    double* dst = norm.data() + seg.first_col;
    for (std::size_t c = 0; c < seg.n_cols; ++c, p += rows) {
      dst[c] = b.normalize(*p);
    }
  }
}

}  // namespace

Signature smooth_window(const common::MatrixView& window,
                        std::span<const std::size_t> permutation,
                        std::span<const stats::MinMaxBounds> bounds,
                        const std::span<const double>* seed_col,
                        std::size_t l) {
  if (window.empty()) {
    throw std::invalid_argument("smooth_window: empty window");
  }
  const std::size_t n = window.rows();
  if (permutation.size() != n || bounds.size() != n) {
    throw std::invalid_argument(
        "smooth_window: permutation/bounds length mismatch");
  }
  if (seed_col && seed_col->size() != n) {
    throw std::invalid_argument("smooth_window: wrong seed column length");
  }
  if (l == 0) throw std::invalid_argument("smooth_window: zero blocks");

  const std::size_t wl = window.cols();
  // One normalisation pass over the view (sorted row rr is original row
  // permutation[rr] mapped through its stored bounds), written straight
  // into sorted row order — this single n x wl scratch replaces the window
  // copy, the sorted matrix, the sorted seed and the derivative matrix of
  // the materialising path. Blocks may share boundary rows, so normalising
  // up front also avoids re-normalising them per block.
  std::vector<double> norm(n * wl);
  std::vector<double> seed_norm;
  if (seed_col) seed_norm.resize(n);
  for (std::size_t rr = 0; rr < n; ++rr) {
    const std::size_t orig = permutation[rr];
    const stats::MinMaxBounds& b = bounds[orig];
    normalize_row_into(window, orig, b, {norm.data() + rr * wl, wl});
    if (seed_col) seed_norm[rr] = b.normalize((*seed_col)[orig]);
  }

  Signature sig(l);
  for (std::size_t i = 0; i < l; ++i) {
    const BlockRange range = block_range(i, l, n);
    double acc_re = 0.0;
    double acc_im = 0.0;
    // The derivative terms are backward differences of the normalised
    // series, seeded with the normalised seed value when one exists
    // (matching backward_diff_rows_seeded) and 0 for the first column
    // otherwise (matching backward_diff_rows). Each accumulator sums rows
    // ascending then columns ascending — the exact order of block_mean()
    // over materialised sorted/derivative matrices, so the fused kernel is
    // bit-identical to that path.
    for (std::size_t rr = range.begin; rr < range.end; ++rr) {
      const double* row = norm.data() + rr * wl;
      acc_re += row[0];
      acc_im += seed_col ? row[0] - seed_norm[rr] : 0.0;
      for (std::size_t c = 1; c < wl; ++c) {
        acc_re += row[c];
        acc_im += row[c] - row[c - 1];
      }
    }
    const double count =
        static_cast<double>(range.size()) * static_cast<double>(wl);
    sig.real()[i] = count == 0.0 ? 0.0 : acc_re / count;
    sig.imag()[i] = count == 0.0 ? 0.0 : acc_im / count;
  }
  return sig;
}

}  // namespace csm::core
