// End-to-end CS pipeline: model + block count + windowing.
//
// For offline dataset generation the pipeline normalises, sorts and
// differentiates the full sensor matrix once and then aggregates each sliding
// window from the shared buffers — avoiding both redundant normalisation and
// the zero-derivative spike that would appear at every window boundary if
// windows were differentiated in isolation. For online use it also implements
// the generic SignatureMethod interface (one window in, one signature out).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "core/cs_model.hpp"
#include "core/signature.hpp"
#include "core/signature_method.hpp"
#include "data/window.hpp"

namespace csm::core {

/// CS output configuration.
struct CsOptions {
  /// Number of signature blocks l; 0 means "as many as sensors" (CS-All).
  std::size_t blocks = 0;
  /// Drop the imaginary (derivative) channel when flattening ("-R" variant).
  bool real_only = false;

  std::size_t resolve_blocks(std::size_t n_sensors) const noexcept {
    return blocks == 0 ? n_sensors : blocks;
  }
};

/// Trained CS pipeline.
class CsPipeline {
 public:
  CsPipeline(CsModel model, CsOptions options)
      : model_(std::move(model)), options_(options) {}

  const CsModel& model() const noexcept { return model_; }
  const CsOptions& options() const noexcept { return options_; }

  /// Number of blocks produced per signature.
  std::size_t blocks() const noexcept {
    return options_.resolve_blocks(model_.n_sensors());
  }

  /// Computes one signature per sliding window of `s`.
  std::vector<Signature> transform(const common::Matrix& s,
                                   const data::WindowSpec& spec) const;

  /// Computes a single signature from one window (sorting + smoothing).
  Signature transform_window(const common::Matrix& window) const;

  /// Sorted (normalised + permuted) view of the full matrix — the "sorting
  /// stage" output used for visualisation and the JS-divergence reference.
  common::Matrix sorted(const common::Matrix& s) const {
    return model_.sort(s);
  }

 private:
  CsModel model_;
  CsOptions options_;
};

/// Stacks signatures as columns into (real, imaginary) heatmap matrices of
/// shape l x n_signatures — the image representation of Figs. 2, 6 and 7.
std::pair<common::Matrix, common::Matrix> signature_heatmaps(
    const std::vector<Signature>& sigs);

/// SignatureMethod adapter so CS can be driven by the same harness as the
/// baselines. Holds a reference-counted pipeline.
class CsSignatureMethod final : public SignatureMethod {
 public:
  CsSignatureMethod(std::shared_ptr<const CsPipeline> pipeline,
                    std::string display_name = {});

  std::string name() const override { return name_; }
  std::size_t signature_length(std::size_t n_sensors) const override;
  std::vector<double> compute(const common::Matrix& window) const override;

 private:
  std::shared_ptr<const CsPipeline> pipeline_;
  std::string name_;
};

}  // namespace csm::core
