// End-to-end CS pipeline: model + block count + windowing.
//
// For offline dataset generation the pipeline normalises, sorts and
// differentiates the full sensor matrix once and then aggregates each sliding
// window from the shared buffers — avoiding both redundant normalisation and
// the zero-derivative spike that would appear at every window boundary if
// windows were differentiated in isolation. For online use it also implements
// the generic SignatureMethod interface (one window in, one signature out).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "core/cs_model.hpp"
#include "core/signature.hpp"
#include "core/signature_method.hpp"
#include "data/window.hpp"

namespace csm::core {

/// CS output configuration.
struct CsOptions {
  /// Number of signature blocks l; 0 means "as many as sensors" (CS-All).
  std::size_t blocks = 0;
  /// Drop the imaginary (derivative) channel when flattening ("-R" variant).
  bool real_only = false;

  std::size_t resolve_blocks(std::size_t n_sensors) const noexcept {
    return blocks == 0 ? n_sensors : blocks;
  }
};

/// Trained CS pipeline.
class CsPipeline {
 public:
  CsPipeline(CsModel model, CsOptions options)
      : model_(std::move(model)), options_(options) {}

  const CsModel& model() const noexcept { return model_; }
  const CsOptions& options() const noexcept { return options_; }

  /// Number of blocks produced per signature.
  std::size_t blocks() const noexcept {
    return options_.resolve_blocks(model_.n_sensors());
  }

  /// Computes one signature per sliding window of `s`.
  std::vector<Signature> transform(const common::Matrix& s,
                                   const data::WindowSpec& spec) const;

  /// Computes a single signature from one window view (sorting + smoothing
  /// fused over the view — no intermediate matrices). A common::Matrix
  /// window converts implicitly.
  Signature transform_window(const common::MatrixView& window) const;

  /// Sorted (normalised + permuted) view of the full matrix — the "sorting
  /// stage" output used for visualisation and the JS-divergence reference.
  common::Matrix sorted(const common::Matrix& s) const {
    return model_.sort(s);
  }

 private:
  CsModel model_;
  CsOptions options_;
};

/// Stacks signatures as columns into (real, imaginary) heatmap matrices of
/// shape l x n_signatures — the image representation of Figs. 2, 6 and 7.
std::pair<common::Matrix, common::Matrix> signature_heatmaps(
    const std::vector<Signature>& sigs);

/// SignatureMethod adapter so CS can be driven by the same harness as the
/// baselines. Exists in two states: an untrained prototype (options only —
/// the registry's "cs:blocks=20" form) that fit() turns into a trained
/// method, and a trained method holding a reference-counted pipeline.
class CsSignatureMethod final : public SignatureMethod {
 public:
  /// Untrained prototype; compute()/serialize() throw until fit().
  explicit CsSignatureMethod(CsOptions options, std::string display_name = {});

  /// Trained method (the usual deployment). Throws std::invalid_argument on
  /// a null pipeline.
  CsSignatureMethod(std::shared_ptr<const CsPipeline> pipeline,
                    std::string display_name = {});

  // Keep the inherited Matrix-taking thin overloads visible next to the
  // MatrixView overrides below.
  using SignatureMethod::compute;
  using SignatureMethod::compute_streaming;
  using SignatureMethod::fit;

  std::string name() const override { return name_; }
  std::size_t signature_length(std::size_t n_sensors) const override;
  std::vector<double> compute(const common::MatrixView& window) const override;

  bool trained() const override { return pipeline_ != nullptr; }
  std::size_t n_sensors() const override;
  /// Trains Algorithm 1 + bounds on `train` under this method's options.
  std::unique_ptr<SignatureMethod> fit(
      const common::MatrixView& train) const override;
  /// fit() reusing the context's correlation workspace, aborting with
  /// common::OperationCancelled when its token fires mid-train.
  std::unique_ptr<SignatureMethod> fit(const common::MatrixView& train,
                                       TrainContext& ctx) const override;
  std::string codec_key() const override { return "cs"; }
  /// Fields: blocks, real-only, perm, lo, hi (the embedded CsModel).
  void save(codec::Sink& sink) const override;
  /// Seeds the derivative channel with the raw column preceding the window.
  std::vector<double> compute_streaming(
      const common::MatrixView& window,
      const std::span<const double>* seed_col) const override;

  const CsOptions& options() const noexcept { return options_; }
  /// Null when untrained.
  std::shared_ptr<const CsPipeline> pipeline() const noexcept {
    return pipeline_;
  }

  /// Reads the save() fields back from either codec back-end. Throws
  /// std::runtime_error on malformed input.
  static std::unique_ptr<CsSignatureMethod> read(codec::Source& in);

  /// Parses the body of the legacy "csmethod v1 cs" format (options plus an
  /// embedded CsModel blob). Throws std::runtime_error on malformed input.
  static std::unique_ptr<CsSignatureMethod> deserialize_body(
      const std::string& body);

 private:
  std::shared_ptr<const CsPipeline> pipeline_;  ///< Null = untrained.
  CsOptions options_;
  std::string name_;
};

}  // namespace csm::core
