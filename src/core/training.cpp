#include "core/training.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "stats/correlation.hpp"
#include "stats/normalize.hpp"

namespace csm::core {

std::vector<std::size_t> correlation_ordering(
    const common::Matrix& shifted, const std::vector<double>& global) {
  const std::size_t n = shifted.rows();
  if (shifted.cols() != n) {
    throw std::invalid_argument("correlation_ordering: matrix not square");
  }
  if (global.size() != n) {
    throw std::invalid_argument("correlation_ordering: coefficient mismatch");
  }
  std::vector<std::size_t> p;
  p.reserve(n);
  std::vector<bool> used(n, false);

  // Line 3: start from the row with the maximal global coefficient.
  std::size_t next = 0;
  for (std::size_t k = 1; k < n; ++k) {
    if (global[k] > global[next]) next = k;
  }
  used[next] = true;
  p.push_back(next);

  // Lines 6-10: greedily append the row maximising rho(k, last) * rho_k.
  while (p.size() < n) {
    const std::size_t last = p.back();
    std::size_t best = n;
    double best_score = -1.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (used[k]) continue;
      const double score = shifted(k, last) * global[k];
      if (score > best_score) {
        best_score = score;
        best = k;
      }
    }
    used[best] = true;
    p.push_back(best);
  }
  return p;
}

CsModel train(const common::MatrixView& s) {
  TrainContext ctx;
  return train_with_strategy(s, OrderingStrategy::kAlgorithm1, ctx);
}

CsModel train(const common::MatrixView& s, TrainContext& ctx) {
  return train_with_strategy(s, OrderingStrategy::kAlgorithm1, ctx);
}

CsModel train_with_strategy(const common::MatrixView& s,
                            OrderingStrategy strategy) {
  TrainContext ctx;
  return train_with_strategy(s, strategy, ctx);
}

CsModel train_with_strategy(const common::MatrixView& s,
                            OrderingStrategy strategy, TrainContext& ctx) {
  if (s.empty()) throw std::invalid_argument("train: empty sensor matrix");
  ctx.cancel.throw_if_cancelled();
  std::vector<stats::MinMaxBounds> bounds = stats::row_bounds(s);
  std::vector<std::size_t> perm;
  switch (strategy) {
    case OrderingStrategy::kAlgorithm1: {
      const common::Matrix shifted =
          stats::shifted_correlation_matrix(s, ctx.workspace, &ctx.cancel);
      ctx.cancel.throw_if_cancelled();
      perm = correlation_ordering(shifted, stats::global_coefficients(shifted));
      break;
    }
    case OrderingStrategy::kIdentity: {
      perm.resize(s.rows());
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      break;
    }
    case OrderingStrategy::kGlobalOnly: {
      const common::Matrix shifted =
          stats::shifted_correlation_matrix(s, ctx.workspace, &ctx.cancel);
      const std::vector<double> global = stats::global_coefficients(shifted);
      perm.resize(s.rows());
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      std::stable_sort(perm.begin(), perm.end(),
                       [&](std::size_t a, std::size_t b) {
                         return global[a] > global[b];
                       });
      break;
    }
    case OrderingStrategy::kRandom: {
      common::Rng rng(42);
      perm = rng.permutation(s.rows());
      break;
    }
  }
  return CsModel(std::move(perm), std::move(bounds));
}

}  // namespace csm::core
