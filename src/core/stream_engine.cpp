#include "core/stream_engine.hpp"

#include <exception>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/model_pack.hpp"
#include "core/pipeline.hpp"

namespace csm::core {

StreamEngine::Node& StreamEngine::node_at(std::size_t node, bool live) const {
  std::shared_lock lock(nodes_mutex_);
  if (node >= nodes_.size()) {
    throw std::out_of_range("StreamEngine: node index " +
                            std::to_string(node) + " out of range (fleet has " +
                            std::to_string(nodes_.size()) + " nodes)");
  }
  Node& n = *nodes_[node];
  if (live) {
    // The removed check needs the node mutex (remove_node resets the
    // stream under it); take it briefly so a racing removal is seen.
    std::lock_guard node_lock(n.mutex);
    if (!n.stream.has_value()) {
      throw std::invalid_argument("StreamEngine: node " +
                                  std::to_string(node) + " (\"" + n.name +
                                  "\") has been removed");
    }
  }
  return n;
}

void StreamEngine::add_ingest_seconds(double seconds) noexcept {
  // compare_exchange loop instead of fetch_add: portable across standard
  // libraries that predate atomic<double>::fetch_add.
  double current = ingest_seconds_.load(std::memory_order_relaxed);
  while (!ingest_seconds_.compare_exchange_weak(current, current + seconds,
                                                std::memory_order_relaxed)) {
  }
}

void StreamEngine::enqueue(Node& n, std::vector<std::vector<double>>&& sigs) {
  n.queue.insert(n.queue.end(), std::make_move_iterator(sigs.begin()),
                 std::make_move_iterator(sigs.end()));
  const std::size_t cap = options_.max_pending;
  if (cap != 0 && n.queue.size() > cap) {
    const std::size_t excess = n.queue.size() - cap;
    n.queue.erase(n.queue.begin(),
                  n.queue.begin() + static_cast<std::ptrdiff_t>(excess));
    n.dropped += excess;
  }
}

void StreamEngine::ingest_locked(std::size_t index, Node& n,
                                 const common::Matrix& columns) {
  // Caller holds n.mutex. The timer covers processing only (push_all +
  // queue append), not lock wait — that is the per-call ingest latency the
  // histogram records.
  const common::Timer timer;
  if (!n.stream.has_value()) {
    throw std::invalid_argument("StreamEngine: node \"" + n.name +
                                "\" has been removed");
  }
  enqueue(n, n.stream->push_all(columns));
  const double seconds = timer.seconds();
  n.latency_us.add(seconds * 1e6);
  add_ingest_seconds(seconds);
  if (columns.cols() == 0) return;
  // Tap AFTER the push, still under the node mutex: a recorder sees each
  // node's batches in exactly the order the node's stream consumed them.
  std::shared_ptr<const IngestTap> tap;
  {
    const std::lock_guard<std::mutex> tap_lock(tap_mutex_);
    tap = tap_;
  }
  if (tap) (*tap)(index, columns);
}

void StreamEngine::set_tap(IngestTap tap) {
  auto next = tap ? std::make_shared<const IngestTap>(std::move(tap))
                  : std::shared_ptr<const IngestTap>();
  const std::lock_guard<std::mutex> tap_lock(tap_mutex_);
  tap_ = std::move(next);
}

std::size_t StreamEngine::add_node(
    std::string name, std::shared_ptr<const SignatureMethod> method,
    std::size_t n_sensors) {
  // Construct (and let MethodStream validate) outside the exclusive lock so
  // a bad method never stalls concurrent ingestion.
  auto node = std::make_unique<Node>(
      std::move(name), MethodStream(std::move(method), options_, n_sensors,
                                    retrain_pool_.get()));
  std::unique_lock lock(nodes_mutex_);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

std::size_t StreamEngine::add_node(std::string name, CsModel model) {
  auto pipeline =
      std::make_shared<const CsPipeline>(std::move(model), options_.cs);
  return add_node(std::move(name),
                  std::make_shared<const CsSignatureMethod>(
                      std::move(pipeline)));
}

std::size_t StreamEngine::add_node(const ModelPack& pack, std::string_view id,
                                   const MethodRegistry& registry,
                                   std::size_t n_sensors) {
  return add_node(std::string(id), pack.load(id, registry), n_sensors);
}

std::size_t StreamEngine::n_nodes() const noexcept {
  std::shared_lock lock(nodes_mutex_);
  return nodes_.size();
}

const std::string& StreamEngine::node_name(std::size_t node) const {
  return node_at(node, /*live=*/false).name;
}

const MethodStream& StreamEngine::stream(std::size_t node) const {
  return *node_at(node).stream;
}

bool StreamEngine::alive(std::size_t node) const noexcept {
  std::shared_lock lock(nodes_mutex_);
  if (node >= nodes_.size()) return false;
  Node& n = *nodes_[node];
  std::lock_guard node_lock(n.mutex);
  return n.stream.has_value();
}

std::vector<std::vector<double>> StreamEngine::remove_node(std::size_t node) {
  // Exclusive table lock: stats() and a racing remove of the same node
  // serialise against the retired_ fold below. The Node shell survives so
  // threads already holding a reference merely observe the tombstone.
  std::unique_lock lock(nodes_mutex_);
  if (node >= nodes_.size()) {
    throw std::out_of_range("StreamEngine: node index " +
                            std::to_string(node) + " out of range (fleet has " +
                            std::to_string(nodes_.size()) + " nodes)");
  }
  Node& n = *nodes_[node];
  std::lock_guard node_lock(n.mutex);
  if (!n.stream.has_value()) {
    throw std::invalid_argument("StreamEngine: node " + std::to_string(node) +
                                " (\"" + n.name + "\") has been removed");
  }
  retired_.samples += n.stream->samples_seen();
  retired_.signatures += n.stream->signatures_emitted();
  retired_.retrains += n.stream->retrain_count();
  retired_.retrain_aborts += n.stream->retrain_aborts();
  retired_.drift_windows += n.stream->drift_windows();
  retired_.drift_flags += n.stream->drift_flags();
  retired_.drift_retrains += n.stream->drift_retrains();
  retired_.dropped += n.dropped;
  retired_.latency_us.merge(n.latency_us);
  retired_.retrain_latency_us.merge(n.stream->retrain_latency_us());
  n.stream.reset();  // Frees the ring history; the tombstone stays.
  std::vector<std::vector<double>> remaining(
      std::make_move_iterator(n.queue.begin()),
      std::make_move_iterator(n.queue.end()));
  n.queue.clear();
  n.queue.shrink_to_fit();
  return remaining;
}

void StreamEngine::ingest(std::size_t node, const common::Matrix& columns) {
  Node& n = node_at(node);
  std::lock_guard node_lock(n.mutex);
  ingest_locked(node, n, columns);
}

void StreamEngine::ingest_batch(std::span<const common::Matrix> batches) {
  // The shared table lock pins the batch's node set for the whole call:
  // concurrent add_node/remove_node wait, concurrent ingest/drain proceed.
  std::shared_lock lock(nodes_mutex_);
  if (batches.size() != nodes_.size()) {
    throw std::invalid_argument(
        "StreamEngine::ingest_batch: one batch per node required");
  }
  for (std::size_t i = 0; i < batches.size(); ++i) {
    std::lock_guard node_lock(nodes_[i]->mutex);
    if (!nodes_[i]->stream.has_value()) {
      // Removed slots keep their index; the caller signals "nothing for
      // this tombstone" with an empty batch.
      if (batches[i].cols() != 0) {
        throw std::invalid_argument(
            "StreamEngine::ingest_batch: batch " + std::to_string(i) +
            " targets a removed node (pass an empty batch for its slot)");
      }
    } else if (batches[i].rows() != nodes_[i]->stream->n_sensors()) {
      throw std::invalid_argument("StreamEngine::ingest_batch: batch " +
                                  std::to_string(i) +
                                  " has wrong sensor count");
    }
  }
  // parallel_for bodies must not throw; capture the first node failure and
  // surface it once the whole batch has run.
  std::vector<std::exception_ptr> errors(nodes_.size());
  common::parallel_for(nodes_.size(), [&](std::size_t i) {
    try {
      Node& n = *nodes_[i];
      std::lock_guard node_lock(n.mutex);
      if (!n.stream.has_value()) return;  // Tombstone, empty batch: no-op.
      ingest_locked(i, n, batches[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::size_t StreamEngine::pending(std::size_t node) const {
  Node& n = node_at(node);
  std::lock_guard node_lock(n.mutex);
  return n.queue.size();
}

std::vector<std::vector<double>> StreamEngine::drain(std::size_t node) {
  Node& n = node_at(node);
  std::lock_guard node_lock(n.mutex);
  std::vector<std::vector<double>> out(
      std::make_move_iterator(n.queue.begin()),
      std::make_move_iterator(n.queue.end()));
  n.queue.clear();
  return out;
}

std::uint64_t StreamEngine::dropped(std::size_t node) const {
  Node& n = node_at(node, /*live=*/false);
  std::lock_guard node_lock(n.mutex);
  return n.dropped;
}

stats::Histogram StreamEngine::latency_histogram(std::size_t node) const {
  Node& n = node_at(node, /*live=*/false);
  std::lock_guard node_lock(n.mutex);
  return n.latency_us;
}

EngineStats StreamEngine::stats() const {
  EngineStats s;
  s.ingest_seconds = ingest_seconds_.load(std::memory_order_relaxed);
  std::shared_lock lock(nodes_mutex_);
  s.samples = retired_.samples;
  s.signatures = retired_.signatures;
  s.retrains = retired_.retrains;
  s.retrain_aborts = retired_.retrain_aborts;
  s.drift_windows = retired_.drift_windows;
  s.drift_flags = retired_.drift_flags;
  s.drift_retrains = retired_.drift_retrains;
  s.dropped = retired_.dropped;
  s.ingest_latency_us.merge(retired_.latency_us);
  s.retrain_latency_us.merge(retired_.retrain_latency_us);
  for (const auto& n : nodes_) {
    std::lock_guard node_lock(n->mutex);
    if (!n->stream.has_value()) continue;
    ++s.nodes;
    s.samples += n->stream->samples_seen();
    s.signatures += n->stream->signatures_emitted();
    s.retrains += n->stream->retrain_count();
    s.retrain_aborts += n->stream->retrain_aborts();
    s.drift_windows += n->stream->drift_windows();
    s.drift_flags += n->stream->drift_flags();
    s.drift_retrains += n->stream->drift_retrains();
    s.dropped += n->dropped;
    s.ingest_latency_us.merge(n->latency_us);
    s.retrain_latency_us.merge(n->stream->retrain_latency_us());
  }
  return s;
}

std::vector<NodeStats> StreamEngine::node_stats() const {
  std::shared_lock lock(nodes_mutex_);
  std::vector<NodeStats> rows;
  rows.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    std::lock_guard node_lock(n->mutex);
    if (!n->stream.has_value()) continue;  // Tombstone: folded into stats().
    NodeStats row;
    row.name = n->name;
    row.samples = n->stream->samples_seen();
    row.signatures = n->stream->signatures_emitted();
    row.retrains = n->stream->retrain_count();
    row.retrain_aborts = n->stream->retrain_aborts();
    row.drift_windows = n->stream->drift_windows();
    row.drift_flags = n->stream->drift_flags();
    row.drift_retrains = n->stream->drift_retrains();
    row.dropped = n->dropped;
    row.ingest_latency_us = n->latency_us;
    row.retrain_latency_us = n->stream->retrain_latency_us();
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace csm::core
