#include "core/stream_engine.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/model_pack.hpp"
#include "core/pipeline.hpp"

namespace csm::core {

std::size_t StreamEngine::add_node(
    std::string name, std::shared_ptr<const SignatureMethod> method,
    std::size_t n_sensors) {
  nodes_.push_back(Node{
      std::move(name),
      MethodStream(std::move(method), options_, n_sensors), {}});
  return nodes_.size() - 1;
}

std::size_t StreamEngine::add_node(std::string name, CsModel model) {
  auto pipeline =
      std::make_shared<const CsPipeline>(std::move(model), options_.cs);
  return add_node(std::move(name),
                  std::make_shared<const CsSignatureMethod>(
                      std::move(pipeline)));
}

std::size_t StreamEngine::add_node(const ModelPack& pack, std::string_view id,
                                   const MethodRegistry& registry,
                                   std::size_t n_sensors) {
  return add_node(std::string(id), pack.load(id, registry), n_sensors);
}

void StreamEngine::ingest(std::size_t node, const common::Matrix& columns) {
  Node& n = nodes_.at(node);
  const common::Timer timer;
  auto sigs = n.stream.push_all(columns);
  ingest_seconds_ += timer.seconds();
  n.queue.insert(n.queue.end(), std::make_move_iterator(sigs.begin()),
                 std::make_move_iterator(sigs.end()));
}

void StreamEngine::ingest_batch(std::span<const common::Matrix> batches) {
  if (batches.size() != nodes_.size()) {
    throw std::invalid_argument(
        "StreamEngine::ingest_batch: one batch per node required");
  }
  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].rows() != nodes_[i].stream.n_sensors()) {
      throw std::invalid_argument("StreamEngine::ingest_batch: batch " +
                                  std::to_string(i) +
                                  " has wrong sensor count");
    }
  }
  // parallel_for bodies must not throw; capture the first node failure and
  // surface it once the whole batch has run.
  std::vector<std::exception_ptr> errors(nodes_.size());
  const common::Timer timer;
  common::parallel_for(nodes_.size(), [&](std::size_t i) {
    try {
      auto sigs = nodes_[i].stream.push_all(batches[i]);
      auto& queue = nodes_[i].queue;
      queue.insert(queue.end(), std::make_move_iterator(sigs.begin()),
                   std::make_move_iterator(sigs.end()));
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  ingest_seconds_ += timer.seconds();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<std::vector<double>> StreamEngine::drain(std::size_t node) {
  return std::exchange(nodes_.at(node).queue, {});
}

EngineStats StreamEngine::stats() const {
  EngineStats s;
  s.ingest_seconds = ingest_seconds_;
  for (const Node& n : nodes_) {
    s.samples += n.stream.samples_seen();
    s.signatures += n.stream.signatures_emitted();
    s.retrains += n.stream.retrain_count();
  }
  return s;
}

}  // namespace csm::core
