#include "core/stream_engine.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/model_pack.hpp"
#include "core/pipeline.hpp"

namespace csm::core {

StreamEngine::Node& StreamEngine::node_at(std::size_t node) const {
  std::shared_lock lock(nodes_mutex_);
  if (node >= nodes_.size()) {
    throw std::out_of_range("StreamEngine: node index " +
                            std::to_string(node) + " out of range (fleet has " +
                            std::to_string(nodes_.size()) + " nodes)");
  }
  return *nodes_[node];
}

void StreamEngine::add_ingest_seconds(double seconds) noexcept {
  // compare_exchange loop instead of fetch_add: portable across standard
  // libraries that predate atomic<double>::fetch_add.
  double current = ingest_seconds_.load(std::memory_order_relaxed);
  while (!ingest_seconds_.compare_exchange_weak(current, current + seconds,
                                                std::memory_order_relaxed)) {
  }
}

std::size_t StreamEngine::add_node(
    std::string name, std::shared_ptr<const SignatureMethod> method,
    std::size_t n_sensors) {
  // Construct (and let MethodStream validate) outside the exclusive lock so
  // a bad method never stalls concurrent ingestion.
  auto node = std::make_unique<Node>(
      std::move(name), MethodStream(std::move(method), options_, n_sensors));
  std::unique_lock lock(nodes_mutex_);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

std::size_t StreamEngine::add_node(std::string name, CsModel model) {
  auto pipeline =
      std::make_shared<const CsPipeline>(std::move(model), options_.cs);
  return add_node(std::move(name),
                  std::make_shared<const CsSignatureMethod>(
                      std::move(pipeline)));
}

std::size_t StreamEngine::add_node(const ModelPack& pack, std::string_view id,
                                   const MethodRegistry& registry,
                                   std::size_t n_sensors) {
  return add_node(std::string(id), pack.load(id, registry), n_sensors);
}

std::size_t StreamEngine::n_nodes() const noexcept {
  std::shared_lock lock(nodes_mutex_);
  return nodes_.size();
}

const std::string& StreamEngine::node_name(std::size_t node) const {
  return node_at(node).name;
}

const MethodStream& StreamEngine::stream(std::size_t node) const {
  return node_at(node).stream;
}

void StreamEngine::ingest(std::size_t node, const common::Matrix& columns) {
  Node& n = node_at(node);
  const common::Timer timer;
  {
    std::lock_guard node_lock(n.mutex);
    auto sigs = n.stream.push_all(columns);
    n.queue.insert(n.queue.end(), std::make_move_iterator(sigs.begin()),
                   std::make_move_iterator(sigs.end()));
  }
  add_ingest_seconds(timer.seconds());
}

void StreamEngine::ingest_batch(std::span<const common::Matrix> batches) {
  // The shared table lock pins the batch's node set for the whole call:
  // concurrent add_node waits, concurrent ingest/drain proceed.
  std::shared_lock lock(nodes_mutex_);
  if (batches.size() != nodes_.size()) {
    throw std::invalid_argument(
        "StreamEngine::ingest_batch: one batch per node required");
  }
  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (batches[i].rows() != nodes_[i]->stream.n_sensors()) {
      throw std::invalid_argument("StreamEngine::ingest_batch: batch " +
                                  std::to_string(i) +
                                  " has wrong sensor count");
    }
  }
  // parallel_for bodies must not throw; capture the first node failure and
  // surface it once the whole batch has run.
  std::vector<std::exception_ptr> errors(nodes_.size());
  const common::Timer timer;
  common::parallel_for(nodes_.size(), [&](std::size_t i) {
    try {
      Node& n = *nodes_[i];
      std::lock_guard node_lock(n.mutex);
      auto sigs = n.stream.push_all(batches[i]);
      n.queue.insert(n.queue.end(), std::make_move_iterator(sigs.begin()),
                     std::make_move_iterator(sigs.end()));
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  add_ingest_seconds(timer.seconds());
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::size_t StreamEngine::pending(std::size_t node) const {
  Node& n = node_at(node);
  std::lock_guard node_lock(n.mutex);
  return n.queue.size();
}

std::vector<std::vector<double>> StreamEngine::drain(std::size_t node) {
  Node& n = node_at(node);
  std::lock_guard node_lock(n.mutex);
  return std::exchange(n.queue, {});
}

EngineStats StreamEngine::stats() const {
  EngineStats s;
  s.ingest_seconds = ingest_seconds_.load(std::memory_order_relaxed);
  std::shared_lock lock(nodes_mutex_);
  for (const auto& n : nodes_) {
    std::lock_guard node_lock(n->mutex);
    s.samples += n->stream.samples_seen();
    s.signatures += n->stream.signatures_emitted();
    s.retrains += n->stream.retrain_count();
  }
  return s;
}

}  // namespace csm::core
