#include "core/pipeline.hpp"

#include <stdexcept>

#include "core/smoothing.hpp"
#include "stats/finite_diff.hpp"

namespace csm::core {

std::vector<Signature> CsPipeline::transform(
    const common::Matrix& s, const data::WindowSpec& spec) const {
  spec.validate();
  const common::Matrix sorted_full = model_.sort(s);
  const common::Matrix derivs_full = stats::backward_diff_rows(sorted_full);
  const std::size_t l = blocks();
  const std::size_t n_windows = spec.count(s.cols());
  std::vector<Signature> out;
  out.reserve(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    const std::size_t first = spec.start(w);
    out.push_back(smooth(sorted_full.sub_cols(first, spec.length),
                         derivs_full.sub_cols(first, spec.length), l));
  }
  return out;
}

Signature CsPipeline::transform_window(const common::Matrix& window) const {
  const common::Matrix sorted = model_.sort(window);
  return smooth(sorted, blocks());
}

std::pair<common::Matrix, common::Matrix> signature_heatmaps(
    const std::vector<Signature>& sigs) {
  if (sigs.empty()) {
    throw std::invalid_argument("signature_heatmaps: no signatures");
  }
  const std::size_t l = sigs.front().length();
  for (const Signature& s : sigs) {
    if (s.length() != l) {
      throw std::invalid_argument("signature_heatmaps: ragged lengths");
    }
  }
  common::Matrix re(l, sigs.size());
  common::Matrix im(l, sigs.size());
  for (std::size_t c = 0; c < sigs.size(); ++c) {
    for (std::size_t r = 0; r < l; ++r) {
      re(r, c) = sigs[c].real()[r];
      im(r, c) = sigs[c].imag()[r];
    }
  }
  return {std::move(re), std::move(im)};
}

CsSignatureMethod::CsSignatureMethod(
    std::shared_ptr<const CsPipeline> pipeline, std::string display_name)
    : pipeline_(std::move(pipeline)), name_(std::move(display_name)) {
  if (!pipeline_) {
    throw std::invalid_argument("CsSignatureMethod: null pipeline");
  }
  if (name_.empty()) {
    const CsOptions& opt = pipeline_->options();
    name_ = opt.blocks == 0 ? "CS-All" : "CS-" + std::to_string(opt.blocks);
    if (opt.real_only) name_ += "-R";
  }
}

std::size_t CsSignatureMethod::signature_length(std::size_t n_sensors) const {
  const CsOptions& opt = pipeline_->options();
  const std::size_t l = opt.resolve_blocks(n_sensors);
  return opt.real_only ? l : 2 * l;
}

std::vector<double> CsSignatureMethod::compute(
    const common::Matrix& window) const {
  return pipeline_->transform_window(window).flatten(
      pipeline_->options().real_only);
}

}  // namespace csm::core
