#include "core/pipeline.hpp"

#include <sstream>
#include <stdexcept>

#include "core/model_codec.hpp"
#include "core/smoothing.hpp"
#include "core/training.hpp"
#include "stats/finite_diff.hpp"

namespace csm::core {

std::vector<Signature> CsPipeline::transform(
    const common::Matrix& s, const data::WindowSpec& spec) const {
  spec.validate();
  const common::Matrix sorted_full = model_.sort(s);
  const common::Matrix derivs_full = stats::backward_diff_rows(sorted_full);
  const std::size_t l = blocks();
  const std::size_t n_windows = spec.count(s.cols());
  std::vector<Signature> out;
  out.reserve(n_windows);
  for (std::size_t w = 0; w < n_windows; ++w) {
    const std::size_t first = spec.start(w);
    out.push_back(smooth(sorted_full.sub_cols(first, spec.length),
                         derivs_full.sub_cols(first, spec.length), l));
  }
  return out;
}

Signature CsPipeline::transform_window(
    const common::MatrixView& window) const {
  if (window.rows() != model_.n_sensors()) {
    throw std::invalid_argument(
        "CsPipeline::transform_window: sensor count mismatch");
  }
  return smooth_window(window, model_.permutation(), model_.bounds(), nullptr,
                       blocks());
}

std::pair<common::Matrix, common::Matrix> signature_heatmaps(
    const std::vector<Signature>& sigs) {
  if (sigs.empty()) {
    throw std::invalid_argument("signature_heatmaps: no signatures");
  }
  const std::size_t l = sigs.front().length();
  for (const Signature& s : sigs) {
    if (s.length() != l) {
      throw std::invalid_argument("signature_heatmaps: ragged lengths");
    }
  }
  common::Matrix re(l, sigs.size());
  common::Matrix im(l, sigs.size());
  for (std::size_t c = 0; c < sigs.size(); ++c) {
    for (std::size_t r = 0; r < l; ++r) {
      re(r, c) = sigs[c].real()[r];
      im(r, c) = sigs[c].imag()[r];
    }
  }
  return {std::move(re), std::move(im)};
}

namespace {

std::string cs_display_name(const CsOptions& opt) {
  std::string name =
      opt.blocks == 0 ? "CS-All" : "CS-" + std::to_string(opt.blocks);
  if (opt.real_only) name += "-R";
  return name;
}

}  // namespace

CsSignatureMethod::CsSignatureMethod(CsOptions options,
                                     std::string display_name)
    : options_(options), name_(std::move(display_name)) {
  if (name_.empty()) name_ = cs_display_name(options_);
}

CsSignatureMethod::CsSignatureMethod(
    std::shared_ptr<const CsPipeline> pipeline, std::string display_name)
    : pipeline_(std::move(pipeline)), name_(std::move(display_name)) {
  if (!pipeline_) {
    throw std::invalid_argument("CsSignatureMethod: null pipeline");
  }
  options_ = pipeline_->options();
  if (name_.empty()) name_ = cs_display_name(options_);
}

std::size_t CsSignatureMethod::signature_length(std::size_t n_sensors) const {
  const std::size_t l = options_.resolve_blocks(n_sensors);
  return options_.real_only ? l : 2 * l;
}

std::vector<double> CsSignatureMethod::compute(
    const common::MatrixView& window) const {
  if (!pipeline_) {
    throw std::logic_error("CsSignatureMethod: compute() before fit()");
  }
  return pipeline_->transform_window(window).flatten(options_.real_only);
}

std::size_t CsSignatureMethod::n_sensors() const {
  return pipeline_ ? pipeline_->model().n_sensors() : 0;
}

std::unique_ptr<SignatureMethod> CsSignatureMethod::fit(
    const common::MatrixView& train_data) const {
  auto pipeline =
      std::make_shared<const CsPipeline>(train(train_data), options_);
  return std::make_unique<CsSignatureMethod>(std::move(pipeline), name_);
}

std::unique_ptr<SignatureMethod> CsSignatureMethod::fit(
    const common::MatrixView& train_data, TrainContext& ctx) const {
  auto pipeline =
      std::make_shared<const CsPipeline>(train(train_data, ctx), options_);
  return std::make_unique<CsSignatureMethod>(std::move(pipeline), name_);
}

void CsSignatureMethod::save(codec::Sink& sink) const {
  if (!pipeline_) {
    throw std::logic_error("CsSignatureMethod: serialize() before fit()");
  }
  const CsModel& model = pipeline_->model();
  sink.size("blocks", options_.blocks);
  sink.flag("real-only", options_.real_only);
  sink.sizes("perm", model.permutation());
  std::vector<double> lo, hi;
  lo.reserve(model.bounds().size());
  hi.reserve(model.bounds().size());
  for (const stats::MinMaxBounds& b : model.bounds()) {
    lo.push_back(b.lo);
    hi.push_back(b.hi);
  }
  sink.f64_array("lo", lo);
  sink.f64_array("hi", hi);
}

std::unique_ptr<CsSignatureMethod> CsSignatureMethod::read(codec::Source& in) {
  CsOptions options;
  options.blocks = in.size("blocks");
  options.real_only = in.flag("real-only");
  const std::vector<std::size_t> perm = in.sizes("perm");
  const std::vector<double> lo = in.f64_array("lo");
  const std::vector<double> hi = in.f64_array("hi");
  if (lo.size() != perm.size() || hi.size() != perm.size()) {
    throw std::runtime_error(
        "CsSignatureMethod: bounds arrays do not match the permutation "
        "length");
  }
  std::vector<stats::MinMaxBounds> bounds(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    bounds[i] = {lo[i], hi[i]};
  }
  try {
    auto pipeline = std::make_shared<const CsPipeline>(
        CsModel(perm, std::move(bounds)), options);
    return std::make_unique<CsSignatureMethod>(std::move(pipeline));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("CsSignatureMethod: ") + e.what());
  }
}

std::unique_ptr<CsSignatureMethod> CsSignatureMethod::deserialize_body(
    const std::string& body) {
  std::istringstream in(body);
  std::string kw_blocks, kw_real;
  CsOptions options;
  int real_only = 0;
  in >> kw_blocks >> options.blocks >> kw_real >> real_only;
  if (!in || kw_blocks != "blocks" || kw_real != "real-only" ||
      (real_only != 0 && real_only != 1)) {
    throw std::runtime_error("CsSignatureMethod: malformed options block");
  }
  options.real_only = real_only == 1;
  std::ostringstream rest;
  rest << in.rdbuf();
  std::string model_text = rest.str();
  // Strip the newline separating the options block from the model blob.
  if (!model_text.empty() && model_text.front() == '\n') {
    model_text.erase(model_text.begin());
  }
  auto pipeline = std::make_shared<const CsPipeline>(
      CsModel::deserialize(model_text), options);
  return std::make_unique<CsSignatureMethod>(std::move(pipeline));
}

std::vector<double> CsSignatureMethod::compute_streaming(
    const common::MatrixView& window,
    const std::span<const double>* seed_col) const {
  if (!pipeline_) {
    throw std::logic_error("CsSignatureMethod: compute() before fit()");
  }
  const CsModel& model = pipeline_->model();
  if (window.rows() != model.n_sensors()) {
    throw std::invalid_argument(
        "CsSignatureMethod: sensor count mismatch");
  }
  return smooth_window(window, model.permutation(), model.bounds(), seed_col,
                       options_.resolve_blocks(model.n_sensors()))
      .flatten(options_.real_only);
}

}  // namespace csm::core
