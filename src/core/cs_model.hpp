// The CS model produced by the training stage (Section III-C1).
//
// A CS model is everything the online stages need: the row permutation vector
// p computed by Algorithm 1 and the per-row min/max bounds for normalisation.
// Models are cheap to store and are typically trained once and reused for all
// subsequent windows; they can be serialised to a small text format so that
// out-of-band trainers can ship models to in-band consumers.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "stats/normalize.hpp"

namespace csm::core {

/// Trained CS model: permutation + normalisation bounds.
class CsModel {
 public:
  CsModel() = default;

  /// Throws std::invalid_argument if `permutation` is not a permutation of
  /// [0, n) or bounds has a different length.
  CsModel(std::vector<std::size_t> permutation,
          std::vector<stats::MinMaxBounds> bounds);

  /// Number of sensor rows the model was trained on.
  std::size_t n_sensors() const noexcept { return permutation_.size(); }

  const std::vector<std::size_t>& permutation() const noexcept {
    return permutation_;
  }
  const std::vector<stats::MinMaxBounds>& bounds() const noexcept {
    return bounds_;
  }

  /// Sorting stage (Section III-C2): min-max-normalises every row of `s`
  /// using the stored bounds, then permutes rows by p. `s` must have
  /// n_sensors() rows; any column count is accepted.
  common::Matrix sort(const common::Matrix& s) const;

  /// Serialises to a human-readable text blob / parses it back.
  std::string serialize() const;
  static CsModel deserialize(const std::string& text);

  /// File round-trip convenience.
  void save(const std::filesystem::path& file) const;
  static CsModel load(const std::filesystem::path& file);

  bool operator==(const CsModel&) const = default;

 private:
  std::vector<std::size_t> permutation_;
  std::vector<stats::MinMaxBounds> bounds_;
};

}  // namespace csm::core
