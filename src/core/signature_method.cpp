#include "core/signature_method.hpp"

#include "core/model_codec.hpp"

namespace csm::core {

void SignatureMethod::save(codec::Sink& sink) const {
  (void)sink;
  throw std::logic_error(name() + ": serialization is not supported");
}

std::string SignatureMethod::serialize() const {
  return codec::encode_text(*this);
}

}  // namespace csm::core
