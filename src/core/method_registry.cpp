#include "core/method_registry.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/pipeline.hpp"

namespace csm::core {

namespace {

constexpr std::string_view kMagic = "csmethod";
constexpr std::string_view kLegacyVersion = "v1";
constexpr std::string_view kVersion = "v2";

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool valid_token(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::islower(c) || std::isdigit(c) || c == '_' || c == '-';
  });
}

}  // namespace

MethodSpec MethodSpec::parse(std::string_view text) {
  MethodSpec spec;
  const std::string_view whole = trim(text);
  const std::size_t colon = whole.find(':');
  spec.name = lowered(trim(whole.substr(0, colon)));
  if (!valid_token(spec.name)) {
    throw std::invalid_argument("MethodSpec: bad method name in \"" +
                                std::string(text) + "\"");
  }
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = whole.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view param = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (param.empty()) {
      throw std::invalid_argument("MethodSpec: empty parameter in \"" +
                                  std::string(text) + "\"");
    }
    const std::size_t eq = param.find('=');
    const std::string key = lowered(trim(param.substr(0, eq)));
    if (!valid_token(key)) {
      throw std::invalid_argument("MethodSpec: bad parameter key in \"" +
                                  std::string(text) + "\"");
    }
    if (spec.has(key)) {
      throw std::invalid_argument("MethodSpec: duplicate parameter \"" + key +
                                  "\" in \"" + std::string(text) + "\"");
    }
    const std::string value =
        eq == std::string_view::npos
            ? ""
            : std::string(trim(param.substr(eq + 1)));
    spec.params.emplace_back(key, value);
  }
  return spec;
}

std::string MethodSpec::to_string() const {
  std::string out = name;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += params[i].first;
    if (!params[i].second.empty()) {
      out += '=';
      out += params[i].second;
    }
  }
  return out;
}

bool MethodSpec::has(std::string_view key) const {
  return std::any_of(params.begin(), params.end(),
                     [&](const auto& kv) { return kv.first == key; });
}

std::string MethodSpec::get(std::string_view key, std::string fallback) const {
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return fallback;
}

std::size_t MethodSpec::get_size_t(std::string_view key,
                                   std::size_t fallback) const {
  if (!has(key)) return fallback;
  const std::string value = get(key);
  std::size_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw std::invalid_argument("MethodSpec: parameter \"" + std::string(key) +
                                "\" is not a non-negative integer: \"" + value +
                                "\"");
  }
  return out;
}

bool MethodSpec::get_flag(std::string_view key) const {
  if (!has(key)) return false;
  const std::string value = lowered(get(key));
  if (value.empty() || value == "1" || value == "true" || value == "on") {
    return true;
  }
  if (value == "0" || value == "false" || value == "off") return false;
  throw std::invalid_argument("MethodSpec: parameter \"" + std::string(key) +
                              "\" is not a boolean: \"" + value + "\"");
}

void MethodSpec::expect_only(
    std::initializer_list<std::string_view> allowed) const {
  for (const auto& [key, value] : params) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      throw std::invalid_argument("MethodSpec: method \"" + name +
                                  "\" does not accept parameter \"" + key +
                                  "\"");
    }
  }
}

void MethodRegistry::add(Entry entry) {
  if (!valid_token(entry.key)) {
    throw std::invalid_argument("MethodRegistry: bad key \"" + entry.key +
                                "\"");
  }
  if (!entry.factory || !entry.read) {
    throw std::invalid_argument("MethodRegistry: entry \"" + entry.key +
                                "\" is missing a factory or reader");
  }
  if (contains(entry.key)) {
    throw std::invalid_argument("MethodRegistry: duplicate key \"" +
                                entry.key + "\"");
  }
  entries_.push_back(std::move(entry));
}

bool MethodRegistry::contains(std::string_view key) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.key == key; });
}

std::vector<std::string> MethodRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.key);
  return out;
}

const MethodRegistry::Entry& MethodRegistry::entry(std::string_view key) const {
  for (const Entry& e : entries_) {
    if (e.key == key) return e;
  }
  std::string known;
  for (const Entry& e : entries_) {
    if (!known.empty()) known += ", ";
    known += e.key;
  }
  throw std::invalid_argument("MethodRegistry: unknown method \"" +
                              std::string(key) + "\" (known: " + known + ")");
}

std::unique_ptr<SignatureMethod> MethodRegistry::create(
    const MethodSpec& spec) const {
  return entry(spec.name).factory(spec);
}

std::unique_ptr<SignatureMethod> MethodRegistry::create(
    std::string_view spec_text) const {
  return create(MethodSpec::parse(spec_text));
}

std::unique_ptr<SignatureMethod> MethodRegistry::deserialize(
    const std::string& text) const {
  std::istringstream in(text);
  std::string magic, version, key;
  in >> magic >> version >> key;
  if (!in || magic != kMagic ||
      (version != kVersion && version != kLegacyVersion)) {
    throw std::runtime_error(
        "MethodRegistry::deserialize: bad header (expected \"csmethod v2 "
        "<key>\")");
  }
  if (!contains(key)) {
    throw std::runtime_error(
        "MethodRegistry::deserialize: unknown method tag \"" + key + "\"");
  }
  const Entry& e = entry(key);
  // Body = everything after the header line.
  const std::size_t eol = text.find('\n');
  const std::string body =
      eol == std::string::npos ? std::string{} : text.substr(eol + 1);
  if (version == kLegacyVersion) {
    if (!e.deserializer) {
      throw std::runtime_error(
          "MethodRegistry::deserialize: method \"" + key +
          "\" has no legacy v1 reader");
    }
    return e.deserializer(body);
  }
  codec::TextSource source(body);
  std::unique_ptr<SignatureMethod> method = e.read(source);
  source.finish();
  return method;
}

std::unique_ptr<SignatureMethod> MethodRegistry::decode(
    std::span<const std::uint8_t> record) const {
  const codec::RecordView view = codec::parse_record(record);
  if (!contains(view.key)) {
    throw std::runtime_error("MethodRegistry::decode: unknown method tag \"" +
                             view.key + "\"");
  }
  codec::BinarySource source(view.body, view.body_offset);
  std::unique_ptr<SignatureMethod> method = entry(view.key).read(source);
  source.finish();
  return method;
}

std::unique_ptr<SignatureMethod> MethodRegistry::load(
    const std::filesystem::path& file) const {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw std::runtime_error("MethodRegistry::load: cannot open " +
                             file.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string blob = buf.str();
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(blob.data());
  if (codec::is_binary_record({bytes, blob.size()})) {
    return decode({bytes, blob.size()});
  }
  return deserialize(blob);
}

std::string method_header(std::string_view key) {
  return codec::text_header(key);
}

bool is_tagged_method(std::string_view text) {
  const std::string_view head = trim(text.substr(0, kMagic.size() + 2));
  return head.substr(0, kMagic.size()) == kMagic;
}

void save_method(const SignatureMethod& method,
                 const std::filesystem::path& file,
                 codec::ModelFormat format) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("save_method: cannot open " + file.string());
  }
  if (format == codec::ModelFormat::kBinary) {
    const std::vector<std::uint8_t> record = codec::encode_binary(method);
    out.write(reinterpret_cast<const char*>(record.data()),
              static_cast<std::streamsize>(record.size()));
  } else {
    out << method.serialize();
  }
  if (!out) throw std::runtime_error("save_method: write failed");
}

void register_cs_method(MethodRegistry& registry) {
  registry.add(MethodRegistry::Entry{
      "cs", "cs[:blocks=L][,real-only]",
      "Correlation-wise Smoothing (Sec. III-C); blocks=0 = one per sensor "
      "(CS-All), real-only drops the derivative channel",
      [](const MethodSpec& spec) -> std::unique_ptr<SignatureMethod> {
        spec.expect_only({"blocks", "real-only"});
        CsOptions options;
        options.blocks = spec.get_size_t("blocks", 0);
        options.real_only = spec.get_flag("real-only");
        return std::make_unique<CsSignatureMethod>(options);
      },
      [](codec::Source& in) -> std::unique_ptr<SignatureMethod> {
        return CsSignatureMethod::read(in);
      },
      [](const std::string& body) -> std::unique_ptr<SignatureMethod> {
        return CsSignatureMethod::deserialize_body(body);
      }});
}

}  // namespace csm::core
