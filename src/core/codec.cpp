#include "core/codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace csm::core {

namespace {

constexpr std::uint8_t kMagic = 0xC5;  // "CS".
constexpr std::uint8_t kVersion = 1;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& in,
                       std::size_t& cursor) {
  if (cursor + 4 > in.size()) {
    throw std::runtime_error("decode_signature: truncated blob");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[cursor++]) << (8 * i);
  }
  return v;
}

void append_double(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }
}

double read_double(const std::vector<std::uint8_t>& in, std::size_t& cursor) {
  if (cursor + 8 > in.size()) {
    throw std::runtime_error("decode_signature: truncated blob");
  }
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(in[cursor++]) << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Channel min/max used as the quantisation range.
std::pair<double, double> channel_range(std::span<const double> ch) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : ch) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (!(lo <= hi)) {  // Empty channel; normalised below.
    lo = 0.0;
    hi = 0.0;
  }
  return {lo, hi};
}

void encode_channel(std::vector<std::uint8_t>& out,
                    std::span<const double> ch) {
  const auto [lo, hi] = channel_range(ch);
  append_double(out, lo);
  append_double(out, hi);
  const double scale = hi > lo ? 255.0 / (hi - lo) : 0.0;
  for (double v : ch) {
    const double q = (v - lo) * scale;
    out.push_back(static_cast<std::uint8_t>(
        std::clamp(std::lround(q), 0L, 255L)));
  }
}

void decode_channel(const std::vector<std::uint8_t>& in, std::size_t& cursor,
                    std::span<double> ch) {
  const double lo = read_double(in, cursor);
  const double hi = read_double(in, cursor);
  if (cursor + ch.size() > in.size()) {
    throw std::runtime_error("decode_signature: truncated blob");
  }
  const double scale = hi > lo ? (hi - lo) / 255.0 : 0.0;
  for (double& v : ch) {
    v = lo + static_cast<double>(in[cursor++]) * scale;
  }
}

}  // namespace

std::vector<std::uint8_t> encode_signature(const Signature& sig) {
  std::vector<std::uint8_t> out;
  out.reserve(2 + 4 + 2 * (16 + sig.length()));
  out.push_back(kMagic);
  out.push_back(kVersion);
  append_u32(out, static_cast<std::uint32_t>(sig.length()));
  encode_channel(out, sig.real());
  encode_channel(out, sig.imag());
  return out;
}

Signature decode_signature(const std::vector<std::uint8_t>& blob) {
  std::size_t cursor = 0;
  if (blob.size() < 6 || blob[0] != kMagic || blob[1] != kVersion) {
    throw std::runtime_error("decode_signature: bad header");
  }
  cursor = 2;
  const std::uint32_t length = read_u32(blob, cursor);
  Signature sig(length);
  decode_channel(blob, cursor, sig.real());
  decode_channel(blob, cursor, sig.imag());
  if (cursor != blob.size()) {
    throw std::runtime_error("decode_signature: trailing bytes");
  }
  return sig;
}

double encoded_error_bound(const Signature& sig) {
  double bound = 0.0;
  for (const auto ch : {sig.real(), sig.imag()}) {
    const auto [lo, hi] = channel_range(ch);
    bound = std::max(bound, (hi - lo) / 510.0);  // Half a quantum.
  }
  return bound;
}

}  // namespace csm::core
