#include "core/model_pack.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/method_registry.hpp"
#include "core/model_codec.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace csm::core {
namespace {

constexpr std::size_t kIndexEntrySize = 24;
constexpr std::size_t kHeaderCrcOffset = 40;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ModelPack: " + what);
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t load_u32(const std::uint8_t* p) {
  // Little-endian hosts read the wire format in place; others assemble it.
  if constexpr (std::endian::native == std::endian::little) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  } else {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
    return v;
  }
}

std::uint64_t load_u64(const std::uint8_t* p) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return v;
  }
}

std::vector<std::uint8_t> pack_header(std::uint64_t count,
                                      std::uint64_t index_off,
                                      std::uint64_t names_off,
                                      std::uint64_t names_len) {
  std::vector<std::uint8_t> header;
  header.reserve(kPackHeaderSize);
  header.insert(header.end(), std::begin(kPackMagic), std::end(kPackMagic));
  header.push_back(kPackVersion);
  append_u64(header, count);
  append_u64(header, index_off);
  append_u64(header, names_off);
  append_u64(header, names_len);
  append_u32(header, codec::crc32({header.data(), kHeaderCrcOffset}));
  append_u32(header, 0);  // Reserved.
  return header;
}

}  // namespace

bool is_safe_pack_id(std::string_view id) noexcept {
  if (id.empty() || id == "." || id == "..") {
    return false;
  }
  for (const char c : id) {
    const auto byte = static_cast<unsigned char>(c);
    if (c == '/' || c == '\\' || byte < 0x20 || byte == 0x7F) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

ModelPackWriter::ModelPackWriter(std::filesystem::path file)
    : file_(std::move(file)),
      out_(file_, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    fail("cannot open " + file_.string() + " for writing");
  }
  // Placeholder header; finish() rewrites it with the real geometry.
  const std::vector<std::uint8_t> header = pack_header(0, 0, 0, 0);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
}

void ModelPackWriter::add(std::string_view id, const SignatureMethod& method) {
  add_record(id, codec::encode_binary(method));
}

void ModelPackWriter::add_record(std::string_view id,
                                 std::span<const std::uint8_t> record) {
  if (finished_) {
    throw std::logic_error("ModelPackWriter: add_record() after finish()");
  }
  if (id.size() > std::numeric_limits<std::uint32_t>::max()) {
    fail("invalid node id length " + std::to_string(id.size()));
  }
  if (!is_safe_pack_id(id)) {
    fail("unsafe node id \"" + std::string(id) +
         "\" (ids must be usable as file names: no separators, control "
         "bytes, \".\" or \"..\")");
  }
  (void)codec::parse_record(record);  // Reject malformed records up front.
  out_.write(reinterpret_cast<const char*>(record.data()),
             static_cast<std::streamsize>(record.size()));
  if (!out_) {
    fail("write failed for " + file_.string());
  }
  entries_.push_back(PendingEntry{std::string(id), cursor_, record.size()});
  cursor_ += record.size();
}

void ModelPackWriter::finish() {
  if (finished_) {
    throw std::logic_error("ModelPackWriter: finish() called twice");
  }
  finished_ = true;
  std::sort(entries_.begin(), entries_.end(),
            [](const PendingEntry& a, const PendingEntry& b) {
              return a.id < b.id;
            });
  const auto dup = std::adjacent_find(
      entries_.begin(), entries_.end(),
      [](const PendingEntry& a, const PendingEntry& b) { return a.id == b.id; });
  if (dup != entries_.end()) {
    fail("duplicate node id \"" + dup->id + "\"");
  }

  std::string names;
  std::vector<std::uint8_t> index;
  index.reserve(entries_.size() * kIndexEntrySize);
  for (const PendingEntry& e : entries_) {
    if (names.size() > std::numeric_limits<std::uint32_t>::max() - e.id.size()) {
      fail("names blob exceeds 4 GiB");
    }
    append_u32(index, static_cast<std::uint32_t>(names.size()));
    append_u32(index, static_cast<std::uint32_t>(e.id.size()));
    append_u64(index, e.offset);
    append_u64(index, e.length);
    names += e.id;
  }

  const std::uint64_t names_off = cursor_;
  const std::uint64_t index_off = names_off + names.size();
  out_.write(names.data(), static_cast<std::streamsize>(names.size()));
  out_.write(reinterpret_cast<const char*>(index.data()),
             static_cast<std::streamsize>(index.size()));
  const std::vector<std::uint8_t> header =
      pack_header(entries_.size(), index_off, names_off, names.size());
  out_.seekp(0);
  out_.write(reinterpret_cast<const char*>(header.data()),
             static_cast<std::streamsize>(header.size()));
  out_.flush();
  if (!out_) {
    fail("write failed for " + file_.string());
  }
  out_.close();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Holds the mapped (or, on platforms without mmap, read) file bytes plus
/// the decoded header geometry.
struct ModelPack::Mapping {
  std::filesystem::path file;
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;

  std::uint64_t count = 0;
  const std::uint8_t* index = nullptr;  ///< count x 24-byte entries.
  const char* names = nullptr;
  std::uint64_t names_len = 0;

  /// Backing storage for open_bytes() (and, on platforms without mmap, the
  /// whole-file read fallback). Empty when the pack is mmap-ed.
  std::vector<std::uint8_t> bytes;

#if !defined(_WIN32)
  void* map_base = nullptr;
  std::size_t map_size = 0;

  ~Mapping() {
    if (map_base != nullptr) {
      ::munmap(map_base, map_size);
    }
  }
#endif

  struct IndexEntry {
    std::string_view name;
    std::uint64_t record_off = 0;
    std::uint64_t record_len = 0;
  };

  IndexEntry entry(std::size_t i) const {
    const std::uint8_t* p = index + i * kIndexEntrySize;
    const std::uint32_t name_off = load_u32(p);
    const std::uint32_t name_len = load_u32(p + 4);
    IndexEntry e;
    e.record_off = load_u64(p + 8);
    e.record_len = load_u64(p + 16);
    if (name_off > names_len || name_len > names_len - name_off) {
      fail("index entry " + std::to_string(i) +
           " names a range outside the names blob");
    }
    if (e.record_off > size || e.record_len > size - e.record_off) {
      fail("index entry " + std::to_string(i) +
           " points outside the pack file");
    }
    e.name = std::string_view(names + name_off, name_len);
    // A hostile pack must not be able to smuggle a traversal id ("../x",
    // absolute paths) to consumers that join ids onto output paths.
    if (!is_safe_pack_id(e.name)) {
      fail("index entry " + std::to_string(i) + " has an unsafe node id");
    }
    return e;
  }

  /// Binary search over the sorted index; returns the position or count.
  std::size_t lower_bound_id(std::string_view id) const {
    std::size_t lo = 0;
    std::size_t hi = static_cast<std::size_t>(count);
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entry(mid).name < id) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Header/index validation shared by open() and open_bytes(): data, size
  /// and file must already be set.
  void validate();
};

ModelPack ModelPack::open(const std::filesystem::path& file) {
  auto mapping = std::make_shared<Mapping>();
  mapping->file = file;

#if !defined(_WIN32)
  const int fd = ::open(file.c_str(), O_RDONLY);
  if (fd < 0) {
    fail("cannot open " + file.string());
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    fail("cannot stat " + file.string());
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* base =
      size == 0 ? nullptr : ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (size != 0 && base == MAP_FAILED) {
    fail("mmap failed for " + file.string());
  }
  mapping->map_base = base;
  mapping->map_size = size;
  mapping->data = static_cast<const std::uint8_t*>(base);
  mapping->size = size;
#else
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    fail("cannot open " + file.string());
  }
  mapping->bytes.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
  mapping->data = mapping->bytes.data();
  mapping->size = mapping->bytes.size();
#endif

  mapping->validate();
  return ModelPack(std::move(mapping));
}

ModelPack ModelPack::open_bytes(std::vector<std::uint8_t> bytes,
                                std::filesystem::path name) {
  auto mapping = std::make_shared<Mapping>();
  mapping->file = std::move(name);
  mapping->bytes = std::move(bytes);
  mapping->data = mapping->bytes.data();
  mapping->size = mapping->bytes.size();
  mapping->validate();
  return ModelPack(std::move(mapping));
}

void ModelPack::Mapping::validate() {
  Mapping* mapping = this;
  const std::size_t size_total = mapping->size;
  if (size_total < kPackHeaderSize ||
      std::memcmp(data, kPackMagic, sizeof(kPackMagic)) != 0) {
    fail(file.string() + " is not a model pack (bad magic)");
  }
  const std::uint8_t version = data[7];
  if (version != kPackVersion) {
    fail("unsupported model pack version " + std::to_string(version) +
         " (expected " + std::to_string(kPackVersion) + ")");
  }
  const std::uint32_t stored_crc = load_u32(data + kHeaderCrcOffset);
  const std::uint32_t computed_crc = codec::crc32({data, kHeaderCrcOffset});
  if (stored_crc != computed_crc) {
    fail("header CRC mismatch in " + file.string());
  }
  mapping->count = load_u64(data + 8);
  const std::uint64_t index_off = load_u64(data + 16);
  const std::uint64_t names_off = load_u64(data + 24);
  mapping->names_len = load_u64(data + 32);
  if (mapping->count > size_total / kIndexEntrySize) {
    fail("record count " + std::to_string(mapping->count) +
         " is impossible for a " + std::to_string(size_total) +
         "-byte pack");
  }
  const std::uint64_t index_len = mapping->count * kIndexEntrySize;
  if (index_off > size_total || index_len > size_total - index_off) {
    fail("index range is outside the pack file");
  }
  if (names_off > size_total || mapping->names_len > size_total - names_off) {
    fail("names blob range is outside the pack file");
  }
  mapping->index = data + index_off;
  mapping->names = reinterpret_cast<const char*>(data + names_off);
}

std::size_t ModelPack::size() const noexcept {
  return static_cast<std::size_t>(mapping_->count);
}

const std::filesystem::path& ModelPack::path() const noexcept {
  return mapping_->file;
}

std::string_view ModelPack::id(std::size_t i) const {
  if (i >= size()) {
    throw std::out_of_range("ModelPack: index " + std::to_string(i) +
                            " out of range");
  }
  return mapping_->entry(i).name;
}

std::span<const std::uint8_t> ModelPack::record(std::size_t i) const {
  if (i >= size()) {
    throw std::out_of_range("ModelPack: index " + std::to_string(i) +
                            " out of range");
  }
  const Mapping::IndexEntry e = mapping_->entry(i);
  return {mapping_->data + e.record_off,
          static_cast<std::size_t>(e.record_len)};
}

bool ModelPack::contains(std::string_view id) const {
  const std::size_t pos = mapping_->lower_bound_id(id);
  return pos < size() && mapping_->entry(pos).name == id;
}

std::span<const std::uint8_t> ModelPack::record(std::string_view id) const {
  const std::size_t pos = mapping_->lower_bound_id(id);
  if (pos >= size() || mapping_->entry(pos).name != id) {
    fail("node id \"" + std::string(id) + "\" is not in " +
         mapping_->file.string());
  }
  return record(pos);
}

std::unique_ptr<SignatureMethod> ModelPack::load(
    std::string_view id, const MethodRegistry& registry) const {
  return registry.decode(record(id));
}

}  // namespace csm::core
