// Compact signature encoding for transmission and archival.
//
// Signatures travel: out-of-band trainers ship them to dashboards, in-band
// agents push them to brokers at fine time scales (Fig. 1), and archives
// keep months of them. This codec quantises each channel to 8-bit fixed
// point with per-channel min/max (the same min-max convention the CS
// normalisation uses), giving a 2l + O(1)-byte payload and a worst-case
// absolute reconstruction error of (hi - lo) / 510 per block — two orders
// of magnitude below the signal ranges the ML models discriminate on.
#pragma once

#include <cstdint>
#include <vector>

#include "core/signature.hpp"

namespace csm::core {

/// Serialises a signature into a compact binary blob.
std::vector<std::uint8_t> encode_signature(const Signature& sig);

/// Parses a blob produced by encode_signature. Throws std::runtime_error
/// on truncated or corrupt input.
Signature decode_signature(const std::vector<std::uint8_t>& blob);

/// Worst-case absolute reconstruction error of the encoded form.
double encoded_error_bound(const Signature& sig);

}  // namespace csm::core
