// Bounded worker pool for background model retrains.
//
// StreamEngine owns one of these (sized by StreamOptions::retrain_threads /
// `csmd --retrain-threads`) and shares it across every node's MethodStream,
// so a thousand-node fleet retrains on a handful of workers instead of a
// thousand ad-hoc threads. Jobs are fire-and-forget closures over shared
// shadow-fit state: they must not reference the submitting stream or engine
// directly, which is what makes shutdown trivially safe — the destructor
// drops jobs that have not started, finishes the ones that have, and joins.
// Cancellation is cooperative and lives inside the job (common::CancelToken
// threaded through core::TrainContext); the pool never kills a thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csm::core {

/// Fixed-size FIFO thread pool for retrain jobs.
class RetrainExecutor {
 public:
  /// Spins up `threads` workers (at least one). Throws std::system_error if
  /// thread creation fails.
  explicit RetrainExecutor(std::size_t threads);

  /// Drops every job still queued, lets running jobs finish, joins.
  ~RetrainExecutor();

  RetrainExecutor(const RetrainExecutor&) = delete;
  RetrainExecutor& operator=(const RetrainExecutor&) = delete;

  /// Enqueues a job. The job must not throw (wrap fallible work in its own
  /// try/catch and park the failure in shared state, as MethodStream does).
  void submit(std::function<void()> job);

  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace csm::core
