// Generic signature-method interface (the paper's Sig() function,
// Section III-A): a signature method maps an n x wl window of the sensor
// matrix to a flat feature vector of fixed length l << n * wl. The CS method
// and the baselines (Tuncer, Bodik, Lan, PCA) all implement this interface,
// which is what the experiment harness, the streaming layer and the
// scalability benchmark drive.
//
// The compute surface consumes windows as common::MatrixView — a zero-copy
// view over either a row-major Matrix block (offline) or the one/two
// contiguous column segments of a RingMatrix window (streaming) — so the
// streaming hot path never assembles a temporary window matrix. A
// common::Matrix converts to a view implicitly, and thin Matrix overloads
// below keep offline call sites (pipeline, harness, csmcli, examples)
// compiling unchanged. Implementations should pull `using` declarations for
// the inherited overloads into scope (see the baselines) so concrete-typed
// callers keep both forms.
//
// Methods have a full lifecycle: a method is *constructed* (usually from a
// spec string via core::MethodRegistry) either already trained (stateless
// baselines) or as an untrained prototype (CS, PCA), *fitted* on historical
// data with fit(), asked to *compute* signatures window by window, and
// *serialised* to a tagged text blob that MethodRegistry::deserialize turns
// back into an equivalent trained method. The default implementations below
// describe a stateless method, so ad-hoc SignatureMethod subclasses (e.g.
// benchmark one-offs) only have to override the three compute-side members.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/matrix_view.hpp"

namespace csm::core {

namespace codec {
class Sink;
class Source;
}

struct TrainContext;  // core/training.hpp: reusable workspace + cancel token.

/// Abstract signature extractor.
class SignatureMethod {
 public:
  virtual ~SignatureMethod() = default;

  /// Human-readable method name, e.g. "Tuncer" or "CS-20".
  virtual std::string name() const = 0;

  /// Length of the feature vector produced for an n-sensor window.
  virtual std::size_t signature_length(std::size_t n_sensors) const = 0;

  /// Computes the feature vector for one window view (rows = sensors,
  /// cols = wl samples). Throws std::logic_error if !trained().
  virtual std::vector<double> compute(const common::MatrixView& window)
      const = 0;

  /// Thin offline overload: wraps the matrix in a (row-major) view.
  std::vector<double> compute(const common::Matrix& window) const {
    return compute(common::MatrixView(window));
  }

  // --- trained-state lifecycle ---------------------------------------------

  /// Whether compute() may be called. Stateless methods are born trained;
  /// trainable methods (CS, PCA) start as untrained prototypes.
  virtual bool trained() const { return true; }

  /// Sensor-row count a trained method is bound to; 0 means the method
  /// accepts windows of any sensor count (stateless baselines, prototypes).
  virtual std::size_t n_sensors() const { return 0; }

  /// Returns a trained copy fitted on historical data (rows = sensors,
  /// cols = samples): CS runs Algorithm 1 + bounds, PCA extracts its basis,
  /// and the stateless baselines return a copy of themselves. Streaming
  /// retrains pass the ring history through this view without materialising
  /// it first.
  virtual std::unique_ptr<SignatureMethod> fit(
      const common::MatrixView& train) const {
    (void)train;
    throw std::logic_error(name() + ": fit() is not supported");
  }

  /// Thin offline overload of fit().
  std::unique_ptr<SignatureMethod> fit(const common::Matrix& train) const {
    return fit(common::MatrixView(train));
  }

  /// fit() with caller-owned training state: methods whose training is
  /// expensive (CS) reuse ctx.workspace across retrains and poll ctx.cancel,
  /// throwing common::OperationCancelled when a superseded retrain should
  /// abort. The default ignores the context (stateless baselines train in
  /// O(1); cancellation between fits is handled by the caller).
  virtual std::unique_ptr<SignatureMethod> fit(const common::MatrixView& train,
                                               TrainContext& ctx) const {
    (void)ctx;
    return fit(train);
  }

  // --- model codec ---------------------------------------------------------

  /// Registry key the model codec files this method under ("cs", "pca", ...).
  /// Empty (the default) marks the method as not serialisable — ad-hoc
  /// subclasses such as benchmark one-offs need not opt in.
  virtual std::string codec_key() const { return {}; }

  /// Writes the trained state as named, typed fields. This is the single
  /// write path behind both wire formats: codec::encode_text renders the
  /// fields as "csmethod v2" lines, codec::encode_binary as a CRC-framed
  /// little-endian record, and the matching registry reader consumes them in
  /// the same order from a codec::Source. Default: not supported.
  virtual void save(codec::Sink& sink) const;

  /// Deprecated-style string adapter over save() (tagged text form, parse
  /// back with MethodRegistry::deserialize) so pipeline/harness/examples
  /// keep compiling unchanged. Throws std::logic_error if the method is
  /// untrained or not serialisable.
  std::string serialize() const;

  /// Streaming variant of compute(): may additionally use the raw (unsorted)
  /// sensor column that immediately precedes the window (null when the
  /// stream has no history yet). CS seeds its derivative channel with it,
  /// avoiding the zero-spike at window boundaries; the default ignores the
  /// seed. `seed_col`, when non-null, points at a span of rows() values.
  virtual std::vector<double> compute_streaming(
      const common::MatrixView& window,
      const std::span<const double>* seed_col) const {
    (void)seed_col;
    return compute(window);
  }

  /// Thin offline overload: `prev_column` holds the column preceding the
  /// window in its column 0 (the historical calling convention of the batch
  /// extractors — usually an n x 1 matrix), or is null.
  std::vector<double> compute_streaming(
      const common::Matrix& window, const common::Matrix* prev_column) const {
    if (!prev_column) {
      return compute_streaming(common::MatrixView(window), nullptr);
    }
    std::vector<double> col0;
    std::span<const double> seed;
    if (prev_column->cols() == 1) {
      // An n x 1 row-major matrix is already the contiguous column.
      seed = {prev_column->data(), prev_column->rows()};
    } else {
      col0 = prev_column->col(0);
      seed = col0;
    }
    return compute_streaming(common::MatrixView(window), &seed);
  }
};

}  // namespace csm::core
