// Generic signature-method interface (the paper's Sig() function,
// Section III-A): a signature method maps an n x wl window of the sensor
// matrix to a flat feature vector of fixed length l << n * wl. The CS method
// and the three baselines (Tuncer, Bodik, Lan) all implement this interface,
// which is what the experiment harness and the scalability benchmark drive.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace csm::core {

/// Abstract signature extractor.
class SignatureMethod {
 public:
  virtual ~SignatureMethod() = default;

  /// Human-readable method name, e.g. "Tuncer" or "CS-20".
  virtual std::string name() const = 0;

  /// Length of the feature vector produced for an n-sensor window.
  virtual std::size_t signature_length(std::size_t n_sensors) const = 0;

  /// Computes the feature vector for one window (rows = sensors,
  /// cols = wl samples).
  virtual std::vector<double> compute(const common::Matrix& window) const = 0;
};

}  // namespace csm::core
