// Generic signature-method interface (the paper's Sig() function,
// Section III-A): a signature method maps an n x wl window of the sensor
// matrix to a flat feature vector of fixed length l << n * wl. The CS method
// and the baselines (Tuncer, Bodik, Lan, PCA) all implement this interface,
// which is what the experiment harness, the streaming layer and the
// scalability benchmark drive.
//
// Methods have a full lifecycle: a method is *constructed* (usually from a
// spec string via core::MethodRegistry) either already trained (stateless
// baselines) or as an untrained prototype (CS, PCA), *fitted* on historical
// data with fit(), asked to *compute* signatures window by window, and
// *serialised* to a tagged text blob that MethodRegistry::deserialize turns
// back into an equivalent trained method. The default implementations below
// describe a stateless method, so ad-hoc SignatureMethod subclasses (e.g.
// benchmark one-offs) only have to override the three compute-side members.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/matrix.hpp"

namespace csm::core {

/// Abstract signature extractor.
class SignatureMethod {
 public:
  virtual ~SignatureMethod() = default;

  /// Human-readable method name, e.g. "Tuncer" or "CS-20".
  virtual std::string name() const = 0;

  /// Length of the feature vector produced for an n-sensor window.
  virtual std::size_t signature_length(std::size_t n_sensors) const = 0;

  /// Computes the feature vector for one window (rows = sensors,
  /// cols = wl samples). Throws std::logic_error if !trained().
  virtual std::vector<double> compute(const common::Matrix& window) const = 0;

  // --- trained-state lifecycle ---------------------------------------------

  /// Whether compute() may be called. Stateless methods are born trained;
  /// trainable methods (CS, PCA) start as untrained prototypes.
  virtual bool trained() const { return true; }

  /// Sensor-row count a trained method is bound to; 0 means the method
  /// accepts windows of any sensor count (stateless baselines, prototypes).
  virtual std::size_t n_sensors() const { return 0; }

  /// Returns a trained copy fitted on historical data (rows = sensors,
  /// cols = samples): CS runs Algorithm 1 + bounds, PCA extracts its basis,
  /// and the stateless baselines return a copy of themselves.
  virtual std::unique_ptr<SignatureMethod> fit(
      const common::Matrix& train) const {
    (void)train;
    throw std::logic_error(name() + ": fit() is not supported");
  }

  /// Serialises the trained state as tagged text ("csmethod v1 <key>" header
  /// plus a method-specific body); parse back with
  /// MethodRegistry::deserialize. Throws std::logic_error if the method is
  /// untrained or not serialisable.
  virtual std::string serialize() const {
    throw std::logic_error(name() + ": serialize() is not supported");
  }

  /// Streaming variant of compute(): may additionally use the column that
  /// immediately precedes the window (null when the stream has no history
  /// yet). CS seeds its derivative channel with it, avoiding the zero-spike
  /// at window boundaries; the default ignores the seed.
  virtual std::vector<double> compute_streaming(
      const common::Matrix& window, const common::Matrix* prev_column) const {
    (void)prev_column;
    return compute(window);
  }
};

}  // namespace csm::core
