#include "core/signature.hpp"

#include <stdexcept>
#include <utility>

#include "stats/interpolate.hpp"

namespace csm::core {

Signature::Signature(std::vector<double> re, std::vector<double> im)
    : re_(std::move(re)), im_(std::move(im)) {
  if (re_.size() != im_.size()) {
    throw std::invalid_argument("Signature: channel length mismatch");
  }
}

std::vector<double> Signature::flatten(bool real_only) const {
  std::vector<double> out;
  out.reserve(real_only ? re_.size() : 2 * re_.size());
  out.insert(out.end(), re_.begin(), re_.end());
  if (!real_only) out.insert(out.end(), im_.begin(), im_.end());
  return out;
}

Signature Signature::rescaled(std::size_t new_length) const {
  if (empty() || new_length == 0) {
    throw std::invalid_argument("Signature::rescaled: empty or zero target");
  }
  return Signature(stats::resize_linear(re_, new_length),
                   stats::resize_linear(im_, new_length));
}

Signature Signature::pruned_center(std::size_t n_pruned) const {
  if (n_pruned >= length()) {
    throw std::invalid_argument("Signature::pruned_center: nothing left");
  }
  const std::size_t keep = length() - n_pruned;
  const std::size_t head = (keep + 1) / 2;  // Keep one extra at the top.
  const std::size_t tail = keep - head;
  std::vector<double> re, im;
  re.reserve(keep);
  im.reserve(keep);
  const auto h = static_cast<std::ptrdiff_t>(head);
  re.insert(re.end(), re_.begin(), re_.begin() + h);
  im.insert(im.end(), im_.begin(), im_.begin() + h);
  re.insert(re.end(), re_.end() - static_cast<std::ptrdiff_t>(tail), re_.end());
  im.insert(im.end(), im_.end() - static_cast<std::ptrdiff_t>(tail), im_.end());
  return Signature(std::move(re), std::move(im));
}

}  // namespace csm::core
