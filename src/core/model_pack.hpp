// Fleet model store: one mmap-able file of binary model records.
//
// A model pack concatenates the codec's "CSMB" binary records (one trained
// model per fleet node) behind a versioned header and a sorted
// node-id -> offset index, so a consumer can stand up a 10^5-node
// StreamEngine without parsing 10^5 text files: the file is mapped once,
// lookups binary-search the index, and each record is CRC-checked and
// deserialised only when its node is actually loaded.
//
// Layout (all integers little-endian):
//
//   offset 0   "CSMPACK" + version byte        (8 bytes)
//          8   u64 record count
//         16   u64 index offset
//         24   u64 names-blob offset
//         32   u64 names-blob length
//         40   u32 CRC32 of bytes [0, 40)
//         44   u32 reserved (zero)
//         48   record 0, record 1, ...          (each a framed CSMB record)
//              names blob (concatenated ids)
//              index: count x 24-byte entries
//                {u32 name offset (into blob), u32 name length,
//                 u64 record offset, u64 record length}
//              sorted lexicographically by name.
//
// Records keep their own per-record CRC from the codec framing; the pack
// header CRC only guards the header/index geometry, so opening is O(1) and
// integrity is still verified lazily per loaded node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace csm::core {

class MethodRegistry;
class SignatureMethod;

/// Pack framing constants ("CSMPACK" + version).
inline constexpr std::uint8_t kPackMagic[7] = {'C', 'S', 'M', 'P', 'A', 'C',
                                               'K'};
inline constexpr std::uint8_t kPackVersion = 1;
inline constexpr std::size_t kPackHeaderSize = 48;

/// True when `id` is usable verbatim as a single path component: rejects
/// empty ids, "." and "..", '/' and '\\' separators, and control bytes.
/// ModelPackWriter enforces this on add_record() and ModelPack enforces it
/// on every index access, so consumers that join a pack id onto an output
/// path (`csmcli unpack`, `stream --dump-models`) cannot be steered outside
/// their target directory by a hostile pack.
bool is_safe_pack_id(std::string_view id) noexcept;

/// Streams records into a new pack file. add() in any id order; finish()
/// sorts the index, rejects duplicate ids and patches the header. The
/// writer is single-use: further calls after finish() throw.
class ModelPackWriter {
 public:
  /// Opens (truncates) `file`. Throws std::runtime_error on I/O failure.
  explicit ModelPackWriter(std::filesystem::path file);

  /// Serialises `method` (codec::encode_binary) under node id `id`.
  void add(std::string_view id, const SignatureMethod& method);

  /// Appends one pre-framed binary record (must pass codec::parse_record)
  /// under node id `id`. Throws std::runtime_error on an unsafe id (see
  /// is_safe_pack_id) or a malformed record, std::logic_error after
  /// finish().
  void add_record(std::string_view id, std::span<const std::uint8_t> record);

  /// Records added so far.
  std::size_t size() const noexcept { return entries_.size(); }

  /// Writes names + index and patches the header. Throws std::runtime_error
  /// on duplicate ids or I/O failure; std::logic_error if called twice.
  void finish();

 private:
  struct PendingEntry {
    std::string id;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };

  std::filesystem::path file_;
  std::ofstream out_;
  std::vector<PendingEntry> entries_;
  std::uint64_t cursor_ = kPackHeaderSize;
  bool finished_ = false;
};

/// Read-side: maps a pack file and resolves node ids to record bytes.
/// Copyable (copies share the underlying mapping); records stay valid for
/// the mapping's lifetime.
class ModelPack {
 public:
  /// Maps `file` and validates the header, the header CRC and the index
  /// geometry (not the per-record CRCs — those are checked by load()).
  /// Index entries are validated lazily on access: an out-of-range name or
  /// record span, or an id that fails is_safe_pack_id, throws from the
  /// accessor that touches it. Throws std::runtime_error naming the defect.
  static ModelPack open(const std::filesystem::path& file);

  /// Same validation over an in-memory pack image (e.g. received over a
  /// transport instead of read from disk); the pack takes ownership of
  /// `bytes` and `name` stands in for the file path in error messages.
  static ModelPack open_bytes(std::vector<std::uint8_t> bytes,
                              std::filesystem::path name = "<memory>");

  std::size_t size() const noexcept;
  const std::filesystem::path& path() const noexcept;

  bool contains(std::string_view id) const;
  /// Node id of the i-th index entry (ids are sorted). Throws
  /// std::out_of_range.
  std::string_view id(std::size_t i) const;
  /// Raw record bytes by position / by node id. The id overload throws
  /// std::runtime_error when the id is absent.
  std::span<const std::uint8_t> record(std::size_t i) const;
  std::span<const std::uint8_t> record(std::string_view id) const;

  /// Deserialises one node's model through `registry` (CRC checked here).
  std::unique_ptr<SignatureMethod> load(std::string_view id,
                                        const MethodRegistry& registry) const;

 private:
  struct Mapping;

  explicit ModelPack(std::shared_ptr<const Mapping> mapping)
      : mapping_(std::move(mapping)) {}

  std::shared_ptr<const Mapping> mapping_;
};

}  // namespace csm::core
