// Random forests (Section IV-A1: 50 estimators, Gini impurity).
//
// Bagged CART ensembles: each tree trains on a bootstrap resample of the
// data with per-split random feature sub-sampling (sqrt(n_features) for
// classification, all features for regression — the scikit-learn defaults
// the paper relies on). Tree training is independent, so estimators are
// built in parallel with deterministic per-tree RNG streams.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/decision_tree.hpp"
#include "ml/model.hpp"

namespace csm::ml {

/// How per-split feature sub-sampling is resolved when tree.max_features is
/// left at 0 (the "task default").
enum class MaxFeaturesMode {
  kTaskDefault,  ///< sqrt(n) for classification, all for regression.
  kAll,
  kSqrt,
  kThird,
};

/// Ensemble configuration.
struct ForestParams {
  std::size_t n_estimators = 50;  ///< The paper's estimator count.
  TreeParams tree;                ///< tree.max_features 0 = use feature_mode.
  MaxFeaturesMode feature_mode = MaxFeaturesMode::kTaskDefault;
  bool bootstrap = true;
  std::uint64_t seed = 0x5eed;
};

/// Resolves the per-split feature count for `n_features` inputs.
std::size_t resolve_max_features(const ForestParams& params,
                                 std::size_t n_features, bool classification);

/// Majority-vote bagged classifier.
class RandomForestClassifier final : public Classifier {
 public:
  explicit RandomForestClassifier(ForestParams params = {});

  void fit(const common::Matrix& x, std::span<const int> y) override;
  int predict_one(std::span<const double> x) const override;

  std::size_t n_classes() const noexcept { return n_classes_; }
  const std::vector<DecisionTree>& trees() const noexcept { return trees_; }

 private:
  ForestParams params_;
  std::vector<DecisionTree> trees_;
  std::size_t n_classes_ = 0;
};

/// Mean-prediction bagged regressor.
class RandomForestRegressor final : public Regressor {
 public:
  explicit RandomForestRegressor(ForestParams params = {});

  void fit(const common::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;

  const std::vector<DecisionTree>& trees() const noexcept { return trees_; }

 private:
  ForestParams params_;
  std::vector<DecisionTree> trees_;
};

}  // namespace csm::ml
