#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace csm::ml {

namespace detail {

void MlpNetwork::init(std::size_t inputs,
                      const std::vector<std::size_t>& hidden,
                      std::size_t outputs, common::Rng& rng) {
  if (inputs == 0 || outputs == 0) {
    throw std::invalid_argument("MlpNetwork: zero-sized layer");
  }
  inputs_ = inputs;
  outputs_ = outputs;
  layers_.clear();
  adam_t_ = 0;

  std::vector<std::size_t> sizes{inputs};
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(outputs);

  for (std::size_t li = 0; li + 1 < sizes.size(); ++li) {
    Layer layer;
    layer.in = sizes[li];
    layer.out = sizes[li + 1];
    // He initialisation, appropriate for ReLU activations.
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    layer.w.resize(layer.out * layer.in);
    for (double& w : layer.w) w = rng.gaussian() * scale;
    layer.b.assign(layer.out, 0.0);
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.out, 0.0);
    layer.vb.assign(layer.out, 0.0);
    layers_.push_back(std::move(layer));
  }
  gw_.resize(layers_.size());
  gb_.resize(layers_.size());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    gw_[li].assign(layers_[li].w.size(), 0.0);
    gb_[li].assign(layers_[li].b.size(), 0.0);
  }
}

void MlpNetwork::forward_cached(std::span<const double> x,
                                std::vector<std::vector<double>>& acts) const {
  acts.resize(layers_.size() + 1);
  acts[0].assign(x.begin(), x.end());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    auto& out = acts[li + 1];
    out.assign(layer.out, 0.0);
    const auto& in = acts[li];
    for (std::size_t o = 0; o < layer.out; ++o) {
      const double* wrow = layer.w.data() + o * layer.in;
      double acc = layer.b[o];
      for (std::size_t i = 0; i < layer.in; ++i) acc += wrow[i] * in[i];
      // ReLU on hidden layers; the head stays linear.
      out[o] = (li + 1 < layers_.size() && acc < 0.0) ? 0.0 : acc;
    }
  }
}

std::vector<double> MlpNetwork::forward(std::span<const double> x) const {
  if (x.size() != inputs_) {
    throw std::invalid_argument("MlpNetwork::forward: wrong input size");
  }
  std::vector<std::vector<double>> acts;
  forward_cached(x, acts);
  return acts.back();
}

namespace {

// In-place numerically stable softmax.
void softmax(std::vector<double>& z) {
  const double zmax = *std::max_element(z.begin(), z.end());
  double sum = 0.0;
  for (double& v : z) {
    v = std::exp(v - zmax);
    sum += v;
  }
  for (double& v : z) v /= sum;
}

}  // namespace

void MlpNetwork::train_batch(const common::Matrix& x,
                             std::span<const std::size_t> rows,
                             std::span<const int> labels,
                             std::span<const double> targets, bool classify,
                             const MlpParams& params) {
  if (rows.empty()) return;
  for (auto& g : gw_) std::fill(g.begin(), g.end(), 0.0);
  for (auto& g : gb_) std::fill(g.begin(), g.end(), 0.0);

  std::vector<std::vector<double>> acts;
  std::vector<double> delta, delta_prev;
  for (std::size_t row : rows) {
    forward_cached(x.row(row), acts);
    // Output-layer error signal.
    delta = acts.back();
    if (classify) {
      softmax(delta);
      delta[static_cast<std::size_t>(labels[row])] -= 1.0;
    } else {
      delta[0] -= targets[row];
    }
    // Backpropagate through layers.
    for (std::size_t li = layers_.size(); li-- > 0;) {
      const Layer& layer = layers_[li];
      const auto& in = acts[li];
      auto& gw = gw_[li];
      auto& gb = gb_[li];
      for (std::size_t o = 0; o < layer.out; ++o) {
        gb[o] += delta[o];
        double* grow = gw.data() + o * layer.in;
        const double d = delta[o];
        for (std::size_t i = 0; i < layer.in; ++i) grow[i] += d * in[i];
      }
      if (li == 0) break;
      delta_prev.assign(layer.in, 0.0);
      for (std::size_t o = 0; o < layer.out; ++o) {
        const double* wrow = layer.w.data() + o * layer.in;
        const double d = delta[o];
        for (std::size_t i = 0; i < layer.in; ++i) {
          delta_prev[i] += wrow[i] * d;
        }
      }
      // ReLU derivative of the previous layer's activation.
      for (std::size_t i = 0; i < layer.in; ++i) {
        if (acts[li][i] <= 0.0) delta_prev[i] = 0.0;
      }
      delta.swap(delta_prev);
    }
  }

  // Adam update.
  ++adam_t_;
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  const double inv_batch = 1.0 / static_cast<double>(rows.size());
  const double bias1 =
      1.0 - std::pow(kBeta1, static_cast<double>(adam_t_));
  const double bias2 =
      1.0 - std::pow(kBeta2, static_cast<double>(adam_t_));
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    Layer& layer = layers_[li];
    for (std::size_t k = 0; k < layer.w.size(); ++k) {
      const double g = gw_[li][k] * inv_batch + params.l2 * layer.w[k];
      layer.mw[k] = kBeta1 * layer.mw[k] + (1.0 - kBeta1) * g;
      layer.vw[k] = kBeta2 * layer.vw[k] + (1.0 - kBeta2) * g * g;
      layer.w[k] -= params.learning_rate * (layer.mw[k] / bias1) /
                    (std::sqrt(layer.vw[k] / bias2) + kEps);
    }
    for (std::size_t k = 0; k < layer.b.size(); ++k) {
      const double g = gb_[li][k] * inv_batch;
      layer.mb[k] = kBeta1 * layer.mb[k] + (1.0 - kBeta1) * g;
      layer.vb[k] = kBeta2 * layer.vb[k] + (1.0 - kBeta2) * g * g;
      layer.b[k] -= params.learning_rate * (layer.mb[k] / bias1) /
                    (std::sqrt(layer.vb[k] / bias2) + kEps);
    }
  }
}

void Standardizer::fit(const common::Matrix& x) {
  const std::size_t d = x.cols();
  mean.assign(d, 0.0);
  inv_std.assign(d, 1.0);
  if (x.rows() == 0) return;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) mean[c] += row[c];
  }
  for (double& m : mean) m /= static_cast<double>(x.rows());
  std::vector<double> var(d, 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      const double dv = row[c] - mean[c];
      var[c] += dv * dv;
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    const double sd = std::sqrt(var[c] / static_cast<double>(x.rows()));
    inv_std[c] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> Standardizer::transform(std::span<const double> x) const {
  if (x.size() != mean.size()) {
    throw std::invalid_argument("Standardizer: wrong feature count");
  }
  std::vector<double> out(x.size());
  for (std::size_t c = 0; c < x.size(); ++c) {
    out[c] = (x[c] - mean[c]) * inv_std[c];
  }
  return out;
}

common::Matrix Standardizer::transform(const common::Matrix& x) const {
  common::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      dst[c] = (src[c] - mean[c]) * inv_std[c];
    }
  }
  return out;
}

}  // namespace detail

namespace {

// Epoch loop shared by both fronts.
template <typename BatchFn>
void run_epochs(std::size_t n_samples, const MlpParams& params,
                common::Rng& rng, const BatchFn& batch_fn) {
  std::vector<std::size_t> order(n_samples);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const std::size_t batch = std::max<std::size_t>(1, params.batch_size);
  for (std::size_t epoch = 0; epoch < params.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n_samples; start += batch) {
      const std::size_t len = std::min(batch, n_samples - start);
      batch_fn(std::span<const std::size_t>(order.data() + start, len));
    }
  }
}

}  // namespace

MlpClassifier::MlpClassifier(MlpParams params) : params_(std::move(params)) {}

void MlpClassifier::fit(const common::Matrix& x, std::span<const int> y) {
  if (x.rows() == 0 || y.size() != x.rows()) {
    throw std::invalid_argument("MlpClassifier::fit: bad training set");
  }
  int max_label = 0;
  for (int l : y) {
    if (l < 0) throw std::invalid_argument("MlpClassifier: negative label");
    max_label = std::max(max_label, l);
  }
  n_classes_ = static_cast<std::size_t>(max_label) + 1;

  scaler_.fit(x);
  const common::Matrix xs = scaler_.transform(x);
  common::Rng rng(params_.seed);
  net_.init(x.cols(), params_.hidden, n_classes_, rng);
  run_epochs(x.rows(), params_, rng, [&](std::span<const std::size_t> rows) {
    net_.train_batch(xs, rows, y, {}, /*classify=*/true, params_);
  });
}

std::vector<double> MlpClassifier::predict_proba(
    std::span<const double> x) const {
  if (!net_.initialized()) {
    throw std::logic_error("MlpClassifier: not fitted");
  }
  std::vector<double> z = net_.forward(scaler_.transform(x));
  const double zmax = *std::max_element(z.begin(), z.end());
  double sum = 0.0;
  for (double& v : z) {
    v = std::exp(v - zmax);
    sum += v;
  }
  for (double& v : z) v /= sum;
  return z;
}

int MlpClassifier::predict_one(std::span<const double> x) const {
  const std::vector<double> p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

MlpRegressor::MlpRegressor(MlpParams params) : params_(std::move(params)) {}

void MlpRegressor::fit(const common::Matrix& x, std::span<const double> y) {
  if (x.rows() == 0 || y.size() != x.rows()) {
    throw std::invalid_argument("MlpRegressor::fit: bad training set");
  }
  scaler_.fit(x);
  const common::Matrix xs = scaler_.transform(x);

  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(y.size());
  double var = 0.0;
  for (double v : y) {
    const double d = v - y_mean_;
    var += d * d;
  }
  y_std_ = std::sqrt(var / static_cast<double>(y.size()));
  if (y_std_ < 1e-12) y_std_ = 1.0;
  std::vector<double> ys(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ys[i] = (y[i] - y_mean_) / y_std_;
  }

  common::Rng rng(params_.seed);
  net_.init(x.cols(), params_.hidden, 1, rng);
  run_epochs(x.rows(), params_, rng, [&](std::span<const std::size_t> rows) {
    net_.train_batch(xs, rows, {}, ys, /*classify=*/false, params_);
  });
}

double MlpRegressor::predict_one(std::span<const double> x) const {
  if (!net_.initialized()) {
    throw std::logic_error("MlpRegressor: not fitted");
  }
  return net_.forward(scaler_.transform(x))[0] * y_std_ + y_mean_;
}

}  // namespace csm::ml
