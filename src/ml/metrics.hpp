// Evaluation metrics (Section IV-A1).
//
// Classification problems are scored with the F1-score (harmonic mean of
// precision and recall, macro-averaged across classes); regression problems
// with the Normalized Root Mean Square Error, presented as the
// higher-is-better complement NRMSE_c = 1 - NRMSE ("ML score") so both kinds
// of task plot on the same axis.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace csm::ml {

/// Row-major confusion matrix; entry (t, p) counts samples of true class t
/// predicted as class p.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t n_classes);

  /// Accumulates one prediction. Throws std::out_of_range on bad labels.
  void add(int truth, int predicted);

  std::size_t n_classes() const noexcept { return n_; }
  std::uint64_t count(std::size_t truth, std::size_t predicted) const;
  std::uint64_t total() const noexcept { return total_; }

  double accuracy() const;
  /// Precision of one class: TP / (TP + FP); 0 when the class is never
  /// predicted.
  double precision(std::size_t cls) const;
  /// Recall of one class: TP / (TP + FN); 0 when the class never occurs.
  double recall(std::size_t cls) const;
  /// Per-class F1 = 2PR / (P + R); 0 when both are 0.
  double f1(std::size_t cls) const;
  /// Unweighted mean of per-class F1 scores (macro averaging).
  double macro_f1() const;

 private:
  std::size_t n_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Macro F1 straight from label vectors. Averages only over labels that
/// actually occur in `truth` or `predicted` — gap labels (e.g. {0, 5} with
/// nothing in between) contribute no zero-F1 phantom classes.
double macro_f1(std::span<const int> truth, std::span<const int> predicted);

/// Root mean square error. Throws std::invalid_argument on length mismatch
/// or empty input.
double rmse(std::span<const double> truth, std::span<const double> predicted);

/// NRMSE = RMSE / (max(truth) - min(truth)); a constant truth vector yields
/// NRMSE 0 when predictions are exact and 1 otherwise.
double nrmse(std::span<const double> truth, std::span<const double> predicted);

/// The paper's higher-is-better regression score, clamped to [0, 1].
double ml_score_regression(std::span<const double> truth,
                           std::span<const double> predicted);

}  // namespace csm::ml
