#include "ml/splits.hpp"

#include <algorithm>
#include <stdexcept>

namespace csm::ml {

namespace {

// Converts per-fold test sets into full Folds (train = everything else).
std::vector<Fold> assemble(std::vector<std::vector<std::size_t>> test_sets,
                           std::size_t n) {
  std::vector<Fold> folds(test_sets.size());
  std::vector<std::size_t> owner(n, test_sets.size());
  for (std::size_t f = 0; f < test_sets.size(); ++f) {
    for (std::size_t idx : test_sets[f]) owner[idx] = f;
  }
  for (std::size_t f = 0; f < test_sets.size(); ++f) {
    folds[f].test_indices = std::move(test_sets[f]);
    std::sort(folds[f].test_indices.begin(), folds[f].test_indices.end());
    folds[f].train_indices.reserve(n - folds[f].test_indices.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (owner[i] != f) folds[f].train_indices.push_back(i);
    }
  }
  return folds;
}

}  // namespace

std::vector<Fold> kfold(std::size_t n, std::size_t k, common::Rng& rng) {
  if (k < 2) throw std::invalid_argument("kfold: k must be >= 2");
  if (n < k) throw std::invalid_argument("kfold: fewer samples than folds");
  const std::vector<std::size_t> perm = rng.permutation(n);
  std::vector<std::vector<std::size_t>> test_sets(k);
  for (std::size_t i = 0; i < n; ++i) {
    test_sets[i % k].push_back(perm[i]);
  }
  return assemble(std::move(test_sets), n);
}

std::vector<Fold> stratified_kfold(std::span<const int> labels, std::size_t k,
                                   common::Rng& rng) {
  if (k < 2) throw std::invalid_argument("stratified_kfold: k must be >= 2");
  if (labels.size() < k) {
    throw std::invalid_argument("stratified_kfold: fewer samples than folds");
  }
  int max_label = 0;
  for (int l : labels) {
    if (l < 0) throw std::invalid_argument("stratified_kfold: negative label");
    max_label = std::max(max_label, l);
  }
  // Group sample indices per class, shuffle within class, deal round-robin.
  std::vector<std::vector<std::size_t>> per_class(
      static_cast<std::size_t>(max_label) + 1);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    per_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }
  std::vector<std::vector<std::size_t>> test_sets(k);
  std::size_t fold_cursor = 0;
  for (auto& members : per_class) {
    rng.shuffle(members);
    for (std::size_t idx : members) {
      test_sets[fold_cursor % k].push_back(idx);
      ++fold_cursor;
    }
  }
  return assemble(std::move(test_sets), labels.size());
}

}  // namespace csm::ml
