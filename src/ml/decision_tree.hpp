// CART decision trees (classification and regression).
//
// The paper's models are scikit-learn random forests (50 estimators, Gini
// impurity); this is the underlying tree learner, built from scratch:
// axis-aligned binary splits chosen by exhaustive threshold scan over a
// random feature subset, Gini impurity for classification and variance
// reduction for regression, with the usual depth / minimum-sample stopping
// rules. Trees are stored as a flat node array for cache-friendly inference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace csm::ml {

/// Stopping and split-sampling parameters shared by both tree kinds.
struct TreeParams {
  std::size_t max_depth = 0;          ///< 0 = unlimited.
  std::size_t min_samples_split = 2;  ///< Nodes smaller than this are leaves.
  std::size_t min_samples_leaf = 1;  ///< Smaller children are rejected.
  std::size_t max_features = 0;       ///< Features tried per split; 0 = all.
};

/// A fitted CART tree. Fit either as a classifier or as a regressor; the
/// corresponding predict method must be used.
class DecisionTree {
 public:
  explicit DecisionTree(TreeParams params = {}) : params_(params) {}

  /// Fits a classifier on rows `sample_indices` of X (all rows when empty).
  /// Labels must be in [0, n_classes). `rng` drives feature sub-sampling.
  void fit_classifier(const common::Matrix& x, std::span<const int> y,
                      std::size_t n_classes, common::Rng& rng,
                      std::span<const std::size_t> sample_indices = {});

  /// Fits a regressor on rows `sample_indices` of X (all rows when empty).
  void fit_regressor(const common::Matrix& x, std::span<const double> y,
                     common::Rng& rng,
                     std::span<const std::size_t> sample_indices = {});

  bool is_fitted() const noexcept { return !nodes_.empty(); }
  bool is_classifier() const noexcept { return is_classifier_; }
  std::size_t n_nodes() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept { return depth_; }

  /// Predicted class for one feature vector.
  int predict_class(std::span<const double> x) const;
  /// Predicted value for one feature vector.
  double predict_value(std::span<const double> x) const;

 private:
  struct Node {
    std::int32_t feature = -1;  ///< -1 marks a leaf.
    double threshold = 0.0;     ///< Go left if x[feature] <= threshold.
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    double value = 0.0;         ///< Leaf payload: class id or mean target.
  };

  const Node& descend(std::span<const double> x) const;

  void fit_impl(const common::Matrix& x, std::span<const int> yc,
                std::span<const double> yr, std::size_t n_classes,
                common::Rng& rng, std::span<const std::size_t> sample_indices);

  TreeParams params_;
  std::vector<Node> nodes_;
  std::size_t depth_ = 0;
  bool is_classifier_ = false;
};

/// Gini impurity of a class-count histogram with `total` samples.
double gini_impurity(std::span<const std::size_t> counts, std::size_t total);

}  // namespace csm::ml
