#include "ml/knn.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace csm::ml {

double squared_distance(std::span<const double> a,
                        std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("squared_distance: length mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  if (k_ == 0) throw std::invalid_argument("KnnClassifier: k must be > 0");
}

void KnnClassifier::fit(const common::Matrix& x, std::span<const int> y) {
  if (x.rows() == 0 || y.size() != x.rows()) {
    throw std::invalid_argument("KnnClassifier::fit: bad training set");
  }
  int max_label = 0;
  for (int l : y) {
    if (l < 0) throw std::invalid_argument("KnnClassifier: negative label");
    max_label = std::max(max_label, l);
  }
  n_classes_ = static_cast<std::size_t>(max_label) + 1;
  train_x_ = x;
  train_y_.assign(y.begin(), y.end());
}

int KnnClassifier::predict_one(std::span<const double> x) const {
  if (train_x_.rows() == 0) {
    throw std::logic_error("KnnClassifier: not fitted");
  }
  const std::size_t k = std::min(k_, train_x_.rows());
  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(train_x_.rows());
  for (std::size_t r = 0; r < train_x_.rows(); ++r) {
    dist.emplace_back(squared_distance(train_x_.row(r), x), train_y_[r]);
  }
  std::nth_element(dist.begin(),
                   dist.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   dist.end());
  std::vector<std::size_t> votes(n_classes_, 0);
  for (std::size_t i = 0; i < k; ++i) {
    ++votes[static_cast<std::size_t>(dist[i].second)];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

}  // namespace csm::ml
