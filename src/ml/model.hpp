// Abstract model interfaces consumed by the cross-validation driver.
//
// The harness treats classifiers and regressors uniformly via factories, so
// the same experiment code runs random forests (the paper's primary model)
// and multi-layer perceptrons (used in Section IV-F).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace csm::ml {

/// Multi-class classifier over dense feature rows.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on X (rows = samples) with labels in [0, n_classes).
  virtual void fit(const common::Matrix& x, std::span<const int> y) = 0;

  virtual int predict_one(std::span<const double> x) const = 0;

  /// Default row-by-row prediction; implementations may override.
  virtual std::vector<int> predict(const common::Matrix& x) const;
};

/// Scalar regressor over dense feature rows.
class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual void fit(const common::Matrix& x, std::span<const double> y) = 0;

  virtual double predict_one(std::span<const double> x) const = 0;

  virtual std::vector<double> predict(const common::Matrix& x) const;
};

}  // namespace csm::ml
