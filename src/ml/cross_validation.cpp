#include "ml/cross_validation.hpp"

#include <numeric>
#include <stdexcept>

#include "common/timer.hpp"
#include "ml/metrics.hpp"
#include "ml/splits.hpp"

namespace csm::ml {

namespace {

void finalize(CvResult& result) {
  if (!result.fold_scores.empty()) {
    result.mean_score =
        std::accumulate(result.fold_scores.begin(), result.fold_scores.end(),
                        0.0) /
        static_cast<double>(result.fold_scores.size());
  }
}

}  // namespace

CvResult cross_validate_classification(const data::Dataset& ds, std::size_t k,
                                       const ClassifierFactory& factory,
                                       common::Rng& rng) {
  ds.validate();
  if (ds.kind() != data::TaskKind::kClassification) {
    throw std::invalid_argument(
        "cross_validate_classification: not a classification dataset");
  }
  CvResult result;
  const std::vector<Fold> folds = stratified_kfold(ds.labels, k, rng);
  for (const Fold& fold : folds) {
    const data::Dataset train = ds.subset(fold.train_indices);
    const data::Dataset test = ds.subset(fold.test_indices);

    const std::unique_ptr<Classifier> model = factory();
    common::Timer fit_timer;
    model->fit(train.features, train.labels);
    result.train_seconds += fit_timer.seconds();

    common::Timer test_timer;
    const std::vector<int> predicted = model->predict(test.features);
    result.fold_scores.push_back(macro_f1(test.labels, predicted));
    result.test_seconds += test_timer.seconds();
  }
  finalize(result);
  return result;
}

CvResult cross_validate_regression(const data::Dataset& ds, std::size_t k,
                                   const RegressorFactory& factory,
                                   common::Rng& rng) {
  ds.validate();
  if (ds.kind() != data::TaskKind::kRegression) {
    throw std::invalid_argument(
        "cross_validate_regression: not a regression dataset");
  }
  CvResult result;
  const std::vector<Fold> folds = kfold(ds.size(), k, rng);
  for (const Fold& fold : folds) {
    const data::Dataset train = ds.subset(fold.train_indices);
    const data::Dataset test = ds.subset(fold.test_indices);

    const std::unique_ptr<Regressor> model = factory();
    common::Timer fit_timer;
    model->fit(train.features, train.targets);
    result.train_seconds += fit_timer.seconds();

    common::Timer test_timer;
    const std::vector<double> predicted = model->predict(test.features);
    result.fold_scores.push_back(
        ml_score_regression(test.targets, predicted));
    result.test_seconds += test_timer.seconds();
  }
  finalize(result);
  return result;
}

CvResult cross_validate(const data::Dataset& ds, std::size_t k,
                        const ModelFactories& factories, common::Rng& rng) {
  if (ds.kind() == data::TaskKind::kClassification) {
    if (!factories.classifier) {
      throw std::invalid_argument("cross_validate: no classifier factory");
    }
    return cross_validate_classification(ds, k, factories.classifier, rng);
  }
  if (!factories.regressor) {
    throw std::invalid_argument("cross_validate: no regressor factory");
  }
  return cross_validate_regression(ds, k, factories.regressor, rng);
}

}  // namespace csm::ml
