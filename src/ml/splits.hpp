// Train/test splitting (Section IV-A1).
//
// The evaluation uses 5-fold cross-validation with a *stratified* K-fold
// strategy for classification (each fold preserves per-class proportions) and
// plain K-fold for regression. Folds are uniformly sized up to rounding.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace csm::ml {

/// One cross-validation fold: disjoint index sets into the dataset.
struct Fold {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Plain K-fold over n samples, shuffled. Throws std::invalid_argument if
/// k < 2 or n < k.
std::vector<Fold> kfold(std::size_t n, std::size_t k, common::Rng& rng);

/// Stratified K-fold: each class's samples are shuffled and dealt
/// round-robin across folds, so per-fold class proportions match the dataset.
/// Classes with fewer than k samples simply appear in fewer folds' test
/// sets. Throws std::invalid_argument if k < 2, n < k, or a label is
/// negative.
std::vector<Fold> stratified_kfold(std::span<const int> labels, std::size_t k,
                                   common::Rng& rng);

}  // namespace csm::ml
