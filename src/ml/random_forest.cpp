#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace csm::ml {

namespace {

// Bootstrap resample of [0, n): n draws with replacement.
std::vector<std::size_t> bootstrap_indices(std::size_t n, common::Rng& rng) {
  std::vector<std::size_t> out(n);
  for (auto& v : out) v = static_cast<std::size_t>(rng.uniform_int(n));
  return out;
}

void check_training_input(const common::Matrix& x, std::size_t y_size) {
  if (x.rows() == 0) {
    throw std::invalid_argument("RandomForest: empty training set");
  }
  if (y_size != x.rows()) {
    throw std::invalid_argument("RandomForest: label/target count mismatch");
  }
}

}  // namespace

std::size_t resolve_max_features(const ForestParams& params,
                                 std::size_t n_features,
                                 bool classification) {
  if (params.tree.max_features != 0) {
    return std::min(params.tree.max_features, n_features);
  }
  MaxFeaturesMode mode = params.feature_mode;
  if (mode == MaxFeaturesMode::kTaskDefault) {
    mode = classification ? MaxFeaturesMode::kSqrt : MaxFeaturesMode::kAll;
  }
  switch (mode) {
    case MaxFeaturesMode::kAll:
      return n_features;
    case MaxFeaturesMode::kSqrt:
      return std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::sqrt(static_cast<double>(n_features))));
    case MaxFeaturesMode::kThird:
      return std::max<std::size_t>(1, n_features / 3);
    case MaxFeaturesMode::kTaskDefault:
      break;  // Unreachable; handled above.
  }
  return n_features;
}

RandomForestClassifier::RandomForestClassifier(ForestParams params)
    : params_(params) {
  if (params_.n_estimators == 0) {
    throw std::invalid_argument("RandomForestClassifier: zero estimators");
  }
}

void RandomForestClassifier::fit(const common::Matrix& x,
                                 std::span<const int> y) {
  check_training_input(x, y.size());
  int max_label = 0;
  for (int l : y) {
    if (l < 0) throw std::invalid_argument("RandomForest: negative label");
    max_label = std::max(max_label, l);
  }
  n_classes_ = static_cast<std::size_t>(max_label) + 1;

  TreeParams tree_params = params_.tree;
  tree_params.max_features =
      resolve_max_features(params_, x.cols(), /*classification=*/true);

  // Deterministic per-tree streams, forked sequentially before going wide.
  common::Rng root(params_.seed);
  std::vector<common::Rng> streams;
  streams.reserve(params_.n_estimators);
  for (std::size_t i = 0; i < params_.n_estimators; ++i) {
    streams.push_back(root.fork());
  }

  trees_.assign(params_.n_estimators, DecisionTree(tree_params));
  common::parallel_for_dynamic(params_.n_estimators, [&](std::size_t t) {
    common::Rng& rng = streams[t];
    if (params_.bootstrap) {
      const std::vector<std::size_t> sample = bootstrap_indices(x.rows(), rng);
      trees_[t].fit_classifier(x, y, n_classes_, rng, sample);
    } else {
      trees_[t].fit_classifier(x, y, n_classes_, rng);
    }
  });
}

int RandomForestClassifier::predict_one(std::span<const double> x) const {
  if (trees_.empty() || !trees_.front().is_fitted()) {
    throw std::logic_error("RandomForestClassifier: not fitted");
  }
  std::vector<std::size_t> votes(n_classes_, 0);
  for (const DecisionTree& tree : trees_) {
    ++votes[static_cast<std::size_t>(tree.predict_class(x))];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) -
                          votes.begin());
}

RandomForestRegressor::RandomForestRegressor(ForestParams params)
    : params_(params) {
  if (params_.n_estimators == 0) {
    throw std::invalid_argument("RandomForestRegressor: zero estimators");
  }
}

void RandomForestRegressor::fit(const common::Matrix& x,
                                std::span<const double> y) {
  check_training_input(x, y.size());
  TreeParams tree_params = params_.tree;
  tree_params.max_features =
      resolve_max_features(params_, x.cols(), /*classification=*/false);

  common::Rng root(params_.seed);
  std::vector<common::Rng> streams;
  streams.reserve(params_.n_estimators);
  for (std::size_t i = 0; i < params_.n_estimators; ++i) {
    streams.push_back(root.fork());
  }

  trees_.assign(params_.n_estimators, DecisionTree(tree_params));
  common::parallel_for_dynamic(params_.n_estimators, [&](std::size_t t) {
    common::Rng& rng = streams[t];
    if (params_.bootstrap) {
      const std::vector<std::size_t> sample = bootstrap_indices(x.rows(), rng);
      trees_[t].fit_regressor(x, y, rng, sample);
    } else {
      trees_[t].fit_regressor(x, y, rng);
    }
  });
}

double RandomForestRegressor::predict_one(std::span<const double> x) const {
  if (trees_.empty() || !trees_.front().is_fitted()) {
    throw std::logic_error("RandomForestRegressor: not fitted");
  }
  double acc = 0.0;
  for (const DecisionTree& tree : trees_) acc += tree.predict_value(x);
  return acc / static_cast<double>(trees_.size());
}

}  // namespace csm::ml
