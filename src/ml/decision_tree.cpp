#include "ml/decision_tree.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace csm::ml {

double gini_impurity(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double acc = 0.0;
  const double inv = 1.0 / static_cast<double>(total);
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) * inv;
    acc += p * p;
  }
  return 1.0 - acc;
}

namespace {

// Work item for the iterative tree builder: a node and the index range of
// its samples inside the shared index buffer.
struct BuildItem {
  std::uint32_t node;
  std::size_t begin;
  std::size_t end;
  std::size_t depth;
};

// Result of a split search.
struct Split {
  std::int32_t feature = -1;
  double threshold = 0.0;
  double score = -1.0;  // Impurity decrease (not normalised); -1 = none.
};

}  // namespace

void DecisionTree::fit_classifier(const common::Matrix& x,
                                  std::span<const int> y,
                                  std::size_t n_classes, common::Rng& rng,
                                  std::span<const std::size_t> sample_indices) {
  if (n_classes == 0) {
    throw std::invalid_argument("fit_classifier: zero classes");
  }
  is_classifier_ = true;
  fit_impl(x, y, {}, n_classes, rng, sample_indices);
}

void DecisionTree::fit_regressor(const common::Matrix& x,
                                 std::span<const double> y, common::Rng& rng,
                                 std::span<const std::size_t> sample_indices) {
  is_classifier_ = false;
  fit_impl(x, {}, y, 0, rng, sample_indices);
}

void DecisionTree::fit_impl(const common::Matrix& x, std::span<const int> yc,
                            std::span<const double> yr, std::size_t n_classes,
                            common::Rng& rng,
                            std::span<const std::size_t> sample_indices) {
  const bool classify = is_classifier_;
  if (classify && yc.size() != x.rows()) {
    throw std::invalid_argument("DecisionTree: label count mismatch");
  }
  if (!classify && yr.size() != x.rows()) {
    throw std::invalid_argument("DecisionTree: target count mismatch");
  }
  if (x.rows() == 0) {
    throw std::invalid_argument("DecisionTree: no training samples");
  }

  nodes_.clear();
  depth_ = 0;

  // Shared, reorderable buffer of sample indices; each node owns a range.
  std::vector<std::size_t> idx;
  if (sample_indices.empty()) {
    idx.resize(x.rows());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
  } else {
    idx.assign(sample_indices.begin(), sample_indices.end());
    for (std::size_t i : idx) {
      if (i >= x.rows()) {
        throw std::out_of_range("DecisionTree: sample index out of range");
      }
    }
  }

  const std::size_t n_features = x.cols();
  const std::size_t features_per_split =
      params_.max_features == 0 ? n_features
                                : std::min(params_.max_features, n_features);

  std::vector<std::size_t> feature_pool(n_features);
  std::iota(feature_pool.begin(), feature_pool.end(), std::size_t{0});

  // Scratch buffers reused across nodes.
  std::vector<std::size_t> counts_total(n_classes), counts_left(n_classes);
  std::vector<std::size_t> sorted;  // Indices of the node, sorted per feature.

  nodes_.push_back(Node{});
  std::vector<BuildItem> stack{BuildItem{0, 0, idx.size(), 0}};

  while (!stack.empty()) {
    const BuildItem item = stack.back();
    stack.pop_back();
    const std::size_t m = item.end - item.begin;
    depth_ = std::max(depth_, item.depth);
    const std::span<std::size_t> node_idx(idx.data() + item.begin, m);

    // Leaf payload and purity of this node.
    double node_impurity = 0.0;
    double leaf_value = 0.0;
    double sum = 0.0, sum_sq = 0.0;
    if (classify) {
      std::fill(counts_total.begin(), counts_total.end(), std::size_t{0});
      for (std::size_t i : node_idx) {
        const int label = yc[i];
        if (label < 0 || static_cast<std::size_t>(label) >= n_classes) {
          throw std::out_of_range("DecisionTree: label out of range");
        }
        ++counts_total[static_cast<std::size_t>(label)];
      }
      node_impurity = gini_impurity(counts_total, m);
      leaf_value = static_cast<double>(
          std::max_element(counts_total.begin(), counts_total.end()) -
          counts_total.begin());
    } else {
      for (std::size_t i : node_idx) {
        sum += yr[i];
        sum_sq += yr[i] * yr[i];
      }
      leaf_value = sum / static_cast<double>(m);
      node_impurity = sum_sq / static_cast<double>(m) - leaf_value * leaf_value;
    }

    const bool depth_ok =
        params_.max_depth == 0 || item.depth < params_.max_depth;
    Split best;
    if (depth_ok && m >= params_.min_samples_split && node_impurity > 1e-12) {
      // Sample features without replacement (partial Fisher-Yates).
      for (std::size_t f = 0; f < features_per_split; ++f) {
        const std::size_t j =
            f + static_cast<std::size_t>(rng.uniform_int(n_features - f));
        std::swap(feature_pool[f], feature_pool[j]);
      }
      for (std::size_t fi = 0; fi < features_per_split; ++fi) {
        const std::size_t feature = feature_pool[fi];
        sorted.assign(node_idx.begin(), node_idx.end());
        std::sort(sorted.begin(), sorted.end(),
                  [&](std::size_t a, std::size_t b) {
                    return x(a, feature) < x(b, feature);
                  });
        if (x(sorted.front(), feature) == x(sorted.back(), feature)) {
          continue;  // Constant feature in this node.
        }
        if (classify) {
          std::fill(counts_left.begin(), counts_left.end(), std::size_t{0});
          std::size_t n_left = 0;
          for (std::size_t pos = 1; pos < m; ++pos) {
            const std::size_t moved = sorted[pos - 1];
            ++counts_left[static_cast<std::size_t>(yc[moved])];
            ++n_left;
            if (x(sorted[pos - 1], feature) == x(sorted[pos], feature)) {
              continue;
            }
            if (n_left < params_.min_samples_leaf ||
                m - n_left < params_.min_samples_leaf) {
              continue;
            }
            // Weighted Gini of the two children; lower is better, so score
            // is the decrease relative to the parent.
            double gini_right;
            {
              double acc = 0.0;
              const double inv =
                  1.0 / static_cast<double>(m - n_left);
              for (std::size_t c = 0; c < n_classes; ++c) {
                const double p =
                    static_cast<double>(counts_total[c] - counts_left[c]) *
                    inv;
                acc += p * p;
              }
              gini_right = 1.0 - acc;
            }
            const double gini_left = gini_impurity(counts_left, n_left);
            const double frac_left =
                static_cast<double>(n_left) / static_cast<double>(m);
            const double child_impurity =
                frac_left * gini_left + (1.0 - frac_left) * gini_right;
            const double score = node_impurity - child_impurity;
            if (score > best.score) {
              best.score = score;
              best.feature = static_cast<std::int32_t>(feature);
              best.threshold = 0.5 * (x(sorted[pos - 1], feature) +
                                      x(sorted[pos], feature));
            }
          }
        } else {
          double sum_left = 0.0;
          std::size_t n_left = 0;
          for (std::size_t pos = 1; pos < m; ++pos) {
            sum_left += yr[sorted[pos - 1]];
            ++n_left;
            if (x(sorted[pos - 1], feature) == x(sorted[pos], feature)) {
              continue;
            }
            if (n_left < params_.min_samples_leaf ||
                m - n_left < params_.min_samples_leaf) {
              continue;
            }
            // Variance reduction is maximised by maximising
            // nL*meanL^2 + nR*meanR^2 (constant terms dropped).
            const double sum_right = sum - sum_left;
            const double nl = static_cast<double>(n_left);
            const double nr = static_cast<double>(m - n_left);
            const double score_raw =
                sum_left * sum_left / nl + sum_right * sum_right / nr;
            // Shift so the score is comparable to "impurity decrease > 0":
            // subtract the parent's contribution sum^2 / m.
            const double score =
                (score_raw - sum * sum / static_cast<double>(m)) /
                static_cast<double>(m);
            if (score > best.score) {
              best.score = score;
              best.feature = static_cast<std::int32_t>(feature);
              best.threshold = 0.5 * (x(sorted[pos - 1], feature) +
                                      x(sorted[pos], feature));
            }
          }
        }
      }
    }

    if (best.feature < 0 || best.score <= 1e-15) {
      nodes_[item.node].feature = -1;
      nodes_[item.node].value = leaf_value;
      continue;
    }

    // Partition this node's index range around the threshold.
    const auto mid_it = std::partition(
        idx.begin() + static_cast<std::ptrdiff_t>(item.begin),
        idx.begin() + static_cast<std::ptrdiff_t>(item.end),
        [&](std::size_t i) {
          return x(i, static_cast<std::size_t>(best.feature)) <=
                 best.threshold;
        });
    const auto mid =
        static_cast<std::size_t>(mid_it - idx.begin());
    if (mid == item.begin || mid == item.end) {
      // Numerically degenerate split; make a leaf instead.
      nodes_[item.node].feature = -1;
      nodes_[item.node].value = leaf_value;
      continue;
    }

    const auto left_id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
    const auto right_id = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
    nodes_[item.node].feature = best.feature;
    nodes_[item.node].threshold = best.threshold;
    nodes_[item.node].left = left_id;
    nodes_[item.node].right = right_id;
    stack.push_back(BuildItem{left_id, item.begin, mid, item.depth + 1});
    stack.push_back(BuildItem{right_id, mid, item.end, item.depth + 1});
  }
}

const DecisionTree::Node& DecisionTree::descend(
    std::span<const double> x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  const Node* node = &nodes_[0];
  while (node->feature >= 0) {
    const auto f = static_cast<std::size_t>(node->feature);
    if (f >= x.size()) {
      throw std::out_of_range("DecisionTree: feature vector too short");
    }
    node = &nodes_[x[f] <= node->threshold ? node->left : node->right];
  }
  return *node;
}

int DecisionTree::predict_class(std::span<const double> x) const {
  if (!is_classifier_) {
    throw std::logic_error("DecisionTree: not fitted as classifier");
  }
  return static_cast<int>(descend(x).value);
}

double DecisionTree::predict_value(std::span<const double> x) const {
  if (is_classifier_) {
    throw std::logic_error("DecisionTree: not fitted as regressor");
  }
  return descend(x).value;
}

}  // namespace csm::ml
