#include "ml/model.hpp"

namespace csm::ml {

std::vector<int> Classifier::predict(const common::Matrix& x) const {
  std::vector<int> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(predict_one(x.row(r)));
  }
  return out;
}

std::vector<double> Regressor::predict(const common::Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(predict_one(x.row(r)));
  }
  return out;
}

}  // namespace csm::ml
