// k-nearest-neighbour classifier.
//
// A second, instance-based model family for the evaluation harness: the
// comparability of CS signatures (same length, same block semantics across
// systems) is what makes plain Euclidean kNN meaningful on them, so this
// model doubles as a test of that property. Brute-force search — signature
// datasets are thousands of rows, not millions.
#pragma once

#include <cstddef>

#include "ml/model.hpp"

namespace csm::ml {

/// Majority-vote kNN over Euclidean distance.
class KnnClassifier final : public Classifier {
 public:
  /// Throws std::invalid_argument if k == 0.
  explicit KnnClassifier(std::size_t k = 5);

  void fit(const common::Matrix& x, std::span<const int> y) override;
  int predict_one(std::span<const double> x) const override;

  std::size_t k() const noexcept { return k_; }

 private:
  std::size_t k_;
  common::Matrix train_x_;
  std::vector<int> train_y_;
  std::size_t n_classes_ = 0;
};

/// Squared Euclidean distance between two equally sized vectors.
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace csm::ml
