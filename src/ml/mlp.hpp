// Multi-layer perceptron (Section IV-A1 / IV-F: two hidden layers of 100
// neurons with ReLU activations).
//
// A from-scratch fully-connected network trained with mini-batch Adam:
// softmax + cross-entropy head for classification, linear + MSE head for
// regression. Inputs (and regression targets) are z-score standardised
// internally, mirroring what scikit-learn users do before fitting MLPs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "ml/model.hpp"

namespace csm::ml {

/// Network and optimiser configuration.
struct MlpParams {
  std::vector<std::size_t> hidden = {100, 100};  ///< Paper's architecture.
  std::size_t epochs = 40;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;  ///< Adam step size.
  double l2 = 1e-5;             ///< Weight decay.
  std::uint64_t seed = 0x31f;
};

namespace detail {

/// Fully-connected network core shared by the classifier and regressor
/// fronts. Parameters are stored per layer; Adam moments alongside.
class MlpNetwork {
 public:
  void init(std::size_t inputs, const std::vector<std::size_t>& hidden,
            std::size_t outputs, common::Rng& rng);

  bool initialized() const noexcept { return !layers_.empty(); }
  std::size_t inputs() const noexcept { return inputs_; }
  std::size_t outputs() const noexcept { return outputs_; }

  /// Forward pass; returns the raw output layer (no softmax).
  std::vector<double> forward(std::span<const double> x) const;

  /// One Adam step over a mini-batch. `x` is the standardised feature
  /// matrix; `rows` selects the batch. For classification `labels` is used
  /// (softmax cross-entropy); otherwise `targets` (MSE, standardised).
  void train_batch(const common::Matrix& x, std::span<const std::size_t> rows,
                   std::span<const int> labels,
                   std::span<const double> targets, bool classify,
                   const MlpParams& params);

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<double> w;       // out x in, row-major.
    std::vector<double> b;       // out.
    // Adam state.
    std::vector<double> mw, vw, mb, vb;
  };

  // Forward keeping activations of every layer (for backprop).
  void forward_cached(std::span<const double> x,
                      std::vector<std::vector<double>>& acts) const;

  std::size_t inputs_ = 0;
  std::size_t outputs_ = 0;
  std::vector<Layer> layers_;
  std::uint64_t adam_t_ = 0;

  // Gradient accumulators (same shapes as layers), reused across batches.
  mutable std::vector<std::vector<double>> gw_, gb_;
};

/// Per-feature z-score standardisation fitted on training data.
struct Standardizer {
  std::vector<double> mean;
  std::vector<double> inv_std;

  void fit(const common::Matrix& x);
  std::vector<double> transform(std::span<const double> x) const;
  common::Matrix transform(const common::Matrix& x) const;
};

}  // namespace detail

/// Softmax-headed MLP classifier.
class MlpClassifier final : public Classifier {
 public:
  explicit MlpClassifier(MlpParams params = {});

  void fit(const common::Matrix& x, std::span<const int> y) override;
  int predict_one(std::span<const double> x) const override;

  /// Class probabilities for one sample (softmax output).
  std::vector<double> predict_proba(std::span<const double> x) const;

 private:
  MlpParams params_;
  detail::MlpNetwork net_;
  detail::Standardizer scaler_;
  std::size_t n_classes_ = 0;
};

/// Linear-headed MLP regressor.
class MlpRegressor final : public Regressor {
 public:
  explicit MlpRegressor(MlpParams params = {});

  void fit(const common::Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;

 private:
  MlpParams params_;
  detail::MlpNetwork net_;
  detail::Standardizer scaler_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
};

}  // namespace csm::ml
