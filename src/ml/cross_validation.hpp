// K-fold cross-validation driver (Section IV-A1).
//
// Runs the paper's evaluation protocol: shuffle the feature sets, split into
// k uniformly sized folds (stratified for classification), train on k-1
// folds, test on the held-out fold, and average the ML score (macro F1 for
// classification, 1 - NRMSE for regression) over all k combinations.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "ml/model.hpp"

namespace csm::ml {

/// Outcome of one cross-validation run.
struct CvResult {
  std::vector<double> fold_scores;  ///< ML score of each fold.
  double mean_score = 0.0;
  double train_seconds = 0.0;  ///< Total fit time across folds.
  double test_seconds = 0.0;   ///< Total predict+score time across folds.
};

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;
using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

/// Stratified k-fold CV of a classification dataset; the score is macro F1.
CvResult cross_validate_classification(const data::Dataset& ds, std::size_t k,
                                       const ClassifierFactory& factory,
                                       common::Rng& rng);

/// Plain k-fold CV of a regression dataset; the score is 1 - NRMSE.
CvResult cross_validate_regression(const data::Dataset& ds, std::size_t k,
                                   const RegressorFactory& factory,
                                   common::Rng& rng);

/// Model factories for both task kinds, so segment-agnostic experiment code
/// can hand one object to the driver.
struct ModelFactories {
  ClassifierFactory classifier;
  RegressorFactory regressor;
};

/// Dispatches on ds.kind(). Throws std::invalid_argument if the needed
/// factory is missing.
CvResult cross_validate(const data::Dataset& ds, std::size_t k,
                        const ModelFactories& factories, common::Rng& rng);

}  // namespace csm::ml
