#include "ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>

namespace csm::ml {

ConfusionMatrix::ConfusionMatrix(std::size_t n_classes)
    : n_(n_classes), counts_(n_classes * n_classes, 0) {
  if (n_ == 0) throw std::invalid_argument("ConfusionMatrix: zero classes");
}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || predicted < 0 ||
      static_cast<std::size_t>(truth) >= n_ ||
      static_cast<std::size_t>(predicted) >= n_) {
    throw std::out_of_range("ConfusionMatrix::add: label out of range");
  }
  ++counts_[static_cast<std::size_t>(truth) * n_ +
            static_cast<std::size_t>(predicted)];
  ++total_;
}

std::uint64_t ConfusionMatrix::count(std::size_t truth,
                                     std::size_t predicted) const {
  if (truth >= n_ || predicted >= n_) {
    throw std::out_of_range("ConfusionMatrix::count: index out of range");
  }
  return counts_[truth * n_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::uint64_t correct = 0;
  for (std::size_t c = 0; c < n_; ++c) correct += counts_[c * n_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  std::uint64_t tp = count(cls, cls);
  std::uint64_t predicted = 0;
  for (std::size_t t = 0; t < n_; ++t) predicted += count(t, cls);
  return predicted == 0
             ? 0.0
             : static_cast<double>(tp) / static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  std::uint64_t tp = count(cls, cls);
  std::uint64_t actual = 0;
  for (std::size_t p = 0; p < n_; ++p) actual += count(cls, p);
  return actual == 0 ? 0.0
                     : static_cast<double>(tp) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double acc = 0.0;
  for (std::size_t c = 0; c < n_; ++c) acc += f1(c);
  return acc / static_cast<double>(n_);
}

double macro_f1(std::span<const int> truth, std::span<const int> predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("macro_f1: length mismatch");
  }
  if (truth.empty()) throw std::invalid_argument("macro_f1: empty input");
  // Average over the labels that occur, not over [0, max]: with gap labels
  // (say {0, 5}) the absent classes 1-4 would otherwise contribute F1 = 0
  // each and silently drag the macro average down.
  std::set<int> present(truth.begin(), truth.end());
  present.insert(predicted.begin(), predicted.end());
  // Negative labels still throw via ConfusionMatrix::add below.
  ConfusionMatrix cm(static_cast<std::size_t>(std::max(*present.rbegin(), 0)) +
                     1);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    cm.add(truth[i], predicted[i]);
  }
  double acc = 0.0;
  for (int cls : present) acc += cm.f1(static_cast<std::size_t>(cls));
  return acc / static_cast<double>(present.size());
}

double rmse(std::span<const double> truth, std::span<const double> predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("rmse: length mismatch");
  }
  if (truth.empty()) throw std::invalid_argument("rmse: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double nrmse(std::span<const double> truth,
             std::span<const double> predicted) {
  const double e = rmse(truth, predicted);
  const auto [lo, hi] = std::minmax_element(truth.begin(), truth.end());
  const double range = *hi - *lo;
  if (range == 0.0) return e == 0.0 ? 0.0 : 1.0;
  return e / range;
}

double ml_score_regression(std::span<const double> truth,
                           std::span<const double> predicted) {
  const double score = 1.0 - nrmse(truth, predicted);
  return std::clamp(score, 0.0, 1.0);
}

}  // namespace csm::ml
