// Synthetic sensor banks: from latent activity to monitoring metrics.
//
// A sensor bank is an ordered list of sensor specifications. Every sensor
// responds linearly to the latent channels (weights), with a baseline, an
// output scale (counters are huge, temperatures are tens of degrees),
// exponential smoothing (thermal and power sensors have inertia) and
// multiplicative Gaussian noise. Sensors of the same group share similar
// weights — giving exactly the correlated groups that the CS sorting stage
// recovers — while constant and pure-noise sensors model the uninformative
// metrics that end up in the middle of the CS permutation. Inverted sensors
// (e.g. idle %) model the negatively correlated tail.
//
// Bank layouts mirror the HPC-ODA segments: per-architecture node banks
// (52 / 46 / 39 sensors), the ETH-testbed fault node (128), the CooLMUC-3
// power node (47, including the "node_power" sensor used as the regression
// target) and the warm-water-cooled rack (31).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "hpcoda/types.hpp"

namespace csm::hpcoda {

/// Response definition of one synthetic sensor.
struct SensorSpec {
  std::string name;
  // Weights on the latent channels (may be negative for inverted metrics).
  double w_cpu = 0.0;
  double w_mem = 0.0;
  double w_cache = 0.0;
  double w_net = 0.0;
  double w_io = 0.0;
  double w_freq = 0.0;
  double bias = 0.0;    ///< Baseline before scaling (idle floor).
  double scale = 1.0;   ///< Output units (counts, Watts, degrees...).
  double noise = 0.02;  ///< Relative Gaussian noise level.
  double smooth = 1.0;  ///< EMA coefficient in (0, 1]; 1 = no smoothing.

  /// Noise-free instantaneous response to a latent state.
  double response(const LatentState& s) const noexcept {
    return bias + w_cpu * s.cpu + w_mem * s.mem + w_cache * s.cache +
           w_net * s.net + w_io * s.io + w_freq * s.freq;
  }
};

/// Node-level bank for one architecture: exactly
/// architecture_sensor_count(arch) sensors.
std::vector<SensorSpec> node_sensor_bank(Architecture arch);

/// The 128-sensor ETH-testbed node of the Fault segment.
std::vector<SensorSpec> fault_node_bank();

/// The 47-sensor CooLMUC-3 node of the Power segment (node + core level).
/// The sensor named "node_power" is the regression target's source.
std::vector<SensorSpec> power_node_bank();

/// Index of the "node_power" sensor inside power_node_bank().
std::size_t power_sensor_index();

/// The 31-sensor rack bank of the Infrastructure segment (power
/// distribution + warm-water cooling).
std::vector<SensorSpec> infrastructure_rack_bank();

/// Renders a latent trace through a bank: returns a bank.size() x
/// latents.size() sensor matrix with smoothing and noise applied. `rng`
/// drives the measurement noise.
common::Matrix render_sensors(const std::vector<SensorSpec>& bank,
                              std::span<const LatentState> latents,
                              common::Rng& rng);

/// Names of all sensors in a bank, in row order.
std::vector<std::string> sensor_names(const std::vector<SensorSpec>& bank);

}  // namespace csm::hpcoda
