#include "hpcoda/types.hpp"

#include <stdexcept>

namespace csm::hpcoda {

std::string app_name(AppId app) {
  switch (app) {
    case AppId::kIdle: return "idle";
    case AppId::kAmg: return "AMG";
    case AppId::kKripke: return "Kripke";
    case AppId::kLinpack: return "Linpack";
    case AppId::kQuicksilver: return "Quicksilver";
    case AppId::kLammps: return "LAMMPS";
    case AppId::kMiniFe: return "miniFE";
  }
  throw std::invalid_argument("app_name: unknown application");
}

std::string fault_name(FaultId fault) {
  switch (fault) {
    case FaultId::kNone: return "healthy";
    case FaultId::kLeak: return "leak";
    case FaultId::kMemEater: return "memeater";
    case FaultId::kDdot: return "ddot";
    case FaultId::kDial: return "dial";
    case FaultId::kCpuFreq: return "cpufreq";
    case FaultId::kCacheCopy: return "cachecopy";
    case FaultId::kPageFail: return "pagefail";
    case FaultId::kIoErr: return "ioerr";
  }
  throw std::invalid_argument("fault_name: unknown fault");
}

std::string architecture_name(Architecture arch) {
  switch (arch) {
    case Architecture::kSkylake: return "Skylake";
    case Architecture::kKnl: return "KnightsLanding";
    case Architecture::kRome: return "Rome";
  }
  throw std::invalid_argument("architecture_name: unknown architecture");
}

std::size_t architecture_sensor_count(Architecture arch) {
  switch (arch) {
    case Architecture::kSkylake: return 52;
    case Architecture::kKnl: return 46;
    case Architecture::kRome: return 39;
  }
  throw std::invalid_argument(
      "architecture_sensor_count: unknown architecture");
}

}  // namespace csm::hpcoda
