#include "hpcoda/segment.hpp"

namespace csm::hpcoda {

std::size_t Segment::data_points() const {
  std::size_t total = 0;
  for (const ComponentBlock& b : blocks) total += b.sensors.size();
  return total;
}

std::size_t Segment::feature_set_count() const {
  std::size_t per_block = 0;
  for (const RunInfo& run : runs) {
    const std::size_t usable_end =
        run.end > target_horizon ? run.end - target_horizon : 0;
    if (usable_end <= run.begin) continue;
    const std::size_t span = usable_end - run.begin;
    if (span >= window.length) {
      per_block += (span - window.length) / window.step + 1;
    }
  }
  return per_block * blocks.size();
}

}  // namespace csm::hpcoda
