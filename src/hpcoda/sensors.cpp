#include "hpcoda/sensors.hpp"

#include <cstdio>
#include <stdexcept>

namespace csm::hpcoda {

namespace {

// Template for a correlated sensor group; the bank builder instantiates
// `count` sensors from it with small weight jitter so that group members are
// highly but not perfectly correlated.
struct GroupTemplate {
  const char* prefix;
  std::size_t count;
  SensorSpec base;
};

std::vector<SensorSpec> build_bank(std::span<const GroupTemplate> groups,
                                   std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<SensorSpec> bank;
  char name[64];
  for (const GroupTemplate& g : groups) {
    for (std::size_t i = 0; i < g.count; ++i) {
      SensorSpec s = g.base;
      std::snprintf(name, sizeof(name), "%s_%02zu", g.prefix, i);
      s.name = name;
      // Per-sensor jitter: +-10% weight spread, +-20% scale spread.
      const double wj = 1.0 + 0.10 * rng.gaussian();
      s.w_cpu *= wj;
      s.w_mem *= 1.0 + 0.10 * rng.gaussian();
      s.w_cache *= 1.0 + 0.10 * rng.gaussian();
      s.w_net *= 1.0 + 0.10 * rng.gaussian();
      s.w_io *= 1.0 + 0.10 * rng.gaussian();
      s.w_freq *= 1.0 + 0.10 * rng.gaussian();
      s.scale *= 1.0 + 0.20 * rng.uniform();
      bank.push_back(std::move(s));
    }
  }
  return bank;
}

// Shared group templates. Scales are roughly representative of real
// monitoring metrics (instructions in millions/s, Watts, degrees C, ...).
const SensorSpec kInstr{
    {}, 0.90, 0.0, -0.10, 0.0, 0.0, 0.30, 0.02, 2.0e8, 0.03, 1.0};
const SensorSpec kCycles{
    {}, 0.25, 0.0, 0.0, 0.0, 0.0, 0.85, 0.05, 2.6e9, 0.02, 1.0};
const SensorSpec kCacheMiss{
    {}, 0.10, 0.15, 0.95, 0.0, 0.0, 0.0, 0.01, 5.0e6, 0.05, 1.0};
const SensorSpec kMemUsed{
    {}, 0.0, 0.95, 0.0, 0.0, 0.05, 0.0, 0.05, 9.6e10, 0.01, 0.35};
const SensorSpec kMemBw{
    {}, 0.15, 0.45, 0.50, 0.0, 0.0, 0.0, 0.02, 8.0e9, 0.04, 1.0};
const SensorSpec kOsCtx{
    {}, 0.30, 0.0, 0.0, 0.10, 0.60, 0.0, 0.03, 5.0e4, 0.06, 1.0};
const SensorSpec kOsLoad{
    {}, 0.90, 0.05, 0.0, 0.0, 0.10, 0.0, 0.02, 64.0, 0.02, 0.25};
const SensorSpec kNetBytes{
    {}, 0.0, 0.0, 0.0, 0.95, 0.05, 0.0, 0.01, 1.2e9, 0.05, 1.0};
const SensorSpec kPower{
    {}, 0.60, 0.12, 0.05, 0.0, 0.0, 0.28, 0.25, 400.0, 0.02, 0.5};
const SensorSpec kTemp{
    {}, 0.55, 0.05, 0.0, 0.0, 0.0, 0.20, 0.45, 55.0, 0.01, 0.08};
const SensorSpec kIdlePct{
    {}, -0.90, 0.0, 0.0, 0.0, -0.05, 0.0, 0.97, 100.0, 0.02, 1.0};
const SensorSpec kConstant{
    {}, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 42.0, 0.0, 1.0};
const SensorSpec kPureNoise{
    {}, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5, 10.0, 1.0, 1.0};
const SensorSpec kCoreFreq{
    {}, 0.05, 0.0, 0.0, 0.0, 0.0, 0.92, 0.03, 2.6e3, 0.01, 1.0};

}  // namespace

std::vector<SensorSpec> node_sensor_bank(Architecture arch) {
  switch (arch) {
    case Architecture::kSkylake: {
      const GroupTemplate groups[] = {
          {"instr", 8, kInstr},       {"cycles", 6, kCycles},
          {"cachemiss", 7, kCacheMiss}, {"memused", 6, kMemUsed},
          {"membw", 4, kMemBw},       {"osctx", 3, kOsCtx},
          {"osload", 3, kOsLoad},     {"netbytes", 4, kNetBytes},
          {"power", 3, kPower},       {"temp", 3, kTemp},
          {"idlepct", 2, kIdlePct},   {"constant", 2, kConstant},
          {"noise", 1, kPureNoise},
      };
      return build_bank(groups, 0x5ca1e001);
    }
    case Architecture::kKnl: {
      const GroupTemplate groups[] = {
          {"instr", 7, kInstr},       {"cycles", 5, kCycles},
          {"cachemiss", 6, kCacheMiss}, {"memused", 5, kMemUsed},
          {"membw", 4, kMemBw},       {"osctx", 3, kOsCtx},
          {"osload", 2, kOsLoad},     {"netbytes", 4, kNetBytes},
          {"power", 3, kPower},       {"temp", 3, kTemp},
          {"idlepct", 2, kIdlePct},   {"constant", 1, kConstant},
          {"noise", 1, kPureNoise},
      };
      return build_bank(groups, 0x4e712345);
    }
    case Architecture::kRome: {
      const GroupTemplate groups[] = {
          {"instr", 6, kInstr},       {"cycles", 4, kCycles},
          {"cachemiss", 5, kCacheMiss}, {"memused", 4, kMemUsed},
          {"membw", 3, kMemBw},       {"osctx", 3, kOsCtx},
          {"osload", 2, kOsLoad},     {"netbytes", 3, kNetBytes},
          {"power", 3, kPower},       {"temp", 2, kTemp},
          {"idlepct", 2, kIdlePct},   {"constant", 1, kConstant},
          {"noise", 1, kPureNoise},
      };
      return build_bank(groups, 0x4d20e001);
    }
  }
  throw std::invalid_argument("node_sensor_bank: unknown architecture");
}

std::vector<SensorSpec> fault_node_bank() {
  const GroupTemplate groups[] = {
      {"instr", 24, kInstr},        {"cycles", 12, kCycles},
      {"cachemiss", 18, kCacheMiss}, {"memused", 14, kMemUsed},
      {"membw", 10, kMemBw},        {"osctx", 8, kOsCtx},
      {"osload", 6, kOsLoad},       {"netbytes", 10, kNetBytes},
      {"power", 6, kPower},         {"temp", 6, kTemp},
      {"idlepct", 6, kIdlePct},     {"constant", 5, kConstant},
      {"noise", 3, kPureNoise},
  };
  return build_bank(groups, 0xfa017);
}

std::vector<SensorSpec> power_node_bank() {
  const GroupTemplate groups[] = {
      // The node-level power sensor comes first so its row index is fixed.
      {"node_power", 1, kPower},
      {"coreload", 16, kOsLoad},    {"corefreq", 8, kCoreFreq},
      {"cachemiss", 6, kCacheMiss}, {"memused", 5, kMemUsed},
      {"osctx", 4, kOsCtx},         {"pkgpower", 3, kPower},
      {"temp", 2, kTemp},           {"idlepct", 1, kIdlePct},
      {"constant", 1, kConstant},
  };
  return build_bank(groups, 0xb00b5);
}

std::size_t power_sensor_index() { return 0; }

std::vector<SensorSpec> infrastructure_rack_bank() {
  // Latent mapping at rack level: cpu = rack compute load, mem = power
  // distribution load, net = ambient drift, freq = inlet setpoint drift.
  const SensorSpec kRackPower{
      {}, 0.80, 0.15, 0.0, 0.0, 0.0, 0.0, 0.20, 3.2e4, 0.02, 0.4};
  const SensorSpec kTempOut{
      {}, 0.60, 0.05, 0.0, 0.05, 0.0, 0.30, 0.40, 50.0, 0.01, 0.06};
  const SensorSpec kTempIn{
      {}, 0.05, 0.0, 0.0, 0.05, 0.0, 0.90, 0.35, 45.0, 0.01, 0.05};
  const SensorSpec kFlow{
      {}, 0.45, 0.05, 0.0, 0.0, 0.0, -0.10, 0.45, 12.0, 0.03, 0.3};
  const SensorSpec kPump{
      {}, 0.40, 0.05, 0.0, 0.0, 0.0, 0.0, 0.35, 100.0, 0.03, 0.3};
  const SensorSpec kValve{
      {}, 0.30, 0.0, 0.0, 0.0, 0.0, 0.25, 0.40, 100.0, 0.04, 0.25};
  const SensorSpec kAmbient{
      {}, 0.0, 0.0, 0.0, 0.90, 0.0, 0.0, 0.50, 30.0, 0.01, 0.1};
  const GroupTemplate groups[] = {
      {"rackpower", 5, kRackPower}, {"tempout", 6, kTempOut},
      {"tempin", 6, kTempIn},       {"flow", 4, kFlow},
      {"pump", 4, kPump},           {"valve", 3, kValve},
      {"ambient", 2, kAmbient},     {"constant", 1, kConstant},
  };
  return build_bank(groups, 0x1f4a);
}

common::Matrix render_sensors(const std::vector<SensorSpec>& bank,
                              std::span<const LatentState> latents,
                              common::Rng& rng) {
  if (bank.empty() || latents.empty()) {
    throw std::invalid_argument("render_sensors: empty bank or trace");
  }
  common::Matrix out(bank.size(), latents.size());
  for (std::size_t r = 0; r < bank.size(); ++r) {
    const SensorSpec& spec = bank[r];
    auto row = out.row(r);
    double ema = spec.response(latents[0]);
    for (std::size_t t = 0; t < latents.size(); ++t) {
      const double raw = spec.response(latents[t]);
      ema += spec.smooth * (raw - ema);
      row[t] = spec.scale * ema * (1.0 + spec.noise * rng.gaussian());
    }
  }
  return out;
}

std::vector<std::string> sensor_names(const std::vector<SensorSpec>& bank) {
  std::vector<std::string> out;
  out.reserve(bank.size());
  for (const SensorSpec& s : bank) out.push_back(s.name);
  return out;
}

}  // namespace csm::hpcoda
