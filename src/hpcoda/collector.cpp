#include "hpcoda/collector.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace csm::hpcoda {

void CollectorOptions::validate() const {
  if (interval_ms <= 0) {
    throw std::invalid_argument("CollectorOptions: non-positive interval");
  }
  if (jitter_fraction < 0.0 || jitter_fraction > 0.4) {
    throw std::invalid_argument(
        "CollectorOptions: jitter must be in [0, 0.4] of the interval");
  }
  if (drop_probability < 0.0 || drop_probability >= 1.0) {
    throw std::invalid_argument(
        "CollectorOptions: drop probability must be in [0, 1)");
  }
  if (max_phase_ms < 0) {
    throw std::invalid_argument("CollectorOptions: negative phase");
  }
}

namespace {

// Value of the truth row at an arbitrary timestamp (linear between
// columns, clamped at the ends).
double truth_at(const common::Matrix& truth, std::size_t row, double pos) {
  if (pos <= 0.0) return truth(row, 0);
  const auto last = static_cast<double>(truth.cols() - 1);
  if (pos >= last) return truth(row, truth.cols() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  return truth(row, lo) + frac * (truth(row, lo + 1) - truth(row, lo));
}

}  // namespace

std::vector<data::TimeSeries> collect(const common::Matrix& truth,
                                      const CollectorOptions& options,
                                      common::Rng& rng,
                                      const std::vector<std::string>& names) {
  options.validate();
  if (truth.empty()) {
    throw std::invalid_argument("collect: empty truth matrix");
  }
  if (!names.empty() && names.size() != truth.rows()) {
    throw std::invalid_argument("collect: name count mismatch");
  }

  std::vector<data::TimeSeries> out;
  out.reserve(truth.rows());
  char buf[32];
  const double jitter_ms =
      options.jitter_fraction * static_cast<double>(options.interval_ms);
  for (std::size_t r = 0; r < truth.rows(); ++r) {
    data::TimeSeries series;
    if (names.empty()) {
      std::snprintf(buf, sizeof(buf), "sensor_%04zu", r);
      series.name = buf;
    } else {
      series.name = names[r];
    }
    const std::int64_t phase =
        options.max_phase_ms > 0
            ? static_cast<std::int64_t>(rng.uniform_int(
                  static_cast<std::uint64_t>(options.max_phase_ms) + 1))
            : 0;
    std::int64_t prev_ts = std::numeric_limits<std::int64_t>::min();
    for (std::size_t k = 0; k < truth.cols(); ++k) {
      if (rng.uniform() < options.drop_probability) continue;
      const double nominal =
          static_cast<double>(options.start_timestamp) +
          static_cast<double>(phase) +
          static_cast<double>(k) * static_cast<double>(options.interval_ms);
      const auto ts = static_cast<std::int64_t>(
          std::llround(nominal + jitter_ms * rng.gaussian()));
      if (ts <= prev_ts) continue;  // Keep timestamps strictly increasing.
      prev_ts = ts;
      const double grid_pos =
          (static_cast<double>(ts) -
           static_cast<double>(options.start_timestamp)) /
          static_cast<double>(options.interval_ms);
      series.samples.push_back(
          data::Sample{ts, truth_at(truth, r, grid_pos)});
    }
    if (series.samples.size() < 2) {
      throw std::runtime_error("collect: sensor '" + series.name +
                               "' lost almost all samples");
    }
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace csm::hpcoda
