// Monitoring-collector simulation: from dense truth to realistic samples.
//
// Real monitoring frameworks (DCDB, LDMS — Section II-A) poll each sensor
// on its own schedule: timestamps jitter around the nominal interval,
// samples are occasionally dropped, and sensors start with different phase
// offsets. The paper's Section III-A therefore allows an interpolation
// pre-processing step to align the data. This module simulates that
// acquisition layer: it turns a dense sensor matrix into per-sensor
// TimeSeries with jitter, phase offsets and dropouts, which data::align()
// then has to reconstruct — closing the loop between the generator and the
// alignment substrate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "data/time_series.hpp"

namespace csm::hpcoda {

/// Acquisition imperfections.
struct CollectorOptions {
  std::int64_t interval_ms = 1000;  ///< Nominal sampling interval.
  double jitter_fraction = 0.05;    ///< Timestamp jitter (stddev) as a
                                    ///< fraction of the interval.
  double drop_probability = 0.01;   ///< Chance of losing a sample.
  std::int64_t max_phase_ms = 0;    ///< Random per-sensor start offset in
                                    ///< [0, max_phase_ms].
  std::int64_t start_timestamp = 0;

  void validate() const;
};

/// Samples every row of `truth` (values at nominal grid points, linearly
/// interpolated between columns for jittered timestamps) into one
/// TimeSeries per sensor. Timestamps are strictly increasing per sensor;
/// `names` supplies sensor names (generated when empty).
std::vector<data::TimeSeries> collect(
    const common::Matrix& truth, const CollectorOptions& options,
    common::Rng& rng, const std::vector<std::string>& names = {});

}  // namespace csm::hpcoda
