#include "hpcoda/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

#include "common/rng.hpp"
#include "hpcoda/sensors.hpp"
#include "hpcoda/workload.hpp"

namespace csm::hpcoda {

namespace {

std::size_t scaled(std::size_t base, double scale) {
  if (scale <= 0.0) {
    throw std::invalid_argument("GeneratorConfig: non-positive scale");
  }
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(base) * scale));
}

/// One planned run of the shared schedule.
struct PlannedRun {
  AppId app = AppId::kIdle;
  int config = 0;
  FaultId fault = FaultId::kNone;
  int setting = 0;
  int label = 0;
  std::size_t length = 0;
};

AppId random_compute_app(common::Rng& rng) {
  // Applications 1..6 (everything except idle).
  return static_cast<AppId>(1 + rng.uniform_int(kNumApps - 1));
}

/// Concatenates the latent traces of a run plan; returns the trace and
/// fills `runs` with the resulting column ranges.
std::vector<LatentState> realize_schedule(const std::vector<PlannedRun>& plan,
                                          common::Rng& rng,
                                          std::vector<RunInfo>& runs) {
  std::vector<LatentState> trace;
  runs.clear();
  for (const PlannedRun& run : plan) {
    std::vector<LatentState> latents =
        generate_app_latents(run.app, run.config, run.length, rng);
    apply_fault(latents, run.fault, run.setting, 0, latents.size());
    const std::size_t begin = trace.size();
    trace.insert(trace.end(), latents.begin(), latents.end());
    runs.push_back(RunInfo{run.label, begin, trace.size()});
  }
  return trace;
}

}  // namespace

Segment make_fault_segment(const GeneratorConfig& config) {
  common::Rng rng(config.seed ^ 0xfa17);
  const std::size_t run_len = scaled(240, config.scale);

  // Four runs per class; fault runs alternate light/heavy settings and the
  // background application varies per run.
  std::vector<PlannedRun> plan;
  for (std::size_t cls = 0; cls < kNumFaults; ++cls) {
    for (int rep = 0; rep < 4; ++rep) {
      PlannedRun run;
      run.app = random_compute_app(rng);
      run.config = static_cast<int>(rng.uniform_int(kNumConfigs));
      run.fault = static_cast<FaultId>(cls);
      run.setting = rep % 2;
      run.label = static_cast<int>(cls);
      run.length = run_len;
      plan.push_back(run);
    }
  }
  rng.shuffle(plan);

  Segment seg;
  seg.name = "Fault";
  seg.task = data::TaskKind::kClassification;
  seg.window = data::WindowSpec{60, 10};  // 1m window, 10s step @1s.
  seg.interval_ms = 1000;
  for (std::size_t cls = 0; cls < kNumFaults; ++cls) {
    seg.class_names.push_back(fault_name(static_cast<FaultId>(cls)));
  }

  const std::vector<LatentState> trace =
      realize_schedule(plan, rng, seg.runs);
  const std::vector<SensorSpec> bank = fault_node_bank();
  ComponentBlock node;
  node.name = "node00";
  node.sensors = render_sensors(bank, trace, rng);
  node.sensor_names = sensor_names(bank);
  seg.blocks.push_back(std::move(node));
  return seg;
}

Segment make_application_segment(const GeneratorConfig& config) {
  common::Rng rng(config.seed ^ 0xa991);
  constexpr std::size_t kNodes = 16;
  const std::size_t run_len = scaled(160, config.scale);

  // Every application under every input configuration, plus idle periods.
  std::vector<PlannedRun> plan;
  for (std::size_t app = 1; app < kNumApps; ++app) {
    for (int cfg = 0; cfg < kNumConfigs; ++cfg) {
      plan.push_back(PlannedRun{static_cast<AppId>(app), cfg, FaultId::kNone,
                                0, static_cast<int>(app), run_len});
    }
  }
  for (int rep = 0; rep < 3; ++rep) {
    plan.push_back(
        PlannedRun{AppId::kIdle, 0, FaultId::kNone, 0, 0, run_len});
  }
  rng.shuffle(plan);

  Segment seg;
  seg.name = "Application";
  seg.task = data::TaskKind::kClassification;
  seg.window = data::WindowSpec{30, 5};  // 30s window, 5s step @1s.
  seg.interval_ms = 1000;
  for (std::size_t app = 0; app < kNumApps; ++app) {
    seg.class_names.push_back(app_name(static_cast<AppId>(app)));
  }

  // The MPI application drives all 16 nodes with a shared latent trace;
  // each node adds small node-local deviations before rendering, which
  // yields the strong cross-node correlations of Fig. 2.
  const std::vector<LatentState> shared =
      realize_schedule(plan, rng, seg.runs);
  const std::vector<SensorSpec> bank =
      node_sensor_bank(Architecture::kSkylake);
  char node_name[16];
  for (std::size_t node = 0; node < kNodes; ++node) {
    std::vector<LatentState> local = shared;
    const double load_offset = 0.03 * rng.gaussian();
    for (LatentState& s : local) {
      s.cpu = std::clamp(s.cpu + load_offset + 0.01 * rng.gaussian(), 0.0, 1.0);
      s.net = std::clamp(s.net + 0.01 * rng.gaussian(), 0.0, 1.0);
    }
    ComponentBlock block;
    std::snprintf(node_name, sizeof(node_name), "node%02zu", node);
    block.name = node_name;
    block.sensors = render_sensors(bank, local, rng);
    block.sensor_names = sensor_names(bank);
    seg.blocks.push_back(std::move(block));
  }
  return seg;
}

Segment make_power_segment(const GeneratorConfig& config) {
  common::Rng rng(config.seed ^ 0x90e4);
  const std::size_t run_len = scaled(250, config.scale);

  // Single-node OpenMP applications, two input configurations each.
  std::vector<PlannedRun> plan;
  for (std::size_t app = 1; app < kNumApps; ++app) {
    for (int cfg = 0; cfg < 2; ++cfg) {
      plan.push_back(PlannedRun{static_cast<AppId>(app), cfg, FaultId::kNone,
                                0, 0, run_len});
    }
  }
  rng.shuffle(plan);

  Segment seg;
  seg.name = "Power";
  seg.task = data::TaskKind::kRegression;
  seg.window = data::WindowSpec{10, 5};  // 1s window, 500ms step @100ms.
  seg.target_horizon = 3;                // ~300ms lookahead.
  seg.interval_ms = 100;

  const std::vector<LatentState> trace =
      realize_schedule(plan, rng, seg.runs);
  const std::vector<SensorSpec> bank = power_node_bank();
  ComponentBlock node;
  node.name = "node00";
  node.sensors = render_sensors(bank, trace, rng);
  node.sensor_names = sensor_names(bank);
  // The regression target is the node-level outlet power reading itself.
  const auto power_row = node.sensors.row(power_sensor_index());
  node.target.assign(power_row.begin(), power_row.end());
  seg.blocks.push_back(std::move(node));
  return seg;
}

Segment make_infrastructure_segment(const GeneratorConfig& config) {
  common::Rng rng(config.seed ^ 0x1f5a);
  constexpr std::size_t kRacks = 4;
  const std::size_t length = scaled(2200, config.scale);
  constexpr double kTwoPi = 2.0 * std::numbers::pi;

  Segment seg;
  seg.name = "Infrastructure";
  seg.task = data::TaskKind::kRegression;
  seg.window = data::WindowSpec{30, 6};  // 5m window, 1m step @10s.
  seg.target_horizon = 30;               // ~5m lookahead.
  seg.interval_ms = 10'000;
  seg.runs.push_back(RunInfo{0, 0, length});

  const std::vector<SensorSpec> bank = infrastructure_rack_bank();
  char rack_name[16];
  for (std::size_t rack = 0; rack < kRacks; ++rack) {
    // Rack-level latents: a slow facility load (diurnal-ish wave + random
    // walk + job steps), ambient drift, and an inlet setpoint drift.
    std::vector<LatentState> latents(length);
    double walk = 0.0;
    double job = 0.35 + 0.3 * rng.uniform();
    std::size_t next_job_change = 50 + rng.uniform_int(150);
    const double rack_phase = rng.uniform();
    for (std::size_t t = 0; t < length; ++t) {
      if (t >= next_job_change) {
        job = 0.15 + 0.7 * rng.uniform();  // New job mix on the rack.
        next_job_change = t + 80 + rng.uniform_int(240);
      }
      walk = std::clamp(walk + 0.004 * rng.gaussian(), -0.15, 0.15);
      const double tt = static_cast<double>(t);
      const double diurnal =
          0.12 * std::sin(kTwoPi * (tt / static_cast<double>(length) +
                                    rack_phase));
      LatentState s;
      s.cpu = std::clamp(job + diurnal + walk, 0.0, 1.0);  // Rack load.
      s.mem = std::clamp(0.5 + 0.4 * s.cpu + 0.02 * rng.gaussian(), 0.0, 1.0);
      s.net = std::clamp(
          0.5 + 0.25 * std::sin(kTwoPi * tt / 900.0 + rack_phase), 0.0, 1.0);
      s.freq = std::clamp(
          0.5 + 0.2 * std::sin(kTwoPi * tt / 1500.0 + 2.0 * rack_phase), 0.0,
          1.0);
      s.cache = 0.0;
      s.io = 0.0;
      latents[t] = s;
    }

    ComponentBlock block;
    std::snprintf(rack_name, sizeof(rack_name), "rack%zu", rack);
    block.name = rack_name;
    block.sensors = render_sensors(bank, latents, rng);
    block.sensor_names = sensor_names(bank);

    // Heat removed = mean(flow) * (mean(outlet T) - mean(inlet T)), derived
    // from the rendered sensors so the target is physically consistent with
    // what the models observe.
    block.target.assign(length, 0.0);
    std::vector<std::size_t> flow_rows, tout_rows, tin_rows;
    for (std::size_t r = 0; r < block.sensor_names.size(); ++r) {
      const std::string& n = block.sensor_names[r];
      if (n.starts_with("flow")) flow_rows.push_back(r);
      if (n.starts_with("tempout")) tout_rows.push_back(r);
      if (n.starts_with("tempin")) tin_rows.push_back(r);
    }
    for (std::size_t t = 0; t < length; ++t) {
      double flow = 0.0, tout = 0.0, tin = 0.0;
      for (std::size_t r : flow_rows) flow += block.sensors(r, t);
      for (std::size_t r : tout_rows) tout += block.sensors(r, t);
      for (std::size_t r : tin_rows) tin += block.sensors(r, t);
      flow /= static_cast<double>(flow_rows.size());
      tout /= static_cast<double>(tout_rows.size());
      tin /= static_cast<double>(tin_rows.size());
      // Specific heat constant folded into unit scale (kW-ish).
      block.target[t] = 4.186 * flow * (tout - tin);
    }
    seg.blocks.push_back(std::move(block));
  }
  return seg;
}

Segment make_cross_arch_segment(const GeneratorConfig& config) {
  common::Rng rng(config.seed ^ 0xc405);
  const std::size_t run_len = scaled(160, config.scale);

  // Six applications x three configurations, no idle class (Section IV-F).
  std::vector<PlannedRun> plan;
  for (std::size_t app = 1; app < kNumApps; ++app) {
    for (int cfg = 0; cfg < kNumConfigs; ++cfg) {
      plan.push_back(PlannedRun{static_cast<AppId>(app), cfg, FaultId::kNone,
                                0, static_cast<int>(app) - 1, run_len});
    }
  }
  rng.shuffle(plan);

  Segment seg;
  seg.name = "Cross-Architecture";
  seg.task = data::TaskKind::kClassification;
  seg.window = data::WindowSpec{30, 10};
  seg.interval_ms = 1000;
  for (std::size_t app = 1; app < kNumApps; ++app) {
    seg.class_names.push_back(app_name(static_cast<AppId>(app)));
  }

  // OpenMP runs: each node executes the same schedule independently, so the
  // latent traces differ per node while the labels align.
  constexpr Architecture kArchs[] = {Architecture::kSkylake,
                                     Architecture::kKnl, Architecture::kRome};
  bool runs_recorded = false;
  for (Architecture arch : kArchs) {
    std::vector<RunInfo> runs;
    const std::vector<LatentState> trace = realize_schedule(plan, rng, runs);
    if (!runs_recorded) {
      seg.runs = runs;
      runs_recorded = true;
    }
    const std::vector<SensorSpec> bank = node_sensor_bank(arch);
    ComponentBlock block;
    block.name = architecture_name(arch);
    block.sensors = render_sensors(bank, trace, rng);
    block.sensor_names = sensor_names(bank);
    seg.blocks.push_back(std::move(block));
  }
  return seg;
}

std::vector<Segment> make_primary_segments(const GeneratorConfig& config) {
  std::vector<Segment> out;
  out.push_back(make_fault_segment(config));
  out.push_back(make_application_segment(config));
  out.push_back(make_power_segment(config));
  out.push_back(make_infrastructure_segment(config));
  return out;
}

}  // namespace csm::hpcoda
