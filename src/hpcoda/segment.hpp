// In-memory representation of one HPC-ODA segment.
//
// A segment is a set of component blocks (compute nodes or racks), each
// holding an aligned sensor matrix over a shared timeline, plus the run
// schedule (which class was active in which column range), the windowing
// parameters of Table I and — for regression segments — a per-block target
// series with the prediction horizon of Section IV-A1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "data/dataset.hpp"
#include "data/window.hpp"

namespace csm::hpcoda {

/// One monitored component: a compute node or a rack.
struct ComponentBlock {
  std::string name;                      ///< e.g. "node03", "rack0".
  common::Matrix sensors;                ///< n x t sensor matrix.
  std::vector<std::string> sensor_names; ///< Per-row names.
  std::vector<double> target;  ///< Regression target series (may be empty).
};

/// One run in the shared schedule: class `label` active over columns
/// [begin, end).
struct RunInfo {
  int label = 0;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// A complete segment.
struct Segment {
  std::string name;
  data::TaskKind task = data::TaskKind::kClassification;
  data::WindowSpec window;            ///< wl / ws of Table I.
  std::size_t target_horizon = 0;     ///< Samples after the window averaged
                                      ///< into the regression target.
  std::int64_t interval_ms = 1000;    ///< Sampling interval.
  std::vector<ComponentBlock> blocks;
  std::vector<RunInfo> runs;          ///< Shared across blocks.
  std::vector<std::string> class_names;

  std::size_t n_blocks() const noexcept { return blocks.size(); }
  std::size_t n_sensors_per_block() const {
    return blocks.empty() ? 0 : blocks.front().sensors.rows();
  }
  std::size_t length() const {
    return blocks.empty() ? 0 : blocks.front().sensors.cols();
  }

  /// Total raw readings across all blocks (Table I "Data Points").
  std::size_t data_points() const;

  /// Number of feature sets (windows fully inside a labelled run, with room
  /// for the regression horizon) across all blocks.
  std::size_t feature_set_count() const;
};

}  // namespace csm::hpcoda
