// Builders of the five HPC-ODA segments (Section II-B, Table I).
//
// Each builder reproduces the corresponding segment's structure — component
// counts, per-component sensor counts, sampling interval, windowing (wl/ws)
// and label/target semantics — over synthetic workloads. The `scale`
// parameter multiplies run lengths so callers can trade realism for speed;
// at scale 1.0 the segments are sized to make the full evaluation harness
// run in minutes on a laptop while keeping every qualitative property the
// experiments rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hpcoda/segment.hpp"

namespace csm::hpcoda {

/// Generation parameters shared by all segments.
struct GeneratorConfig {
  double scale = 1.0;          ///< Run-length multiplier (> 0).
  std::uint64_t seed = 2021;   ///< Master seed; every segment derives its own.
};

/// Fault segment: 1 node x 128 sensors @1s; labels = healthy + 8 fault
/// types (each injected at two intensities across runs); wl=60, ws=10.
Segment make_fault_segment(const GeneratorConfig& config = {});

/// Application segment: 16 nodes x 52 sensors @1s running six MPI
/// applications (plus idle) under three configs; wl=30, ws=5.
Segment make_application_segment(const GeneratorConfig& config = {});

/// Power segment: 1 node x 47 sensors @100ms; regression on mean node power
/// over the next 3 samples; wl=10, ws=5.
Segment make_power_segment(const GeneratorConfig& config = {});

/// Infrastructure segment: 4 racks x 31 sensors @10s; regression on mean
/// heat removed over the next 30 samples; wl=30, ws=6.
Segment make_infrastructure_segment(const GeneratorConfig& config = {});

/// Cross-Architecture segment: 3 nodes (Skylake/KNL/Rome with 52/46/39
/// sensors) running the six applications in OpenMP mode; wl=30, ws=10.
Segment make_cross_arch_segment(const GeneratorConfig& config = {});

/// The four segments of Figs. 3-4 in paper order (Fault, Application,
/// Power, Infrastructure).
std::vector<Segment> make_primary_segments(const GeneratorConfig& config = {});

}  // namespace csm::hpcoda
