#include "hpcoda/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace csm::hpcoda {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

// Asymmetric sawtooth in [0, 1]: slow ramp, sharp drop — the shape of an
// iterative solver's per-iteration resource usage.
double sawtooth(double phase) {
  const double frac = phase - std::floor(phase);
  return frac;
}

// Smooth square-ish wave in [0, 1] (clipped sine), for phase-alternating
// codes.
double square_wave(double phase, double duty = 0.5) {
  const double frac = phase - std::floor(phase);
  return frac < duty ? 1.0 : 0.0;
}

}  // namespace

std::vector<LatentState> generate_app_latents(AppId app, int config,
                                              std::size_t length,
                                              common::Rng& rng) {
  if (config < 0 || config >= kNumConfigs) {
    throw std::invalid_argument("generate_app_latents: bad config");
  }
  if (length == 0) {
    throw std::invalid_argument("generate_app_latents: zero length");
  }

  // Input configurations scale the iteration period and the load level.
  const double cfg = static_cast<double>(config);
  const double period_scale = 1.0 + 0.5 * cfg;   // 1.0, 1.5, 2.0
  const double load_scale = 1.0 - 0.12 * cfg;    // 1.0, 0.88, 0.76
  const double phase0 = rng.uniform();           // Random phase per run.
  const double t_total = static_cast<double>(length);

  std::vector<LatentState> out(length);
  for (std::size_t t = 0; t < length; ++t) {
    const double tt = static_cast<double>(t);
    const double progress = tt / t_total;  // 0 -> 1 over the run.
    LatentState s;
    switch (app) {
      case AppId::kIdle: {
        s.cpu = 0.04;
        s.mem = 0.08;
        s.cache = 0.03;
        s.net = 0.02;
        s.io = 0.03;
        s.freq = 0.45;  // Deep idle clocks.
        break;
      }
      case AppId::kAmg: {
        const double iter = sawtooth(tt / (22.0 * period_scale) + phase0);
        s.cpu = load_scale * (0.62 + 0.28 * iter);
        s.mem = 0.30 + 0.55 * progress;  // Ramping memory footprint.
        s.cache = load_scale * (0.45 + 0.30 * iter);
        s.net = 0.15 + 0.45 * square_wave(tt / (22.0 * period_scale) + phase0,
                                          0.25);
        s.io = 0.05;
        s.freq = 0.97 - 0.05 * s.cpu;
        break;
      }
      case AppId::kKripke: {
        const double iter = sawtooth(tt / (16.0 * period_scale) + phase0);
        s.cpu = load_scale * (0.50 + 0.42 * iter);
        s.mem = 0.52;
        s.cache = load_scale * (0.35 + 0.45 * iter);
        s.net = 0.10 + 0.55 * square_wave(tt / (16.0 * period_scale) + phase0,
                                          0.3);
        s.io = 0.04;
        s.freq = 0.96 - 0.06 * iter;
        break;
      }
      case AppId::kLinpack: {
        const bool init = progress < 0.15;  // Pronounced initialisation.
        if (init) {
          s.cpu = 0.25;
          s.mem = 0.20 + 4.0 * progress;  // Fast fill to ~0.8.
          s.cache = 0.20;
          s.net = 0.30;
          s.io = 0.25;
        } else {
          s.cpu = load_scale * 0.95;
          s.mem = 0.85;
          s.cache = load_scale * 0.70;
          s.net = 0.25;
          s.io = 0.03;
        }
        s.freq = 0.99 - 0.04 * s.cpu;
        break;
      }
      case AppId::kQuicksilver: {
        // Light computational load but an oscillating clock induced by the
        // code mix (the pattern Section IV-E highlights).
        s.cpu = load_scale * 0.28;
        s.mem = 0.22;
        s.cache = 0.12;
        s.net = 0.12 + 0.10 * square_wave(tt / (30.0 * period_scale) + phase0);
        s.io = 0.05;
        s.freq =
            0.70 + 0.24 * std::sin(kTwoPi * (tt / (26.0 * period_scale)) +
                                   kTwoPi * phase0);
        break;
      }
      case AppId::kLammps: {
        const double wave =
            0.5 + 0.5 * std::sin(kTwoPi * (tt / (20.0 * period_scale)) +
                                 kTwoPi * phase0);
        s.cpu = load_scale * (0.55 + 0.22 * wave);
        s.mem = 0.40 + 0.06 * progress;
        s.cache = load_scale * (0.30 + 0.25 * wave);
        s.net = 0.18 + 0.30 * wave;
        s.io = 0.04;
        s.freq = 0.97 - 0.05 * wave;
        break;
      }
      case AppId::kMiniFe: {
        // Long alternation between assembly (memory) and solve (compute).
        const double phase = square_wave(tt / (60.0 * period_scale) + phase0,
                                         0.4);
        s.cpu = load_scale * (phase > 0.5 ? 0.45 : 0.85);
        s.mem = phase > 0.5 ? 0.75 : 0.50;
        s.cache = load_scale * (phase > 0.5 ? 0.30 : 0.60);
        s.net = phase > 0.5 ? 0.10 : 0.35;
        s.io = 0.05;
        s.freq = 0.97 - 0.05 * s.cpu;
        break;
      }
    }
    // Small common-mode jitter so latents are not perfectly deterministic.
    s.cpu = clamp01(s.cpu + 0.015 * rng.gaussian());
    s.mem = clamp01(s.mem + 0.010 * rng.gaussian());
    s.cache = clamp01(s.cache + 0.015 * rng.gaussian());
    s.net = clamp01(s.net + 0.015 * rng.gaussian());
    s.io = clamp01(s.io + 0.010 * rng.gaussian());
    s.freq = clamp01(s.freq + 0.008 * rng.gaussian());
    out[t] = s;
  }
  return out;
}

void apply_fault(std::vector<LatentState>& latents, FaultId fault, int setting,
                 std::size_t begin, std::size_t end) {
  if (setting < 0 || setting > 1) {
    throw std::invalid_argument("apply_fault: setting must be 0 or 1");
  }
  if (begin > end || end > latents.size()) {
    throw std::invalid_argument("apply_fault: bad sample range");
  }
  if (fault == FaultId::kNone) return;
  const double k = setting == 0 ? 0.5 : 1.0;  // Light vs heavy intensity.
  const double span = std::max<double>(1.0, static_cast<double>(end - begin));
  for (std::size_t t = begin; t < end; ++t) {
    LatentState& s = latents[t];
    const double fprog = static_cast<double>(t - begin) / span;
    switch (fault) {
      case FaultId::kNone:
        break;
      case FaultId::kLeak:
        // Slowly growing allocation that never gets freed.
        s.mem = std::min(1.0, s.mem + k * 0.6 * fprog);
        break;
      case FaultId::kMemEater:
        // Aggressive allocation bursts plus bandwidth pressure.
        s.mem = std::min(1.0, s.mem + k * 0.45);
        s.cache = std::min(1.0, s.cache + k * 0.20);
        s.cpu = std::min(1.0, s.cpu + k * 0.10);
        break;
      case FaultId::kDdot:
        // Cache-resident compute interference.
        s.cache = std::min(1.0, s.cache + k * 0.50);
        s.cpu = std::min(1.0, s.cpu + k * 0.25);
        break;
      case FaultId::kDial:
        // ALU-bound interference: compute up, everything else starved.
        s.cpu = std::min(1.0, s.cpu + k * 0.55);
        s.net = std::max(0.0, s.net - k * 0.10);
        break;
      case FaultId::kCpuFreq:
        // Clock forced down; throughput-coupled channels sag with it.
        s.freq = std::max(0.05, s.freq - k * 0.45);
        s.cpu = std::max(0.0, s.cpu - k * 0.15);
        break;
      case FaultId::kCacheCopy:
        // Copy storms trash the cache hierarchy.
        s.cache = std::min(1.0, s.cache + k * 0.60);
        s.mem = std::min(1.0, s.mem + k * 0.15);
        break;
      case FaultId::kPageFail:
        // Paging storms: OS/io activity spikes, compute stalls.
        s.io = std::min(1.0, s.io + k * 0.55);
        s.mem = std::min(1.0, s.mem + k * 0.25);
        s.cpu = std::max(0.0, s.cpu - k * 0.20);
        break;
      case FaultId::kIoErr:
        // I/O errors: retries inflate io, starving the application.
        s.io = std::min(1.0, s.io + k * 0.65);
        s.cpu = std::max(0.0, s.cpu - k * 0.10);
        break;
    }
  }
}

}  // namespace csm::hpcoda
