// Application workload profiles: latent activity traces per application.
//
// Each application is modelled after the behaviour the paper observes in its
// signature heatmaps (Section IV-E):
//   - AMG:         iterative compute with memory usage ramping over the run.
//   - Kripke:      pronounced sawtooth iterations on compute/cache/network.
//   - Linpack:     constant heavy load with a distinct initialisation phase.
//   - Quicksilver: light load but periodically oscillating CPU frequency.
//   - LAMMPS:      smooth periodic compute and communication.
//   - miniFE:      alternating assembly (memory) and solve (compute) phases.
//   - idle:        background noise only.
// Every application has three input configurations (Section II-B2) that
// scale its period, amplitude and baseline, and a per-run random phase so no
// two runs are bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "hpcoda/types.hpp"

namespace csm::hpcoda {

/// Number of input configurations per application in HPC-ODA.
inline constexpr int kNumConfigs = 3;

/// Generates `length` latent samples for one run of `app` under input
/// configuration `config` in [0, kNumConfigs). `rng` provides the run's
/// random phase and slow drift. Throws std::invalid_argument for a bad
/// config or zero length.
std::vector<LatentState> generate_app_latents(AppId app, int config,
                                              std::size_t length,
                                              common::Rng& rng);

/// Applies fault `fault` with intensity `setting` (0 = light, 1 = heavy) to
/// a latent trace in-place, over the sample range [begin, end). Models the
/// Antarex-style injectors: e.g. kLeak grows the memory channel until
/// saturation, kCpuFreq drops the clock channel, kCacheCopy raises cache
/// pressure. kNone is a no-op.
void apply_fault(std::vector<LatentState>& latents, FaultId fault, int setting,
                 std::size_t begin, std::size_t end);

}  // namespace csm::hpcoda
