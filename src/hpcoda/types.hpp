// Shared vocabulary of the synthetic HPC-ODA generator.
//
// The real HPC-ODA collection (Zenodo record 3701440) cannot be shipped, so
// the generator reproduces its *structure*: the applications of the
// Application / Cross-Architecture segments (CORAL-2-style codes), the fault
// types of the Fault segment (named after the Antarex fault injector the
// paper's segment derives from), and the three CPU architectures of the
// Cross-Architecture segment with their sensor counts (52 / 46 / 39).
#pragma once

#include <cstddef>
#include <string>

namespace csm::hpcoda {

/// Workloads of the Application and Cross-Architecture segments; kIdle is
/// the "idle operation" class.
enum class AppId {
  kIdle = 0,
  kAmg,
  kKripke,
  kLinpack,
  kQuicksilver,
  kLammps,
  kMiniFe,
};
inline constexpr std::size_t kNumApps = 7;  ///< Including idle.

/// Display name ("idle", "AMG", ...).
std::string app_name(AppId app);

/// Fault types of the Fault segment, named after the Antarex HPC fault
/// dataset injectors; kNone is healthy operation. Each fault has two
/// intensity settings (0 = light, 1 = heavy).
enum class FaultId {
  kNone = 0,
  kLeak,       ///< Memory allocation leak.
  kMemEater,   ///< Memory hog with allocation bursts.
  kDdot,       ///< Cache-intensive compute interference.
  kDial,       ///< ALU/CPU interference.
  kCpuFreq,    ///< CPU frequency reduction (throttling).
  kCacheCopy,  ///< Cache contention via copy storms.
  kPageFail,   ///< Page allocation failures / paging storms.
  kIoErr,      ///< I/O errors and stalls.
};
inline constexpr std::size_t kNumFaults = 9;  ///< Including healthy.

/// Display name ("healthy", "leak", ...).
std::string fault_name(FaultId fault);

/// Compute-node architectures of the Cross-Architecture segment.
enum class Architecture {
  kSkylake,  ///< SuperMUC-NG: Intel Skylake, 52 sensors.
  kKnl,      ///< CooLMUC-3: Intel Knights Landing, 46 sensors.
  kRome,     ///< BEAST testbed: AMD Rome, 39 sensors.
};

std::string architecture_name(Architecture arch);

/// Node-level sensor count of each architecture (Section IV-F).
std::size_t architecture_sensor_count(Architecture arch);

/// Latent activity channels driving every synthetic sensor. All channels are
/// nominally in [0, 1]; sensors mix them with per-sensor weights, scales and
/// noise, which is what creates the correlated groups the CS method exploits.
struct LatentState {
  double cpu = 0.0;    ///< Compute intensity.
  double mem = 0.0;    ///< Memory footprint / bandwidth.
  double cache = 0.0;  ///< Cache pressure.
  double net = 0.0;    ///< Network / MPI traffic.
  double io = 0.0;     ///< Filesystem and OS background activity.
  double freq = 1.0;   ///< Relative CPU clock (1 = nominal).
};

}  // namespace csm::hpcoda
