// Zero-copy, read-only view over an n_sensors x cols window of sensor data.
//
// The compute surface of core::SignatureMethod consumes windows through this
// view, so the same kernel can read either of the two layouts the library
// stores sensor data in, without assembling a temporary matrix first:
//
//  * a row-major common::Matrix block (the offline path: rows are contiguous,
//    columns are strided), or
//  * one or two contiguous column segments inside a common::RingMatrix
//    (the streaming path: each column is a contiguous slot; a window that
//    straddles the ring's wrap point splits into exactly two segments).
//
// The view never owns storage and is trivially copyable; it is valid only as
// long as the viewed Matrix / RingMatrix is alive and unmodified (for a
// RingMatrix, any push may recycle viewed slots). Callers that need an
// owning row-major copy use materialize().
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.hpp"

namespace csm::common {

/// Non-owning const view over rows x cols doubles in one of two layouts.
class MatrixView {
 public:
  /// Empty view (rows() == cols() == 0).
  MatrixView() = default;

  /// Views a row-major matrix. Implicit on purpose: every Matrix-taking
  /// compute API accepts the matrix unchanged through this conversion.
  MatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : rows_(m.rows()), cols_(m.cols()), seg0_(m.data()) {}

  /// Views `rows` x `cols` doubles of row-major storage at `data`.
  static MatrixView row_major(const double* data, std::size_t rows,
                              std::size_t cols);

  /// Views one or two contiguous column-major segments (each segment holds
  /// whole `rows`-element columns back to back; `second` may be empty).
  /// This is how RingMatrix exposes windows that straddle its wrap point.
  /// Throws std::invalid_argument if a segment size is not a multiple of
  /// `rows`, or if rows == 0 while a segment is non-empty.
  static MatrixView column_segments(std::span<const double> first,
                                    std::span<const double> second,
                                    std::size_t rows);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// True when row(r) returns a direct span (row-major backing).
  bool contiguous_rows() const noexcept { return !column_major_; }
  /// True when col(c) returns a direct span (column-segment backing).
  bool contiguous_cols() const noexcept { return column_major_; }

  /// Unchecked element access.
  double operator()(std::size_t r, std::size_t c) const noexcept {
    if (!column_major_) return seg0_[r * cols_ + c];
    return c < seg0_cols_ ? seg0_[c * rows_ + r]
                          : seg1_[(c - seg0_cols_) * rows_ + r];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  double at(std::size_t r, std::size_t c) const;

  /// Contiguous span over column `c`. Throws std::logic_error when the
  /// backing is row-major (columns are strided there); check
  /// contiguous_cols() or use copy_col().
  std::span<const double> col(std::size_t c) const;

  /// Contiguous span over row `r`. Throws std::logic_error when the backing
  /// is column segments; check contiguous_rows() or use the scratch
  /// overload.
  std::span<const double> row(std::size_t r) const;

  /// Row `r` as a contiguous span in any layout: the backing row when
  /// row-major, otherwise gathered into `scratch` (resized to cols()).
  std::span<const double> row(std::size_t r,
                              std::vector<double>& scratch) const;

  /// Copies column `c` into `out` (out.size() must equal rows()).
  void copy_col(std::size_t c, std::span<double> out) const;

  /// Number of contiguous column segments: 0 for row-major backing,
  /// otherwise 1 or 2.
  std::size_t n_col_segments() const noexcept {
    if (!column_major_) return 0;
    return seg0_cols_ < cols_ ? 2 : 1;
  }

  /// Column segment `k` as (data, first_col, n_cols): whole columns stored
  /// back to back starting at logical column first_col. k < n_col_segments().
  struct ColSegment {
    const double* data = nullptr;
    std::size_t first_col = 0;
    std::size_t n_cols = 0;
  };
  ColSegment col_segment(std::size_t k) const;

  /// Owning row-major copy — the escape hatch for consumers that genuinely
  /// need a common::Matrix.
  Matrix materialize() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  bool column_major_ = false;
  const double* seg0_ = nullptr;  ///< Row-major block, or first col segment.
  const double* seg1_ = nullptr;  ///< Second col segment (may be null).
  std::size_t seg0_cols_ = 0;     ///< Columns in seg0_ (column-major only).
};

}  // namespace csm::common
