#include "common/ring_matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace csm::common {

RingMatrix::RingMatrix(std::size_t rows, std::size_t capacity)
    : rows_(rows), capacity_(capacity), data_(rows * capacity, 0.0) {
  if (rows == 0 || capacity == 0) {
    throw std::invalid_argument("RingMatrix: zero rows or capacity");
  }
}

void RingMatrix::push(std::span<const double> column) {
  if (column.size() != rows_) {
    throw std::invalid_argument("RingMatrix::push: wrong column length");
  }
  const std::span<double> slot = push_slot();
  std::copy(column.begin(), column.end(), slot.begin());
}

std::span<double> RingMatrix::push_slot() noexcept {
  const std::size_t slot = head_;
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  if (size_ < capacity_) ++size_;
  ++pushed_;
  return {data_.data() + slot * rows_, rows_};
}

void RingMatrix::copy_latest(std::size_t n_cols, Matrix& out) const {
  if (n_cols > size_) {
    throw std::invalid_argument("RingMatrix::copy_latest: not enough columns");
  }
  if (out.rows() != rows_ || out.cols() != n_cols) {
    throw std::invalid_argument("RingMatrix::copy_latest: shape mismatch");
  }
  const std::size_t first = size_ - n_cols;
  for (std::size_t c = 0; c < n_cols; ++c) {
    const std::span<const double> src = column(first + c);
    double* dst = out.data() + c;
    for (std::size_t r = 0; r < rows_; ++r) dst[r * n_cols] = src[r];
  }
}

MatrixView RingMatrix::latest_view(std::size_t n_cols) const {
  if (n_cols > size_) {
    throw std::invalid_argument("RingMatrix::latest_view: not enough columns");
  }
  if (n_cols == 0) return MatrixView{};
  const std::size_t first = size_ - n_cols;
  const std::size_t start_slot = slot_of(first);
  const std::size_t tail = capacity_ - start_slot;  // Slots before the wrap.
  if (n_cols <= tail) {
    return MatrixView::column_segments(
        {data_.data() + start_slot * rows_, n_cols * rows_}, {}, rows_);
  }
  return MatrixView::column_segments(
      {data_.data() + start_slot * rows_, tail * rows_},
      {data_.data(), (n_cols - tail) * rows_}, rows_);
}

Matrix RingMatrix::to_matrix() const {
  Matrix out(rows_, size_);
  if (size_ > 0) copy_latest(size_, out);
  return out;
}

}  // namespace csm::common
