#include "common/rng.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

namespace csm::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  has_spare_ = false;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_spare_ = true;
  return mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  shuffle(idx);
  return idx;
}

}  // namespace csm::common
