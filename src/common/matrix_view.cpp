#include "common/matrix_view.hpp"

#include <algorithm>
#include <stdexcept>

namespace csm::common {

MatrixView MatrixView::row_major(const double* data, std::size_t rows,
                                 std::size_t cols) {
  MatrixView v;
  v.rows_ = rows;
  v.cols_ = cols;
  v.seg0_ = data;
  return v;
}

MatrixView MatrixView::column_segments(std::span<const double> first,
                                       std::span<const double> second,
                                       std::size_t rows) {
  if (rows == 0) {
    if (!first.empty() || !second.empty()) {
      throw std::invalid_argument(
          "MatrixView: zero rows with non-empty column segments");
    }
    return MatrixView{};
  }
  if (first.size() % rows != 0 || second.size() % rows != 0) {
    throw std::invalid_argument(
        "MatrixView: segment size is not a multiple of the row count");
  }
  if (first.empty() && !second.empty()) {
    // Normalise so seg0_ always holds the leading columns.
    return column_segments(second, {}, rows);
  }
  MatrixView v;
  v.rows_ = rows;
  v.column_major_ = true;
  v.seg0_ = first.data();
  v.seg0_cols_ = first.size() / rows;
  v.seg1_ = second.empty() ? nullptr : second.data();
  v.cols_ = v.seg0_cols_ + second.size() / rows;
  return v;
}

double MatrixView::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("MatrixView::at: index out of range");
  }
  return (*this)(r, c);
}

std::span<const double> MatrixView::col(std::size_t c) const {
  if (!column_major_) {
    throw std::logic_error(
        "MatrixView::col: columns are strided in a row-major view");
  }
  if (c >= cols_) throw std::out_of_range("MatrixView::col: column index");
  if (c < seg0_cols_) return {seg0_ + c * rows_, rows_};
  return {seg1_ + (c - seg0_cols_) * rows_, rows_};
}

std::span<const double> MatrixView::row(std::size_t r) const {
  if (column_major_) {
    throw std::logic_error(
        "MatrixView::row: rows are strided in a column-segment view");
  }
  if (r >= rows_) throw std::out_of_range("MatrixView::row: row index");
  return {seg0_ + r * cols_, cols_};
}

std::span<const double> MatrixView::row(std::size_t r,
                                        std::vector<double>& scratch) const {
  if (!column_major_) return row(r);
  if (r >= rows_) throw std::out_of_range("MatrixView::row: row index");
  scratch.resize(cols_);
  double* dst = scratch.data();
  for (std::size_t k = 0; k < n_col_segments(); ++k) {
    const ColSegment seg = col_segment(k);
    const double* src = seg.data + r;
    for (std::size_t c = 0; c < seg.n_cols; ++c) {
      *dst++ = *src;
      src += rows_;
    }
  }
  return scratch;
}

void MatrixView::copy_col(std::size_t c, std::span<double> out) const {
  if (out.size() != rows_) {
    throw std::invalid_argument("MatrixView::copy_col: wrong output length");
  }
  if (c >= cols_) throw std::out_of_range("MatrixView::copy_col: column");
  if (column_major_) {
    const std::span<const double> src = col(c);
    std::copy(src.begin(), src.end(), out.begin());
    return;
  }
  for (std::size_t r = 0; r < rows_; ++r) out[r] = seg0_[r * cols_ + c];
}

MatrixView::ColSegment MatrixView::col_segment(std::size_t k) const {
  if (k >= n_col_segments()) {
    throw std::out_of_range("MatrixView::col_segment: segment index");
  }
  if (k == 0) return {seg0_, 0, seg0_cols_};
  return {seg1_, seg0_cols_, cols_ - seg0_cols_};
}

Matrix MatrixView::materialize() const {
  Matrix out(rows_, cols_);
  if (empty()) return out;
  if (!column_major_) {
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::span<const double> src = row(r);
      std::copy(src.begin(), src.end(), out.row(r).begin());
    }
    return out;
  }
  for (std::size_t c = 0; c < cols_; ++c) {
    const std::span<const double> src = col(c);
    double* dst = out.data() + c;
    for (std::size_t r = 0; r < rows_; ++r) dst[r * cols_] = src[r];
  }
  return out;
}

}  // namespace csm::common
