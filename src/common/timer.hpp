// Minimal wall-clock stopwatch used by the experiment harness to report
// dataset-generation and cross-validation times (Fig. 3a) independent of
// google-benchmark.
#pragma once

#include <chrono>

namespace csm::common {

/// Steady-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace csm::common
