// Fixed-capacity ring buffer of matrix columns.
//
// Streaming consumers (core::CsStream, core::StreamEngine) keep the last
// `capacity` sensor columns of a live stream. A naive
// std::vector<std::vector<double>> history pays one heap allocation per push
// and an O(capacity) erase-front once full, which makes the per-sample cost
// grow with the history length. RingMatrix stores all columns in one
// contiguous rows x capacity block (column-major by slot) with a head index:
// pushing is an O(rows) copy into a recycled slot, no allocation and no
// shifting, so per-push cost is independent of the history length. Memory is
// bounded at exactly rows * capacity doubles for the life of the buffer.
//
// Logical column 0 is always the oldest retained column and
// size() - 1 the newest; the physical wrap-around is hidden behind
// column()/newest(). Columns are contiguous spans, so window assembly can
// copy whole columns instead of gathering element by element.
#pragma once

#include <cstddef>
#include <span>

#include "common/matrix.hpp"
#include "common/matrix_view.hpp"

namespace csm::common {

/// Ring buffer of `rows`-element columns with fixed capacity.
class RingMatrix {
 public:
  RingMatrix() = default;

  /// Creates an empty buffer for `rows` x `capacity` doubles. Throws
  /// std::invalid_argument if either dimension is zero.
  RingMatrix(std::size_t rows, std::size_t capacity);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Number of columns currently retained (<= capacity()).
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == capacity_; }
  /// Total columns ever pushed (size() until the first overwrite).
  std::size_t pushed() const noexcept { return pushed_; }

  /// Appends a copy of `column` (length must equal rows()), overwriting the
  /// oldest column when full. Never allocates.
  void push(std::span<const double> column);

  /// Advances the ring and returns a writable span over the new newest
  /// column (recycled storage, previous contents unspecified). Lets callers
  /// gather strided sources straight into the buffer without a temporary.
  std::span<double> push_slot() noexcept;

  /// View of logical column `i` (0 = oldest retained, size()-1 = newest).
  /// No bounds check; `i` must be < size().
  std::span<const double> column(std::size_t i) const noexcept {
    return {data_.data() + slot_of(i) * rows_, rows_};
  }

  /// View of the `back`-th newest column (0 = newest). `back` < size().
  std::span<const double> newest(std::size_t back = 0) const noexcept {
    return column(size_ - 1 - back);
  }

  /// Copies the newest `n_cols` logical columns into `out`, which must be a
  /// rows() x n_cols matrix; out(r, c) gets column(size()-n_cols+c)[r].
  /// Throws std::invalid_argument on shape mismatch or n_cols > size().
  void copy_latest(std::size_t n_cols, Matrix& out) const;

  /// Zero-copy view over the newest `n_cols` logical columns: one contiguous
  /// column segment, or two when the window straddles the wrap point. The
  /// view is invalidated by the next push (slots are recycled). Throws
  /// std::invalid_argument if n_cols > size().
  MatrixView latest_view(std::size_t n_cols) const;

  /// Zero-copy view over the whole retained history, oldest to newest —
  /// the view-typed counterpart of to_matrix() (e.g. for a retraining
  /// pass). Invalidated by the next push.
  MatrixView history_view() const { return latest_view(size_); }

  /// Materialises the whole retained history, oldest to newest, as a
  /// rows() x size() matrix (e.g. for a retraining pass).
  Matrix to_matrix() const;

  /// Forgets all retained columns (capacity and storage are kept).
  void clear() noexcept {
    head_ = 0;
    size_ = 0;
    pushed_ = 0;
  }

 private:
  // Physical slot of logical column i: the ring starts at `head_` once full.
  std::size_t slot_of(std::size_t i) const noexcept {
    const std::size_t start = size_ == capacity_ ? head_ : 0;
    const std::size_t s = start + i;
    return s >= capacity_ ? s - capacity_ : s;
  }

  std::size_t rows_ = 0;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  ///< Next physical slot to write.
  std::size_t size_ = 0;
  std::size_t pushed_ = 0;
  std::vector<double> data_;
};

}  // namespace csm::common
