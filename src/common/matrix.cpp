#include "common/matrix.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace csm::common {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Matrix: buffer size does not match shape");
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col: column out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = data_[r * cols_ + c];
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  if (r >= rows_) throw std::out_of_range("Matrix::set_row: row out of range");
  if (values.size() != cols_) {
    throw std::invalid_argument("Matrix::set_row: wrong length");
  }
  std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

Matrix Matrix::sub_cols(std::size_t first_col, std::size_t n_cols) const {
  if (first_col + n_cols > cols_) {
    throw std::out_of_range("Matrix::sub_cols: range out of bounds");
  }
  Matrix out(rows_, n_cols);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = data_.data() + r * cols_ + first_col;
    std::copy(src, src + n_cols, out.data() + r * n_cols);
  }
  return out;
}

Matrix Matrix::sub_rows(std::size_t first_row, std::size_t n_rows) const {
  if (first_row + n_rows > rows_) {
    throw std::out_of_range("Matrix::sub_rows: range out of bounds");
  }
  Matrix out(n_rows, cols_);
  std::copy(data_.begin() + first_row * cols_,
            data_.begin() + (first_row + n_rows) * cols_, out.data());
  return out;
}

Matrix Matrix::permute_rows(std::span<const std::size_t> perm) const {
  if (perm.size() != rows_) {
    throw std::invalid_argument("Matrix::permute_rows: wrong permutation size");
  }
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    if (perm[i] >= rows_) {
      throw std::out_of_range("Matrix::permute_rows: index out of range");
    }
    std::copy(data_.begin() + perm[i] * cols_,
              data_.begin() + (perm[i] + 1) * cols_, out.data() + i * cols_);
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = data_[r * cols_ + c];
    }
  }
  return out;
}

void Matrix::append_rows(const Matrix& other) {
  if (other.empty()) return;
  if (empty()) {
    *this = other;
    return;
  }
  if (other.cols() != cols_) {
    throw std::invalid_argument("Matrix::append_rows: column count mismatch");
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

void Matrix::append_row(std::span<const double> values) {
  if (empty() && rows_ == 0) {
    cols_ = values.size();
  } else if (values.size() != cols_) {
    throw std::invalid_argument("Matrix::append_row: wrong length");
  }
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

}  // namespace csm::common
