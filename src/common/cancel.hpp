// Cooperative cancellation for long-running work (model retrains).
//
// A CancelToken is a cheap shared handle to one atomic flag: the party that
// wants the work stopped keeps a copy and calls cancel(); the worker polls
// cancelled() at natural checkpoints (between pipeline stages, per tile of a
// kernel) and unwinds by throwing OperationCancelled. Copies share the flag,
// so a token handed into a background job stays connected to its requester.
#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>

namespace csm::common {

/// Thrown by cancellable work when its token fires. Callers that launched the
/// work treat this as "superseded", not as failure.
class OperationCancelled : public std::runtime_error {
 public:
  OperationCancelled() : std::runtime_error("operation cancelled") {}
  explicit OperationCancelled(const std::string& what)
      : std::runtime_error(what) {}
};

/// Shared cancellation flag. Copyable; all copies observe the same cancel().
/// A default-constructed token owns a fresh flag and never reports cancelled
/// until someone holding a copy fires it.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent, safe from any thread.
  void cancel() const noexcept {
    flag_->store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

  /// Checkpoint helper: unwinds with OperationCancelled once fired.
  void throw_if_cancelled() const {
    if (cancelled()) throw OperationCancelled();
  }

  /// Raw flag pointer for kernels that poll inside no-throw parallel bodies.
  /// Valid for the lifetime of any token copy sharing this flag.
  [[nodiscard]] const std::atomic<bool>* flag() const noexcept {
    return flag_.get();
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace csm::common
