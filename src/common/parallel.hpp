// Shared-memory parallel loop helpers.
//
// The hot paths of the library (pairwise correlation matrix, random-forest
// training) are embarrassingly parallel across rows / estimators. We wrap
// OpenMP behind a tiny function-object interface so that callers stay free of
// pragmas and the code still compiles (serially) without OpenMP support.
#pragma once

#include <cstddef>

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace csm::common {

/// Number of hardware threads OpenMP will use (1 when built without OpenMP).
inline int parallel_thread_count() noexcept {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Runs body(i) for every i in [0, n), potentially in parallel. The body must
/// not throw and iterations must be independent.
template <typename Body>
void parallel_for(std::size_t n, const Body& body) {
#if defined(_OPENMP)
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    body(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

/// Like parallel_for but with dynamic scheduling, for iterations with skewed
/// cost (e.g. the upper-triangular correlation loop).
template <typename Body>
void parallel_for_dynamic(std::size_t n, const Body& body) {
#if defined(_OPENMP)
#pragma omp parallel for schedule(dynamic)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    body(static_cast<std::size_t>(i));
  }
#else
  for (std::size_t i = 0; i < n; ++i) body(i);
#endif
}

}  // namespace csm::common
