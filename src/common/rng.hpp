// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible run-to-run regardless of the standard
// library, so we ship our own xoshiro256** generator seeded via splitmix64
// (the seeding procedure recommended by the xoshiro authors). The interface
// mirrors the small subset of <random> the library needs: uniform doubles,
// uniform integers, Gaussians and Fisher-Yates shuffling.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace csm::common {

/// xoshiro256** PRNG with convenience distributions. Satisfies
/// UniformRandomBitGenerator so it can also be handed to <random> adaptors.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t bound) noexcept;

  /// Standard normal via Box-Muller (cached spare value).
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const std::size_t j = uniform_int(i + 1);
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    shuffle(std::span<T>(values));
  }

  /// Returns a shuffled index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Forks an independent child generator (useful for per-thread or
  /// per-estimator streams that must not share state).
  Rng fork() noexcept { return Rng(next()); }

 private:
  std::uint64_t state_[4] = {};
  double spare_gaussian_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace csm::common
