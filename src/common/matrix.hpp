// Dense row-major matrix used throughout the library.
//
// Monitoring data is modelled, as in the paper, as a "sensor matrix" with one
// row per sensor and one column per time-stamp; most kernels therefore walk
// rows contiguously. The class is deliberately small: it owns a flat
// std::vector<double> and exposes spans over rows, which is all the CS
// pipeline, the baselines and the ML substrate need.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace csm::common {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Creates a matrix from nested initialiser lists; all rows must have the
  /// same length. Intended for tests and small fixtures.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Adopts an existing flat buffer (row-major). Throws std::invalid_argument
  /// if the buffer size does not equal rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Contiguous view over row `r`.
  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies column `c` into a fresh vector (columns are strided).
  std::vector<double> col(std::size_t c) const;

  /// Replaces row `r` with `values` (must have exactly cols() elements).
  void set_row(std::size_t r, std::span<const double> values);

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Copies the column range [first_col, first_col+n_cols) into a new matrix.
  /// This is how sliding windows (the paper's S^w sub-matrices) are cut out.
  Matrix sub_cols(std::size_t first_col, std::size_t n_cols) const;

  /// Copies the row range [first_row, first_row+n_rows) into a new matrix.
  Matrix sub_rows(std::size_t first_row, std::size_t n_rows) const;

  /// Returns a new matrix whose rows are this matrix's rows permuted so that
  /// result row i == this row perm[i]. `perm` must be a permutation of
  /// [0, rows()).
  Matrix permute_rows(std::span<const std::size_t> perm) const;

  /// Returns the transpose.
  Matrix transposed() const;

  /// Appends the rows of `other` below this matrix (column counts must match).
  void append_rows(const Matrix& other);

  /// Appends one row (must have exactly cols() elements, unless the matrix is
  /// empty, in which case the row defines the column count).
  void append_row(std::span<const double> values);

  void fill(double value) noexcept {
    for (double& v : data_) v = value;
  }

  bool operator==(const Matrix& other) const noexcept = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace csm::common
