# ctest helper: the record/replay workflow through csmcli.
#
#   stream --record -> replay --sig-out  (signatures byte-identical to the
#   live run: the recording holds exactly what the engine ingested, and the
#   replay refits the same method on the same bytes)
#
#   replay x2                            (replay is deterministic: two
#   replays of one recording produce byte-identical signature files)
#
#   replay --scenario                    (fault injection perturbs the
#   signatures; the clean recording on disk is untouched)
#
# plus a corrupt-fixture check that a wrong-magic file is rejected with the
# error named. Window/step are passed explicitly everywhere: `stream`
# defaults to the segment's wl/ws while `replay` defaults to 60/10, and
# byte-identity needs both engines configured alike. Run with:
#   cmake -DCSMCLI=... -DWORK_DIR=... -P record_replay.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# run_step(<label> zero|nonzero <expected-output-regex> <command...>)
function(run_step label expect_rc expect_out)
  execute_process(
    COMMAND ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  string(APPEND out "${err}")
  if(expect_rc STREQUAL "zero" AND NOT rc EQUAL 0)
    message(FATAL_ERROR "${label}: expected success, got ${rc}:\n${out}")
  endif()
  if(expect_rc STREQUAL "nonzero" AND rc EQUAL 0)
    message(FATAL_ERROR "${label}: expected failure, got exit 0:\n${out}")
  endif()
  if(NOT expect_out STREQUAL "" AND NOT out MATCHES "${expect_out}")
    message(FATAL_ERROR
      "${label}: output does not match \"${expect_out}\":\n${out}")
  endif()
endfunction()

function(require_identical label a b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label}: ${a} and ${b} differ")
  endif()
endfunction()

function(require_different label a b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE rc)
  if(rc EQUAL 0)
    message(FATAL_ERROR "${label}: ${a} and ${b} are identical")
  endif()
endfunction()

set(flags --scale 0.2 --window 60 --step 10 --history 256)

# Live run, tapped: the capture holds exactly what the engine ingested.
run_step(stream_record zero "recorded [0-9]+ batches"
  "${CSMCLI}" stream fault ${flags}
  --record "${WORK_DIR}/capture.csmr" --sig-out "${WORK_DIR}/live.sigs")

# Replaying the capture with the same engine flags refits the same method
# on the same bytes: the signature stream must match the live run exactly.
run_step(replay_capture zero "recording .*: [0-9]+ nodes, [0-9]+ batches"
  "${CSMCLI}" replay "${WORK_DIR}/capture.csmr" ${flags}
  --sig-out "${WORK_DIR}/replay.sigs")
require_identical(live_vs_replay
  "${WORK_DIR}/live.sigs" "${WORK_DIR}/replay.sigs")

# Replay determinism: a second replay is byte-identical to the first.
run_step(replay_again zero ""
  "${CSMCLI}" replay "${WORK_DIR}/capture.csmr" ${flags}
  --sig-out "${WORK_DIR}/replay2.sigs")
require_identical(replay_determinism
  "${WORK_DIR}/replay.sigs" "${WORK_DIR}/replay2.sigs")

# The standalone recorder writes the same batches `stream` would ingest.
run_step(record_segment zero "recorded [0-9]+ nodes x [0-9]+ samples"
  "${CSMCLI}" record fault "${WORK_DIR}/offline.csmr"
  --scale 0.2 --batch 256)
require_identical(offline_capture_matches_tap
  "${WORK_DIR}/capture.csmr" "${WORK_DIR}/offline.csmr")

# Scenario replay mutates the stream on the way in (the recording on disk
# is untouched), so the signatures must diverge from the clean replay.
run_step(replay_scenario zero "scenario: drift:at=500"
  "${CSMCLI}" replay "${WORK_DIR}/capture.csmr" ${flags}
  --scenario "drift:at=500,mix=0.6,gain=1.6" --seed 7
  --sig-out "${WORK_DIR}/faulted.sigs")
require_different(scenario_perturbs_signatures
  "${WORK_DIR}/replay.sigs" "${WORK_DIR}/faulted.sigs")
file(SIZE "${WORK_DIR}/capture.csmr" size_after)

# Drift-triggered retrain over the faulted replay still completes and
# reports the detector counters.
run_step(replay_ondrift zero
  "drift detector: [0-9]+ windows scored, [0-9]+ flagged, [0-9]+ drift retrains"
  "${CSMCLI}" replay "${WORK_DIR}/capture.csmr" ${flags}
  --scenario "drift:at=500,mix=0.6,gain=1.6" --seed 7
  --drift-threshold 0.5 --drift-patience 3)

# Corrupt-fixture rejection at the CLI level (bitflip/truncation CRC paths
# are pinned byte-precisely in tests/replay/recording_test.cpp and the
# fuzz/regressions/recording corpus; here the fixture must be writable from
# CMake, so it is a wrong-magic file and the named error is the contract).
file(WRITE "${WORK_DIR}/bad_magic.csmr" "XSMR-not-a-recording")
run_step(corrupt_magic_rejected nonzero "not a CSMR recording"
  "${CSMCLI}" replay "${WORK_DIR}/bad_magic.csmr" ${flags})

message(STATUS "record/replay round trip clean (capture ${size_after} bytes)")
