// benchdiff — compare two csm-bench-v1 result files (see src/benchkit/).
//
//   benchdiff <baseline.json> <current.json> [--metric M]
//             [--threshold-pct X] [--fail-on-missing]
//
// Matches cases by name and compares one metric per case: a top-level
// timing field ("wall_seconds" — the default —, "cpu_seconds",
// "items_per_sec") or a driver metric addressed as "metrics.<key>"
// (e.g. "metrics.ml_score"). "*_seconds" metrics treat larger as worse,
// everything else treats smaller as worse. Cases only present in the
// baseline are reported as MISSING (a rename shows up as MISSING + new).
//
// Exit status: 0 = clean, 1 = regression beyond --threshold-pct (or a
// MISSING case under --fail-on-missing), 2 = usage or I/O errors.
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchkit/args.hpp"
#include "benchkit/diff.hpp"
#include "benchkit/json.hpp"

namespace {

using namespace csm;

void usage(std::ostream& out) {
  out << "usage: benchdiff <baseline.json> <current.json>\n"
         "                 [--metric M] [--threshold-pct X] "
         "[--fail-on-missing]\n"
         "\n"
         "  --metric M         wall_seconds (default), cpu_seconds,\n"
         "                     items_per_sec, or metrics.<key>\n"
         "  --threshold-pct X  relative worsening that counts as a\n"
         "                     regression (default 30)\n"
         "  --fail-on-missing  exit non-zero when a baseline case is\n"
         "                     missing from the current file\n";
}

benchkit::Json load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return benchkit::Json::parse(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  benchkit::DiffOptions opts;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&](const char* flag) -> std::string {
        if (i + 1 >= argc) {
          throw std::invalid_argument(std::string(flag) + ": missing value");
        }
        return argv[++i];
      };
      if (arg == "--help" || arg == "-h") {
        usage(std::cout);
        return 0;
      } else if (arg == "--metric") {
        opts.metric = value("--metric");
      } else if (arg == "--threshold-pct") {
        opts.threshold_pct =
            benchkit::parse_double("--threshold-pct", value("--threshold-pct"));
        if (opts.threshold_pct < 0.0) {
          throw std::invalid_argument("--threshold-pct: must be >= 0");
        }
      } else if (arg == "--fail-on-missing") {
        opts.fail_on_missing = true;
      } else if (!arg.empty() && arg.front() == '-') {
        throw std::invalid_argument("unknown flag: " + arg);
      } else {
        files.push_back(arg);
      }
    }
    if (files.size() != 2) {
      throw std::invalid_argument(
          "expected exactly two positional arguments (baseline, current)");
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usage(std::cerr);
    return 2;
  }

  try {
    const benchkit::Json baseline = load(files[0]);
    const benchkit::Json current = load(files[1]);
    const benchkit::DiffReport report =
        benchkit::diff_results(baseline, current, opts);
    std::cout << report.format();
    if (report.failed(opts)) {
      std::cout << "benchdiff: FAIL (threshold " << opts.threshold_pct
                << "% on " << opts.metric << ")\n";
      return 1;
    }
    std::cout << "benchdiff: OK\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
}
