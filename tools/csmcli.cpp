// csmcli — command-line front-end to the CS library.
//
// Lets operators run the full offline workflow from a shell, against sensor
// data in the HPC-ODA on-disk layout (a directory of per-sensor
// "timestamp,value" CSVs):
//
//   csmcli train   <sensor_dir> <model_file> [--interval MS]
//       Align the sensors and train a CS model (Algorithm 1 + bounds).
//
//   csmcli info    <model_file>
//       Print a model summary: sensor count, permutation, bounds.
//
//   csmcli extract <sensor_dir> <model_file> <out_csv>
//           [--blocks L] [--window WL] [--step WS] [--interval MS]
//           [--real-only]
//       Compute signatures over sliding windows and write them as a
//       feature CSV (label column fixed to 0; relabel downstream).
//
//   csmcli sort    <sensor_dir> <model_file> <out_pgm> [--interval MS]
//       Render the sorted (normalised + permuted) matrix as a PGM image.
//
//   csmcli stream  <segment> [--scale S] [--blocks L] [--window WL]
//           [--step WS] [--history H] [--retrain N] [--batch B]
//       Replay a synthetic HPC-ODA segment (fault, application, power,
//       infrastructure, cross-arch) through a StreamEngine — one CsStream
//       per component — in batches of B columns, and report per-node
//       signature counts plus aggregate ingestion throughput.
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime failures.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/stream_engine.hpp"
#include "core/training.hpp"
#include "data/alignment.hpp"
#include "data/csv.hpp"
#include "data/feature_csv.hpp"
#include "harness/heatmap.hpp"
#include "hpcoda/generator.hpp"

namespace {

using namespace csm;

struct Options {
  std::vector<std::string> positional;
  std::int64_t interval_ms = 0;  // 0 = auto.
  std::size_t blocks = 20;
  std::size_t window = 60;
  std::size_t step = 10;
  bool window_set = false;  // Whether --window/--step were given explicitly
  bool step_set = false;    // (stream uses the segment's wl/ws otherwise).
  bool real_only = false;
  double scale = 1.0;
  std::size_t history = 1024;
  std::size_t retrain = 0;
  std::size_t batch = 256;
};

void usage() {
  std::cerr << "usage:\n"
            << "  csmcli train   <sensor_dir> <model_file> [--interval MS]\n"
            << "  csmcli info    <model_file>\n"
            << "  csmcli extract <sensor_dir> <model_file> <out_csv>\n"
            << "                 [--blocks L] [--window WL] [--step WS]\n"
            << "                 [--interval MS] [--real-only]\n"
            << "  csmcli sort    <sensor_dir> <model_file> <out_pgm>"
            << " [--interval MS]\n"
            << "  csmcli stream  <segment> [--scale S] [--blocks L]\n"
            << "                 [--window WL] [--step WS] [--history H]\n"
            << "                 [--retrain N] [--batch B]\n"
            << "                 (segment: fault | application | power |\n"
            << "                  infrastructure | cross-arch)\n";
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--interval") {
      const char* v = next_value();
      if (!v) return false;
      opts.interval_ms = std::atoll(v);
    } else if (arg == "--blocks") {
      const char* v = next_value();
      if (!v) return false;
      opts.blocks = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--window") {
      const char* v = next_value();
      if (!v) return false;
      opts.window = static_cast<std::size_t>(std::atoll(v));
      opts.window_set = true;
    } else if (arg == "--step") {
      const char* v = next_value();
      if (!v) return false;
      opts.step = static_cast<std::size_t>(std::atoll(v));
      opts.step_set = true;
    } else if (arg == "--scale") {
      const char* v = next_value();
      if (!v) return false;
      opts.scale = std::atof(v);
    } else if (arg == "--history") {
      const char* v = next_value();
      if (!v) return false;
      opts.history = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--retrain") {
      const char* v = next_value();
      if (!v) return false;
      opts.retrain = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--batch") {
      const char* v = next_value();
      if (!v) return false;
      opts.batch = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--real-only") {
      opts.real_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      return false;
    } else {
      opts.positional.push_back(arg);
    }
  }
  return true;
}

data::AlignedSensors load_aligned(const std::string& dir,
                                  std::int64_t interval_ms) {
  const auto series = data::read_sensor_dir(dir);
  return interval_ms > 0 ? data::align(series, interval_ms)
                         : data::align_auto(series);
}

int cmd_train(const Options& opts) {
  if (opts.positional.size() != 2) {
    usage();
    return 1;
  }
  const data::AlignedSensors aligned =
      load_aligned(opts.positional[0], opts.interval_ms);
  std::cout << "aligned " << aligned.matrix.rows() << " sensors x "
            << aligned.matrix.cols() << " samples (interval "
            << aligned.interval_ms << " ms)\n";
  const core::CsModel model = core::train(aligned.matrix);
  model.save(opts.positional[1]);
  std::cout << "model written to " << opts.positional[1] << '\n';
  return 0;
}

int cmd_info(const Options& opts) {
  if (opts.positional.size() != 1) {
    usage();
    return 1;
  }
  const core::CsModel model = core::CsModel::load(opts.positional[0]);
  std::cout << "sensors: " << model.n_sensors() << "\npermutation:";
  for (std::size_t idx : model.permutation()) std::cout << ' ' << idx;
  std::cout << "\nbounds:\n";
  for (std::size_t i = 0; i < model.n_sensors(); ++i) {
    std::cout << "  row " << i << ": [" << model.bounds()[i].lo << ", "
              << model.bounds()[i].hi << "]\n";
  }
  return 0;
}

int cmd_extract(const Options& opts) {
  if (opts.positional.size() != 3) {
    usage();
    return 1;
  }
  const data::AlignedSensors aligned =
      load_aligned(opts.positional[0], opts.interval_ms);
  const core::CsModel model = core::CsModel::load(opts.positional[1]);
  const core::CsPipeline pipeline(
      model, core::CsOptions{opts.blocks, opts.real_only});
  const auto sigs = pipeline.transform(
      aligned.matrix, data::WindowSpec{opts.window, opts.step});
  if (sigs.empty()) {
    std::cerr << "no complete windows (have " << aligned.matrix.cols()
              << " samples, window is " << opts.window << ")\n";
    return 2;
  }
  data::Dataset ds;
  for (const core::Signature& sig : sigs) {
    ds.features.append_row(sig.flatten(opts.real_only));
    ds.labels.push_back(0);
  }
  data::write_feature_csv(opts.positional[2], ds);
  std::cout << "wrote " << ds.size() << " signatures of length "
            << ds.feature_length() << " to " << opts.positional[2] << '\n';
  return 0;
}

int cmd_sort(const Options& opts) {
  if (opts.positional.size() != 3) {
    usage();
    return 1;
  }
  const data::AlignedSensors aligned =
      load_aligned(opts.positional[0], opts.interval_ms);
  const core::CsModel model = core::CsModel::load(opts.positional[1]);
  harness::write_pgm(opts.positional[2], model.sort(aligned.matrix));
  std::cout << "wrote sorted heatmap (" << aligned.matrix.rows() << " x "
            << aligned.matrix.cols() << ") to " << opts.positional[2]
            << '\n';
  return 0;
}

hpcoda::Segment make_segment(const std::string& name, double scale) {
  hpcoda::GeneratorConfig config;
  config.scale = scale;
  if (name == "fault") return hpcoda::make_fault_segment(config);
  if (name == "application") return hpcoda::make_application_segment(config);
  if (name == "power") return hpcoda::make_power_segment(config);
  if (name == "infrastructure") {
    return hpcoda::make_infrastructure_segment(config);
  }
  if (name == "cross-arch") return hpcoda::make_cross_arch_segment(config);
  throw std::runtime_error("unknown segment: " + name);
}

int cmd_stream(const Options& opts) {
  if (opts.positional.size() != 1) {
    usage();
    return 1;
  }
  const hpcoda::Segment seg = make_segment(opts.positional[0], opts.scale);

  core::StreamOptions stream_opts;
  stream_opts.window_length = opts.window_set ? opts.window : seg.window.length;
  stream_opts.window_step = opts.step_set ? opts.step : seg.window.step;
  stream_opts.cs.blocks = opts.blocks;
  stream_opts.cs.real_only = opts.real_only;
  stream_opts.history_length = opts.history;
  stream_opts.retrain_interval = opts.retrain;

  std::cout << "segment " << seg.name << ": " << seg.n_blocks()
            << " components, " << seg.length() << " samples @"
            << seg.interval_ms << " ms (wl=" << stream_opts.window_length
            << ", ws=" << stream_opts.window_step << ", history="
            << stream_opts.history_length << ")\n";

  // One stream per component, each with a model trained on its own sensors
  // — the per-node out-of-band training pass of Fig. 1.
  core::StreamEngine engine(stream_opts);
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    engine.add_node(block.name, core::train(block.sensors));
  }

  // Replay the shared timeline in batches of --batch columns, the way a
  // monitoring bus delivers one flush per node per collection round.
  const std::size_t batch = opts.batch == 0 ? seg.length() : opts.batch;
  std::vector<common::Matrix> batches(seg.n_blocks());
  for (std::size_t start = 0; start < seg.length(); start += batch) {
    const std::size_t len = std::min(batch, seg.length() - start);
    for (std::size_t b = 0; b < seg.n_blocks(); ++b) {
      batches[b] = seg.blocks[b].sensors.sub_cols(start, len);
    }
    engine.ingest_batch(batches);
  }

  for (std::size_t b = 0; b < engine.n_nodes(); ++b) {
    std::printf("  %-12s %6zu signatures (%zu retrains)\n",
                engine.node_name(b).c_str(), engine.pending(b),
                engine.stream(b).retrain_count());
  }
  const core::EngineStats stats = engine.stats();
  std::printf("ingested %llu samples -> %llu signatures in %.3f s "
              "(%.0f samples/s aggregate)\n",
              static_cast<unsigned long long>(stats.samples),
              static_cast<unsigned long long>(stats.signatures),
              stats.ingest_seconds, stats.samples_per_second());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "train") return cmd_train(opts);
    if (command == "info") return cmd_info(opts);
    if (command == "extract") return cmd_extract(opts);
    if (command == "sort") return cmd_sort(opts);
    if (command == "stream") return cmd_stream(opts);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  std::cerr << "unknown command: " << command << '\n';
  usage();
  return 1;
}
