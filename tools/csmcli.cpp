// csmcli — command-line front-end to the CS library.
//
// Lets operators run the full offline workflow from a shell, against sensor
// data in the HPC-ODA on-disk layout (a directory of per-sensor
// "timestamp,value" CSVs). Any registered signature method can be selected
// with --method SPEC (spec strings such as "cs:blocks=20,real-only",
// "tuncer" or "pca:components=8"; run `csmcli methods` for the registry):
//
//   csmcli methods
//       List the registered signature methods and their spec grammar.
//
//   csmcli train   <sensor_dir> <model_file> [--interval MS] [--method SPEC]
//       Align the sensors and fit a method on them. Without --method this
//       writes the legacy bare CsModel blob (Algorithm 1 + bounds); with
//       --method it writes the tagged method format, which every other
//       subcommand also accepts.
//
//   csmcli info    <model_file>
//       Print a model summary (works on both file formats).
//
//   csmcli extract <sensor_dir> <model_file> <out_csv>
//           [--blocks L] [--window WL] [--step WS] [--interval MS]
//           [--real-only]
//   csmcli extract <sensor_dir> <out_csv> --method SPEC
//           [--window WL] [--step WS] [--interval MS]
//       Compute signatures over sliding windows and write them as a
//       feature CSV (label column fixed to 0; relabel downstream). The
//       two-positional form fits the spec'd method on the extraction data
//       itself (self-trained in-band mode); the three-positional form uses
//       a previously trained model file.
//
//   csmcli sort    <sensor_dir> <model_file> <out_pgm> [--interval MS]
//       Render the sorted (normalised + permuted) matrix as a PGM image
//       (requires a CS model).
//
//   csmcli stream  <segment> [--method SPEC] [--scale S] [--blocks L]
//           [--window WL] [--step WS] [--history H] [--retrain N]
//           [--batch B]
//       Replay a synthetic HPC-ODA segment (fault, application, power,
//       infrastructure, cross-arch) through a StreamEngine — one
//       MethodStream per component, fitted per node — in batches of B
//       columns, and report per-node signature counts plus aggregate
//       ingestion throughput.
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime failures.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "baselines/registry.hpp"
#include "benchkit/args.hpp"
#include "core/method_registry.hpp"
#include "core/pipeline.hpp"
#include "core/stream_engine.hpp"
#include "core/training.hpp"
#include "data/alignment.hpp"
#include "data/csv.hpp"
#include "data/feature_csv.hpp"
#include "harness/heatmap.hpp"
#include "hpcoda/generator.hpp"

namespace {

using namespace csm;

struct Options {
  std::vector<std::string> positional;
  std::string method;            // --method SPEC ("" = legacy CS behaviour).
  std::int64_t interval_ms = 0;  // 0 = auto.
  std::size_t blocks = 20;
  std::size_t window = 60;
  std::size_t step = 10;
  bool blocks_set = false;  // Whether the flag was given explicitly (CS
  bool window_set = false;  // flags conflict with --method; stream uses the
  bool step_set = false;    // segment's wl/ws unless --window/--step given).
  bool real_only = false;
  double scale = 1.0;
  std::size_t history = 1024;
  std::size_t retrain = 0;
  std::size_t batch = 256;
};

void usage(std::ostream& out) {
  out << "usage:\n"
      << "  csmcli methods\n"
      << "  csmcli train   <sensor_dir> <model_file> [--interval MS]\n"
      << "                 [--method SPEC]\n"
      << "  csmcli info    <model_file>\n"
      << "  csmcli extract <sensor_dir> <model_file> <out_csv>\n"
      << "                 [--blocks L] [--window WL] [--step WS]\n"
      << "                 [--interval MS] [--real-only]\n"
      << "  csmcli extract <sensor_dir> <out_csv> --method SPEC\n"
      << "                 [--window WL] [--step WS] [--interval MS]\n"
      << "  csmcli sort    <sensor_dir> <model_file> <out_pgm>"
      << " [--interval MS]\n"
      << "  csmcli stream  <segment> [--method SPEC] [--scale S]\n"
      << "                 [--blocks L] [--window WL] [--step WS]\n"
      << "                 [--history H] [--retrain N] [--batch B]\n"
      << "                 (segment: fault | application | power |\n"
      << "                  infrastructure | cross-arch)\n"
      << "\n"
      << "method specs look like \"cs:blocks=20,real-only\" or\n"
      << "\"pca:components=8\"; run `csmcli methods` for the full list.\n";
}

// Numeric options go through benchkit's checked parsers: the whole value
// must parse ("--blocks 20x" is an error naming the flag, not a silent 20).
// Throws std::invalid_argument on malformed values and missing values.
bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(flag) + ": missing value");
      }
      return argv[++i];
    };
    if (arg == "--interval") {
      opts.interval_ms =
          benchkit::parse_int64("--interval", next_value("--interval"));
    } else if (arg == "--method") {
      opts.method = next_value("--method");
    } else if (arg == "--blocks") {
      opts.blocks = benchkit::parse_size_t("--blocks", next_value("--blocks"));
      opts.blocks_set = true;
    } else if (arg == "--window") {
      opts.window = benchkit::parse_size_t("--window", next_value("--window"));
      opts.window_set = true;
    } else if (arg == "--step") {
      opts.step = benchkit::parse_size_t("--step", next_value("--step"));
      opts.step_set = true;
    } else if (arg == "--scale") {
      opts.scale = benchkit::parse_double("--scale", next_value("--scale"));
    } else if (arg == "--history") {
      opts.history =
          benchkit::parse_size_t("--history", next_value("--history"));
    } else if (arg == "--retrain") {
      opts.retrain =
          benchkit::parse_size_t("--retrain", next_value("--retrain"));
    } else if (arg == "--batch") {
      opts.batch = benchkit::parse_size_t("--batch", next_value("--batch"));
    } else if (arg == "--real-only") {
      opts.real_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << '\n';
      return false;
    } else {
      opts.positional.push_back(arg);
    }
  }
  // The legacy CS flags configure the default CS path only; silently
  // ignoring them next to a --method spec would build a different model
  // than the flags suggest.
  if (!opts.method.empty() && (opts.blocks_set || opts.real_only)) {
    std::cerr << "--blocks/--real-only conflict with --method; put the "
                 "parameters in the spec instead (e.g. --method "
                 "cs:blocks=10,real-only)\n";
    return false;
  }
  return true;
}

data::AlignedSensors load_aligned(const std::string& dir,
                                  std::int64_t interval_ms) {
  const auto series = data::read_sensor_dir(dir);
  return interval_ms > 0 ? data::align(series, interval_ms)
                         : data::align_auto(series);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A model file is either a tagged method ("csmethod v1 ...") or a legacy
// bare CsModel blob ("csmodel v1 ...").
using LoadedModel = std::variant<std::unique_ptr<core::SignatureMethod>,
                                 core::CsModel>;

LoadedModel load_any_model(const std::string& path) {
  const std::string text = read_file(path);
  if (core::is_tagged_method(text)) {
    return baselines::default_registry().deserialize(text);
  }
  return core::CsModel::deserialize(text);
}

int cmd_methods(const Options& opts) {
  if (!opts.positional.empty()) {
    usage(std::cerr);
    return 1;
  }
  std::printf("%-24s %s\n", "SPEC", "DESCRIPTION");
  for (const auto& entry : baselines::default_registry().entries()) {
    std::printf("%-24s %s\n", entry.grammar.c_str(), entry.summary.c_str());
  }
  return 0;
}

int cmd_train(const Options& opts) {
  if (opts.positional.size() != 2) {
    usage(std::cerr);
    return 1;
  }
  const data::AlignedSensors aligned =
      load_aligned(opts.positional[0], opts.interval_ms);
  std::cout << "aligned " << aligned.matrix.rows() << " sensors x "
            << aligned.matrix.cols() << " samples (interval "
            << aligned.interval_ms << " ms)\n";
  if (opts.method.empty()) {
    // Legacy format: a bare CsModel blob readable by older tooling.
    const core::CsModel model = core::train(aligned.matrix);
    model.save(opts.positional[1]);
    std::cout << "model written to " << opts.positional[1] << '\n';
  } else {
    const auto method = baselines::default_registry()
                            .create(opts.method)
                            ->fit(aligned.matrix);
    core::save_method(*method, opts.positional[1]);
    std::cout << method->name() << " model written to " << opts.positional[1]
              << '\n';
  }
  return 0;
}

int cmd_info(const Options& opts) {
  if (opts.positional.size() != 1) {
    usage(std::cerr);
    return 1;
  }
  const LoadedModel loaded = load_any_model(opts.positional[0]);
  if (const auto* method =
          std::get_if<std::unique_ptr<core::SignatureMethod>>(&loaded)) {
    const std::size_t n = (*method)->n_sensors();
    std::cout << "method: " << (*method)->name() << "\nsensors: "
              << (n == 0 ? std::string("any") : std::to_string(n))
              << "\nsignature length: ";
    if (n == 0) {
      // Sensor-count-agnostic method: quote the per-sensor scaling instead
      // of a meaningless length for n = 0.
      std::cout << (*method)->signature_length(1) << " per sensor\n";
    } else {
      std::cout << (*method)->signature_length(n) << '\n';
    }
    return 0;
  }
  const core::CsModel& model = std::get<core::CsModel>(loaded);
  std::cout << "sensors: " << model.n_sensors() << "\npermutation:";
  for (std::size_t idx : model.permutation()) std::cout << ' ' << idx;
  std::cout << "\nbounds:\n";
  for (std::size_t i = 0; i < model.n_sensors(); ++i) {
    std::cout << "  row " << i << ": [" << model.bounds()[i].lo << ", "
              << model.bounds()[i].hi << "]\n";
  }
  return 0;
}

int write_window_features(const core::SignatureMethod& method,
                          const common::Matrix& sensors,
                          const data::WindowSpec& spec,
                          const std::string& out_csv) {
  spec.validate();
  if (sensors.cols() < spec.length) {
    std::cerr << "no complete windows (have " << sensors.cols()
              << " samples, window is " << spec.length << ")\n";
    return 2;
  }
  data::Dataset ds;
  const std::size_t n_windows = spec.count(sensors.cols());
  for (std::size_t w = 0; w < n_windows; ++w) {
    const std::size_t start = spec.start(w);
    const common::Matrix window = sensors.sub_cols(start, spec.length);
    // Seed the method with the preceding column where one exists, so CS
    // derivative channels match the legacy full-matrix transform (and the
    // streaming path) instead of resetting at every window boundary.
    if (start > 0) {
      const common::Matrix prev = sensors.sub_cols(start - 1, 1);
      ds.features.append_row(method.compute_streaming(window, &prev));
    } else {
      ds.features.append_row(method.compute_streaming(window, nullptr));
    }
    ds.labels.push_back(0);
  }
  data::write_feature_csv(out_csv, ds);
  std::cout << "wrote " << ds.size() << " " << method.name()
            << " signatures of length " << ds.feature_length() << " to "
            << out_csv << '\n';
  return 0;
}

int cmd_extract(const Options& opts) {
  const data::WindowSpec spec{opts.window, opts.step};
  if (!opts.method.empty()) {
    // Self-trained form: fit the spec'd method on the extraction data.
    if (opts.positional.size() != 2) {
      usage(std::cerr);
      return 1;
    }
    const data::AlignedSensors aligned =
        load_aligned(opts.positional[0], opts.interval_ms);
    const auto method = baselines::default_registry()
                            .create(opts.method)
                            ->fit(aligned.matrix);
    return write_window_features(*method, aligned.matrix, spec,
                                 opts.positional[1]);
  }

  if (opts.positional.size() != 3) {
    usage(std::cerr);
    return 1;
  }
  const data::AlignedSensors aligned =
      load_aligned(opts.positional[0], opts.interval_ms);
  const LoadedModel loaded = load_any_model(opts.positional[1]);
  if (const auto* method =
          std::get_if<std::unique_ptr<core::SignatureMethod>>(&loaded)) {
    if (opts.blocks_set || opts.real_only) {
      std::cerr << "--blocks/--real-only have no effect on a tagged method "
                   "model (" << (*method)->name()
                << " carries its own options); retrain with --method to "
                   "change them\n";
      return 1;
    }
    return write_window_features(**method, aligned.matrix, spec,
                                 opts.positional[2]);
  }

  // Legacy CsModel path: batch transform over shared buffers.
  const core::CsPipeline pipeline(
      std::get<core::CsModel>(loaded),
      core::CsOptions{opts.blocks, opts.real_only});
  const auto sigs = pipeline.transform(aligned.matrix, spec);
  if (sigs.empty()) {
    std::cerr << "no complete windows (have " << aligned.matrix.cols()
              << " samples, window is " << opts.window << ")\n";
    return 2;
  }
  data::Dataset ds;
  for (const core::Signature& sig : sigs) {
    ds.features.append_row(sig.flatten(opts.real_only));
    ds.labels.push_back(0);
  }
  data::write_feature_csv(opts.positional[2], ds);
  std::cout << "wrote " << ds.size() << " signatures of length "
            << ds.feature_length() << " to " << opts.positional[2] << '\n';
  return 0;
}

int cmd_sort(const Options& opts) {
  if (opts.positional.size() != 3) {
    usage(std::cerr);
    return 1;
  }
  const data::AlignedSensors aligned =
      load_aligned(opts.positional[0], opts.interval_ms);
  const LoadedModel loaded = load_any_model(opts.positional[1]);
  const core::CsModel* model = std::get_if<core::CsModel>(&loaded);
  if (!model) {
    const auto& method =
        std::get<std::unique_ptr<core::SignatureMethod>>(loaded);
    const auto* cs = dynamic_cast<const core::CsSignatureMethod*>(
        method.get());
    if (!cs) {
      std::cerr << "sort requires a CS model; " << method->name()
                << " has no sorting stage\n";
      return 2;
    }
    model = &cs->pipeline()->model();
  }
  harness::write_pgm(opts.positional[2], model->sort(aligned.matrix));
  std::cout << "wrote sorted heatmap (" << aligned.matrix.rows() << " x "
            << aligned.matrix.cols() << ") to " << opts.positional[2]
            << '\n';
  return 0;
}

hpcoda::Segment make_segment(const std::string& name, double scale) {
  hpcoda::GeneratorConfig config;
  config.scale = scale;
  if (name == "fault") return hpcoda::make_fault_segment(config);
  if (name == "application") return hpcoda::make_application_segment(config);
  if (name == "power") return hpcoda::make_power_segment(config);
  if (name == "infrastructure") {
    return hpcoda::make_infrastructure_segment(config);
  }
  if (name == "cross-arch") return hpcoda::make_cross_arch_segment(config);
  throw std::runtime_error("unknown segment: " + name);
}

int cmd_stream(const Options& opts) {
  if (opts.positional.size() != 1) {
    usage(std::cerr);
    return 1;
  }
  const hpcoda::Segment seg = make_segment(opts.positional[0], opts.scale);

  core::StreamOptions stream_opts;
  stream_opts.window_length = opts.window_set ? opts.window : seg.window.length;
  stream_opts.window_step = opts.step_set ? opts.step : seg.window.step;
  stream_opts.cs.blocks = opts.blocks;
  stream_opts.cs.real_only = opts.real_only;
  stream_opts.history_length = opts.history;
  stream_opts.retrain_interval = opts.retrain;

  std::cout << "segment " << seg.name << ": " << seg.n_blocks()
            << " components, " << seg.length() << " samples @"
            << seg.interval_ms << " ms (wl=" << stream_opts.window_length
            << ", ws=" << stream_opts.window_step << ", history="
            << stream_opts.history_length << ")\n";

  // One stream per component, each with a method fitted on its own sensors
  // — the per-node out-of-band training pass of Fig. 1. --method swaps the
  // whole fleet onto any registered method; the default is classic CS.
  core::StreamEngine engine(stream_opts);
  for (const hpcoda::ComponentBlock& block : seg.blocks) {
    if (opts.method.empty()) {
      engine.add_node(block.name, core::train(block.sensors));
    } else {
      std::shared_ptr<const core::SignatureMethod> method =
          baselines::default_registry().create(opts.method)->fit(
              block.sensors);
      engine.add_node(block.name, std::move(method), block.sensors.rows());
    }
  }
  std::cout << "method: " << engine.stream(0).method().name() << '\n';

  // Replay the shared timeline in batches of --batch columns, the way a
  // monitoring bus delivers one flush per node per collection round.
  const std::size_t batch = opts.batch == 0 ? seg.length() : opts.batch;
  std::vector<common::Matrix> batches(seg.n_blocks());
  for (std::size_t start = 0; start < seg.length(); start += batch) {
    const std::size_t len = std::min(batch, seg.length() - start);
    for (std::size_t b = 0; b < seg.n_blocks(); ++b) {
      batches[b] = seg.blocks[b].sensors.sub_cols(start, len);
    }
    engine.ingest_batch(batches);
  }

  // Per-node accounting first (emitted counts and retrains straight from
  // each MethodStream), then the aggregate EngineStats — the numbers an
  // operator needs to debug a fleet replay at a glance.
  for (std::size_t b = 0; b < engine.n_nodes(); ++b) {
    const core::MethodStream& stream = engine.stream(b);
    std::printf("  %-12s %6zu samples -> %5zu signatures, %zu retrains\n",
                engine.node_name(b).c_str(), stream.samples_seen(),
                stream.signatures_emitted(), stream.retrain_count());
  }
  const core::EngineStats stats = engine.stats();
  std::printf("engine totals: %llu samples ingested, %llu signatures "
              "emitted, %llu retrains\n",
              static_cast<unsigned long long>(stats.samples),
              static_cast<unsigned long long>(stats.signatures),
              static_cast<unsigned long long>(stats.retrains));
  std::printf("ingested %llu samples -> %llu signatures in %.3f s "
              "(%.0f samples/s aggregate)\n",
              static_cast<unsigned long long>(stats.samples),
              static_cast<unsigned long long>(stats.signatures),
              stats.ingest_seconds, stats.samples_per_second());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --help anywhere wins: print usage to stdout and succeed.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      usage(std::cout);
      return 0;
    }
  }
  if (argc < 2) {
    usage(std::cerr);
    return 1;
  }
  Options opts;
  try {
    if (!parse_args(argc, argv, opts)) {
      usage(std::cerr);
      return 1;
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "methods") return cmd_methods(opts);
    if (command == "train") return cmd_train(opts);
    if (command == "info") return cmd_info(opts);
    if (command == "extract") return cmd_extract(opts);
    if (command == "sort") return cmd_sort(opts);
    if (command == "stream") return cmd_stream(opts);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }
  std::cerr << "unknown command: " << command << '\n';
  usage(std::cerr);
  return 1;
}
